"""Crash–recovery walkthrough: a site dies, restarts, and rejoins.

The chaos layer (see ``examples/chaos_recovery.py``) keeps protocols
correct when the *network* misbehaves; this example kills a *process*.
A crash loses everything volatile — reorder buffers, retransmit timers,
an in-progress remote read — but the durability layer has been
journaling since construction: every operation hits a write-ahead log
before it is acknowledged, and a periodic checkpoint bounds how much of
that log a restart must replay.

The walkthrough:

1. a five-site Opt-Track cluster does some work (checkpoints tick);
2. site 2 crashes; the failure detector's heartbeats go unanswered,
   its peers suspect it and pause retransmissions into the corpse;
3. the cluster keeps writing — updates for the dead site queue durably
   at their senders, not on the wire;
4. site 2 restarts: checkpoint restore + WAL replay rebuild its exact
   pre-crash protocol state, then anti-entropy catch-up drains the
   backlog;
5. the causal checker certifies the full history and every replica
   converges — the crash is invisible in the final state.

Run:  python examples/crash_recovery.py
"""

from repro import CausalCluster, ConstantLatency, DetectorPolicy, FaultPlan
from repro.verify.convergence import check_convergence

VICTIM = 2


def main() -> None:
    cluster = CausalCluster(
        n_sites=5,
        protocol="opt-track",
        n_vars=10,
        replication_factor=3,
        latency=ConstantLatency(12.0),
        seed=7,
        fault_plan=FaultPlan(),          # chaos transport (reliable substrate)
        crash_recovery=True,             # WAL + checkpoints + detector
        checkpoint_interval_ms=200.0,
        detector=DetectorPolicy(heartbeat_interval_ms=60.0, timeout_ms=250.0),
    )

    print("1. warm up: twelve writes, checkpoints ticking underneath")
    for step in range(12):
        cluster.write(step % 5, var=step % 10, value=f"warm-{step}")
        if step % 3 == 2:
            cluster.advance(120.0)
    cluster.settle()
    print(f"   checkpoints taken so far: {cluster.collector.checkpoints_taken}")

    # one more write, younger than the last checkpoint: at crash time it
    # exists only in the victim's WAL (and in its peers' inboxes)
    cluster.write(VICTIM, var=3, value="logged-not-checkpointed")
    cluster.advance(50.0)

    print(f"2. site {VICTIM} crashes (volatile state gone; disk survives)")
    cluster.crash_site(VICTIM)

    print("3. the cluster keeps writing; the dead site's mail queues durably")
    live = [s for s in range(5) if s != VICTIM]
    for step in range(6):
        cluster.write(live[step % len(live)], var=step % 10,
                      value=f"missed-{step}")
        cluster.advance(80.0)
    cluster.advance(600.0)  # heartbeats time out -> peers suspect + pause
    det = cluster.crash_manager.detector
    suspecters = sorted(o for (o, s) in det.suspected if s == VICTIM)
    print(f"   detector: sites {suspecters} now suspect site {VICTIM}")
    pb = cluster.pending_breakdown()
    print(f"   pending: {pb['held_for_crashed']} held for the crashed site, "
          f"{pb['in_flight']} in flight between live sites")

    print(f"4. site {VICTIM} restarts: checkpoint + WAL replay, then catch-up")
    cluster.recover_site(VICTIM)
    cluster.settle()
    col = cluster.collector
    print(f"   replayed {col.wal_replays.mean:.0f} WAL records "
          f"(checkpoint was {col.checkpoint_age.mean:.0f} ms old); "
          f"catch-up took {col.catchup_latency.mean:.0f} ms "
          f"over {col.catchup_rounds.mean:.0f} sync rounds")

    print("5. verify: the crash left no trace in the final state")
    report = cluster.check()
    report.raise_if_violated()
    conv = check_convergence(cluster.protocols, cluster.history)
    assert conv.ok and conv.divergent == []
    assert cluster.pending_messages() == 0
    print(f"   causal checker: OK over {report.n_operations} operations")
    print("   convergence: every replica of every variable agrees")

    print(f"\ncrash-recovery cost: {col.heartbeats_sent} heartbeats, "
          f"{col.sync_messages} sync messages, "
          f"{col.checkpoints_taken} checkpoints, "
          f"detection in {col.detection_latency.mean:.0f} ms, "
          f"downtime {col.downtime.mean:.0f} ms")
    print("a crash is just a long pause with amnesia — the WAL remembers.")


if __name__ == "__main__":
    main()
