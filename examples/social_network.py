"""Social-network scenario: should a media store replicate fully or
partially?

The paper motivates partial replication with exactly this workload:
users upload photos and videos (write-intensive, large payloads whose
causality metadata is comparatively tiny) and mostly read content from
their own geographic region.  This example models a 12-datacenter
photo-sharing backend, runs the *same* upload/browse schedule under

* Opt-Track with the paper's replication factor p = 0.3 n, and
* Opt-Track-CRP with full replication,

and then applies eq. (2) — partial replication sends fewer messages iff
w_rate > 2/(n+1) — together with a payload-inclusive traffic estimate,
the consideration Section V-C raises (a 2011-average web object is
~679 KB, dwarfing the metadata).

Run:  python examples/social_network.py
"""

from repro.analysis.tradeoff import crossover_write_rate
from repro.experiments.report import format_table
from repro.experiments.sweep import paired_runs
from repro.memory.replication import paper_replication_factor

N_DATACENTERS = 12
UPLOAD_RATE = 0.6          # write-intensive: users post more than they browse
OPS_PER_DC = 300
MEDIA_BYTES = 679_000      # average web page size, Johnson et al. [22]


def main() -> None:
    n = N_DATACENTERS
    p = paper_replication_factor(n)
    threshold = crossover_write_rate(n)
    print(f"{n} datacenters, replication factor p={p}, "
          f"upload (write) rate {UPLOAD_RATE}")
    print(f"eq. (2) threshold: partial replication wins on message count "
          f"iff w_rate > {threshold:.3f}")
    print(f"-> prediction: {'partial' if UPLOAD_RATE > threshold else 'full'} "
          "replication sends fewer messages\n")

    runs = paired_runs(
        ("opt-track", "opt-track-crp"), n, UPLOAD_RATE,
        ops_per_process=OPS_PER_DC, seed=7,
    )

    rows = []
    for label, key in (("partial (Opt-Track)", "opt-track"),
                       ("full (Opt-Track-CRP)", "opt-track-crp")):
        col = runs[key].collector
        messages = col.total_message_count
        meta_kb = col.total_metadata_bytes / 1000
        # payload travels on every SM (an upload replicates the photo to
        # each replica site) and on every remote return
        payload_msgs = (col.as_dict()["SM_count"] + col.as_dict()["RM_count"])
        payload_gb = payload_msgs * MEDIA_BYTES / 1e9
        rows.append({
            "configuration": label,
            "messages": messages,
            "metadata_KB": meta_kb,
            "payload_GB": payload_gb,
            "storage_copies": (p if key == "opt-track" else n),
        })
    print(format_table(rows, title="upload/browse traffic, same schedule"))

    partial, full = rows[0], rows[1]
    print(f"\nmessage count      : partial/full = "
          f"{partial['messages'] / full['messages']:.2f}")
    print(f"payload transferred: partial/full = "
          f"{partial['payload_GB'] / full['payload_GB']:.2f}")
    print(f"storage per photo  : {partial['storage_copies']} copies vs "
          f"{full['storage_copies']} copies")
    if partial["messages"] < full["messages"]:
        print("\npartial replication wins, as eq. (2) predicted: "
              "write-intensive media workloads favour fewer replicas.")
    else:
        print("\nfull replication won — workload below the eq. (2) threshold.")


if __name__ == "__main__":
    main()
