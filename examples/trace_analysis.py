"""Trace a run and explain its slowest buffered activation.

The tracer records every operation, message hop, and buffered-update
activation with causal parent links, so "why was this update applied
315 ms after it arrived?" has a mechanical answer: walk the links back
through the exact messages the activation predicate was waiting on.

Run::

    PYTHONPATH=src python examples/trace_analysis.py
"""

from repro.experiments.runner import SimulationConfig, run_simulation
from repro.obs import (
    TraceIndex,
    Tracer,
    format_chain,
    slowest_activations,
    visibility_stats,
)
from repro.sim.network import AdversarialLatency


def main() -> None:
    # Adversarial latency reorders causally related updates across
    # channels, so some SMs must sit buffered until their dependencies
    # arrive — exactly the executions worth explaining.
    config = SimulationConfig(
        protocol="opt-track", n_sites=5, n_vars=20, ops_per_process=60,
        gap_range_ms=(1.0, 40.0), latency=AdversarialLatency(), seed=7,
    )
    tracer = Tracer()
    run_simulation(config, tracer=tracer)
    trace = tracer.to_trace()

    vis = visibility_stats(trace)
    print(f"traced {len(trace.events)} events "
          f"({config.protocol}, n={config.n_sites})")
    print(f"update visibility lag: p50={vis['p50']:.1f} ms  "
          f"p95={vis['p95']:.1f} ms  p99={vis['p99']:.1f} ms")

    buffered = [ev for ev in trace.of_kind("sm.activate")
                if ev.attrs.get("waited_ms", 0) > 0]
    print(f"{len(buffered)} of {len(trace.of_kind('sm.activate'))} "
          "applies were buffered by their activation predicate")

    index = TraceIndex(trace)
    for activate in slowest_activations(trace, k=1):
        print("\nslowest buffered activation, causally explained:")
        print(format_chain(index, activate))


if __name__ == "__main__":
    main()
