"""Geo-replicated store with realistic inter-region latencies.

Models a five-region deployment (US-East, US-West, Europe, Asia,
South America) with a measured-style round-trip matrix, then walks
through the comment-thread anomaly that causal consistency exists to
prevent: a reply must never become visible before the post it answers,
even to a region that receives the reply's update first.

Also reports what causality costs here: activation buffering delays and
remote-read round trips under partial replication.

Run:  python examples/geo_replicated_store.py
"""

from repro import CausalCluster, PerPairLatency

REGIONS = ["us-east", "us-west", "europe", "asia", "s-america"]

# one-way delays in ms, loosely modelled on public inter-region RTT data
LATENCY_MS = [
    #  use   usw    eu    asia   sam
    [   0.0, 35.0, 45.0, 110.0,  60.0],   # us-east
    [  35.0,  0.0, 75.0,  60.0,  90.0],   # us-west
    [  45.0, 75.0,  0.0, 120.0, 110.0],   # europe
    [ 110.0, 60.0, 120.0,  0.0, 160.0],   # asia
    [  60.0, 90.0, 110.0, 160.0,  0.0],   # s-america
]

POSTS = 0      # variable holding the latest post of the thread
REPLIES = 1    # variable holding the latest reply


def region(name: str) -> int:
    return REGIONS.index(name)


def main() -> None:
    cluster = CausalCluster(
        n_sites=len(REGIONS),
        protocol="opt-track",
        n_vars=8,
        replication_factor=2,
        latency=PerPairLatency(LATENCY_MS, jitter_ms=10.0),
        seed=3,
    )
    pl = cluster.placement
    print("replica map:")
    for var, label in ((POSTS, "posts"), (REPLIES, "replies")):
        sites = ", ".join(REGIONS[s] for s in pl.replicas(var))
        print(f"  {label:8s} -> {sites}")

    # --- the comment-thread scenario -------------------------------
    print("\n1. europe posts a question")
    cluster.write(region("europe"), POSTS, "Q: is causal consistency enough?")
    cluster.settle()

    print("2. asia reads the post and writes a reply (causal dependency!)")
    post = cluster.read(region("asia"), POSTS)
    assert post is not None
    cluster.write(region("asia"), REPLIES, "A: for low latency, usually yes.")
    cluster.settle()

    print("3. every region now sees the reply only together with the post")
    for r in REGIONS:
        reply = cluster.read(region(r), REPLIES)
        post = cluster.read(region(r), POSTS)
        assert reply is not None and post is not None, r
        print(f"   {r:10s}: sees post and reply consistently")

    cluster.check().raise_if_violated()
    print("\ncausal consistency verified by the checker")

    # --- what it costs ----------------------------------------------
    print("\ntraffic and latency under this topology:")
    for k in range(60):  # a little background load
        cluster.write(k % 5, (k * 3) % 8, k)
        cluster.advance(40.0)
        cluster.read((k + 2) % 5, k % 8)
    cluster.settle()
    m = cluster.collector
    d = m.as_dict()
    print(f"  messages: {d['SM_count']} SM, {d['FM_count']} FM, {d['RM_count']} RM")
    print(f"  metadata: {m.total_metadata_bytes / 1000:.1f} KB")
    if m.fetch_rtts.count:
        print(f"  remote read RTT: mean {m.fetch_rtts.mean:.0f} ms, "
              f"max {m.fetch_rtts.maximum:.0f} ms")
    if m.activation_delays.count:
        print(f"  updates buffered for causality: {m.activation_delays.count} "
              f"(mean wait {m.activation_delays.mean:.1f} ms)")
    else:
        print("  no update ever had to wait: dependencies always arrived first")
    cluster.check().raise_if_violated()


if __name__ == "__main__":
    main()
