"""Quickstart: a causally consistent replicated memory in ten lines.

Builds a five-site, partially replicated cluster running Opt-Track,
performs a small causal chain of writes and reads, verifies the
execution against the causal memory model, and prints the message-cost
summary.

Run:  python examples/quickstart.py
"""

from repro import CausalCluster, UniformLatency


def main() -> None:
    cluster = CausalCluster(
        n_sites=5,
        protocol="opt-track",        # partial replication, KS-optimal logs
        n_vars=16,
        replication_factor=2,        # each variable lives at 2 of 5 sites
        latency=UniformLatency(10.0, 100.0),
        seed=42,
    )
    print(cluster)
    print(f"variable 3 is replicated at sites {cluster.placement.replicas(3)}")

    # Site 0 publishes a value ...
    cluster.write(0, var=3, value="hello")
    cluster.settle()  # deliver everything in flight

    # ... any site can read it (remotely if it holds no replica) ...
    for site in range(5):
        value = cluster.read(site, 3)
        local = cluster.placement.is_replicated_at(3, site)
        print(f"site {site} reads var3 = {value!r} "
              f"({'local replica' if local else 'remote fetch'})")

    # ... and causally dependent updates stay ordered: site 4 saw
    # "hello", so anything it writes afterwards is ordered after it
    # everywhere.
    cluster.write(4, var=7, value="world")
    cluster.settle()
    assert cluster.read(1, 7) == "world"
    assert cluster.read(1, 3) == "hello"   # the dependency is visible too

    report = cluster.check()
    report.raise_if_violated()
    print(f"\ncausal consistency verified over {report.n_operations} operations")

    m = cluster.collector
    print(f"messages sent: {m.lifetime_message_count} "
          f"({m.as_dict()['SM_count']} updates, "
          f"{m.as_dict()['FM_count']} fetches, "
          f"{m.as_dict()['RM_count']} returns)")
    print(f"metadata transferred: {m.total_metadata_bytes / 1000:.2f} KB")


if __name__ == "__main__":
    main()
