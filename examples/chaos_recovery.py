"""Chaos walkthrough: causal order survives a lossy, partitioned network.

The paper's protocols assume reliable FIFO channels.  This example
removes that assumption at the physical layer — packets drop, duplicate,
and a datacenter is cut off entirely — and shows the chaos transport's
ack/retransmit channel rebuilding the guarantee underneath, so the
protocol layer (and every client) never notices anything but latency.

The story, on a five-site cluster:

1. the network starts dropping 20% of packets; writes keep committing;
2. sites {0, 1} are partitioned away from {2, 3, 4};
3. writes continue on both sides of the cut — the transport queues and
   retries what it cannot deliver;
4. the partition heals, the retransmit timers flush the backlog, and
   the metrics report how long each severed site took to catch up;
5. the causal checker certifies the complete history, and the transport
   counters show how much chaos was absorbed on the way.

Run:  python examples/chaos_recovery.py
"""

from repro import (
    CausalCluster,
    FaultPlan,
    RetransmitPolicy,
    UniformLatency,
)
from repro.verify.convergence import check_convergence

ISLAND = {0, 1}


def main() -> None:
    cluster = CausalCluster(
        n_sites=5,
        protocol="optp",
        n_vars=10,
        latency=UniformLatency(5.0, 40.0),
        seed=3,
        fault_plan=FaultPlan.uniform(drop_rate=0.2, dup_rate=0.1),
        fault_seed=42,
        retransmit=RetransmitPolicy(base_rto_ms=150.0, max_rto_ms=2000.0),
    )

    print("1. every channel now drops 20% and duplicates 10% of packets")
    for step in range(5):
        cluster.write(step % 5, step % 10, f"lossy-{step}")
        cluster.advance(80.0)
    cluster.settle()
    inj = cluster.faults
    print(f"   ... committed 5 writes; the transport absorbed "
          f"{inj.drops} drops and {inj.duplicates} duplicates so far")

    print(f"2. sites {sorted(ISLAND)} are partitioned from the rest")
    cluster.partition(ISLAND)

    print("3. both sides keep writing into the cut")
    cluster.write(0, 0, "island-side")     # replicated everywhere (p=n)
    cluster.write(4, 9, "mainland-side")
    cluster.advance(400.0)

    print("4. the partition heals; retransmit timers flush the backlog")
    cluster.heal()
    cluster.settle()
    for site in range(5):
        assert cluster.read(site, 0) == "island-side"
        assert cluster.read(site, 9) == "mainland-side"
    col = cluster.collector
    print(f"   ... every site now sees both writes; recovery latency: "
          f"mean {col.recovery_latency.mean:.0f} ms over "
          f"{col.recovery_latency.count} site(s)")

    print("5. the full history is causally consistent and convergent")
    cluster.check().raise_if_violated()
    report = check_convergence(cluster.protocols, cluster.history)
    assert report.ok
    print(f"   ... checker passed; transport totals: "
          f"{col.retransmissions} retransmissions, "
          f"{col.duplicate_drops} duplicate packets suppressed, "
          f"{col.acks_sent} acks ({col.ack_bytes / 1000.0:.1f} kB overhead)")
    print("\nThe application never saw a lost, duplicated, or misordered "
          "message: chaos stayed below the waterline.")


if __name__ == "__main__":
    main()
