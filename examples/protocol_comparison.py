"""Head-to-head comparison of all four protocols.

Runs the paper's benchmark workload at one (n, w_rate) point through
Full-Track, Opt-Track, Opt-Track-CRP, and optP, prints the headline
metrics of Section V side by side, and draws a miniature of Figs. 2/6
(per-message metadata vs n) as an ASCII chart.

Run:  python examples/protocol_comparison.py [n] [write_rate]
"""

import sys

from repro import SimulationConfig, run_simulation
from repro.experiments.report import ascii_chart, format_table
from repro.metrics.collector import MessageKind


def run_point(protocol: str, n: int, write_rate: float, ops: int = 200):
    cfg = SimulationConfig(protocol=protocol, n_sites=n, write_rate=write_rate,
                           ops_per_process=ops, seed=1)
    return run_simulation(cfg)


def main(n: int = 20, write_rate: float = 0.5) -> None:
    print(f"n={n} sites, write rate {write_rate}, q=100 variables, "
          f"paper workload (uniform gaps 5-2005 ms)\n")

    rows = []
    for protocol in ("full-track", "opt-track", "opt-track-crp", "optp"):
        result = run_point(protocol, n, write_rate)
        col = result.collector
        rows.append({
            "protocol": protocol,
            "replication": f"p={result.placement.replication_factor}",
            "messages": col.total_message_count,
            "SM_bytes_avg": col.mean_size(MessageKind.SM),
            "RM_bytes_avg": col.mean_size(MessageKind.RM),
            "metadata_KB": col.total_metadata_bytes / 1000,
            "mean_log": round(col.log_sizes.mean, 1) if col.log_sizes.count else "-",
        })
    print(format_table(rows, title="protocol comparison (same parameters)"))

    # miniature of the scalability figures: per-SM metadata vs n
    ns = (5, 10, 20, 30)
    series = {}
    for protocol in ("full-track", "opt-track", "optp", "opt-track-crp"):
        pts = []
        for n_i in ns:
            col = run_point(protocol, n_i, write_rate, ops=80).collector
            pts.append((n_i, col.mean_size(MessageKind.SM)))
        series[protocol] = pts
    print()
    print(ascii_chart(series, title="average SM metadata bytes vs n "
                                    f"(w_rate={write_rate})",
                      x_label="n", y_label="bytes", width=64, height=18))
    print("\nreadings: full-track grows ~n^2 (matrix clocks); optp grows ~n "
          "(vector clocks);\nopt-track grows slowly (pruned logs); "
          "opt-track-crp is nearly flat (O(d) 2-tuple logs).")


if __name__ == "__main__":
    n_arg = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    wr_arg = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    main(n_arg, wr_arg)
