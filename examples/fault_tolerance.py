"""Fault-tolerance walkthrough: a stalled datacenter catches up safely.

Causal consistency's operational promise is that *slow* is never
*wrong*: a site that stops receiving for a while (GC pause, overloaded
NIC, transient partition toward it) simply lags, and on recovery it
applies the backlog in causal order — no rollback, no reconciliation,
no anomaly visible to any client.

This example walks through that story on a five-site Opt-Track cluster:

1. site 4 stalls;
2. the rest of the cluster keeps writing, building causal chains the
   stalled site has never heard of;
3. clients of healthy sites see everything immediately; clients of the
   stalled site see a consistent-but-old world;
4. the site recovers, the held backlog flushes, the activation
   predicates order it, and the checker certifies the whole history.

Run:  python examples/fault_tolerance.py
"""

from repro import CausalCluster, UniformLatency
from repro.memory.store import BOTTOM
from repro.verify.convergence import check_convergence

STALLED = 4


def main() -> None:
    cluster = CausalCluster(
        n_sites=5,
        protocol="opt-track",
        n_vars=10,
        replication_factor=3,
        latency=UniformLatency(5.0, 40.0),
        seed=11,
    )

    print("1. site 4 stalls (receives nothing from now on)")
    cluster.pause_site(STALLED)

    print("2. the rest of the cluster keeps working: a causal chain of "
          "writes builds up")
    chain_vars = []
    writer = 0
    for step in range(6):
        var = (step * 2) % 10
        chain_vars.append(var)
        cluster.write(writer, var, f"step-{step}")
        cluster.advance(60.0)
        # the next writer reads the previous step first: a genuine
        # causal chain, not just concurrent chatter
        writer = (writer + 1) % 4          # sites 0-3 only
        reader_sees = cluster.read(writer, var) if (
            cluster.placement.is_replicated_at(var, writer)) else None
        if reader_sees is not None:
            assert reader_sees == f"step-{step}"

    held = cluster.network.held_count(STALLED)
    print(f"   ... {held} updates are now held for the stalled site")

    print("3. a client of the stalled site sees an old but CONSISTENT world")
    stale_view = {
        var: cluster.protocols[STALLED].ctx.store.read(var).value
        for var in cluster.placement.vars_at(STALLED)
    }
    missing = sum(1 for v in stale_view.values() if v is BOTTOM)
    print(f"   {missing}/{len(stale_view)} of its replicas still at the "
          "initial value — lagging, never inconsistent")

    print("4. site 4 recovers: the backlog flushes in causal order")
    cluster.resume_site(STALLED)
    cluster.settle()
    final_step = {var: step for step, var in enumerate(chain_vars)}
    for var, step in final_step.items():
        if cluster.placement.is_replicated_at(var, STALLED):
            value = cluster.protocols[STALLED].ctx.store.read(var).value
            assert value == f"step-{step}", (var, value, step)

    report = cluster.check()
    report.raise_if_violated()
    conv = check_convergence(cluster.protocols, cluster.history)
    assert conv.ok and conv.divergent == []
    print(f"   causal checker: OK over {report.n_operations} operations, "
          f"{report.n_applies} applies")
    print("   convergence: all replicas agree on every variable")

    m = cluster.collector
    if m.activation_delays.count:
        print(f"\nactivation buffering during recovery: "
              f"{m.activation_delays.count} updates waited "
              f"(max {m.activation_delays.maximum:.0f} ms)")
    print("\nslow was never wrong: no rollback, no divergence, no anomaly.")


if __name__ == "__main__":
    main()
