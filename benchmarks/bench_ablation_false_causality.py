"""Ablation — false causality: tracking -> (happened-before) instead of
->co.

Section III of the paper motivates the optimal activation predicate by
the false causality that happened-before tracking introduces.  HB-Track
is identical to optP except it merges piggybacked clocks at message
*receipt*; the measured gap in dependency weight, activation buffering,
and visibility latency is the value of ->co tracking.
"""

import sys

from _common import OPS, run_standalone, show

import numpy as np

from repro.experiments.runner import SimulationConfig, run_simulation
from repro.sim.network import UniformLatency

N = 10
WRATES = (0.2, 0.5, 0.8)


def compute_rows():
    rows = []
    for wr in WRATES:
        for protocol in ("optp", "hb-track"):
            cfg = SimulationConfig(protocol=protocol, n_sites=N, write_rate=wr,
                                   ops_per_process=OPS, seed=0,
                                   latency=UniformLatency(5.0, 500.0))
            result = run_simulation(cfg)
            col = result.collector
            # dependency weight: total clock mass piggybacked per write
            clock_mass = float(np.mean([
                p.write_clock.v.sum() for p in result.protocols
            ]))
            rows.append({
                "write_rate": wr,
                "protocol": protocol,
                "buffered_updates": col.activation_delays.count,
                "mean_buffering_ms": (
                    col.activation_delays.mean if col.activation_delays.count else 0.0
                ),
                "mean_visibility_ms": col.visibility_lags.mean,
                "final_clock_mass": clock_mass,
            })
    return rows


def test_ablation_false_causality(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    show(rows, "Ablation: ->co tracking (optP) vs -> tracking (HB-Track)")
    for wr in WRATES:
        optp = next(r for r in rows
                    if r["write_rate"] == wr and r["protocol"] == "optp")
        hb = next(r for r in rows
                  if r["write_rate"] == wr and r["protocol"] == "hb-track")
        # -> is a superset of ->co: HB-Track's accumulated dependency
        # knowledge can only be larger
        assert hb["final_clock_mass"] >= optp["final_clock_mass"]
        # and its updates stall at least as much in the pending buffer
        assert hb["buffered_updates"] >= optp["buffered_updates"]
        assert hb["mean_visibility_ms"] >= optp["mean_visibility_ms"] - 1e-9
    # somewhere in the sweep the gap must be real, else the ablation
    # demonstrates nothing
    gaps = [
        next(r for r in rows if r["write_rate"] == wr and r["protocol"] == "hb-track")
        ["buffered_updates"]
        - next(r for r in rows if r["write_rate"] == wr and r["protocol"] == "optp")
        ["buffered_updates"]
        for wr in WRATES
    ]
    assert max(gaps) > 0


if __name__ == "__main__":
    sys.exit(run_standalone(test_ablation_false_causality))
