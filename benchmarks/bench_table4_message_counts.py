"""Table IV — total message count for partial replication (Opt-Track)
vs full replication (Opt-Track-CRP), same schedules.

Paper's finding: partial replication sends fewer messages everywhere
except n=5 at w_rate=0.2 — exactly the prediction of eq. (2),
w_rate > 2/(n+1).  Counts scale with the number of measured operations,
so absolute values match the paper only at REPRO_BENCH_OPS=600; the
win/lose pattern holds at any scale.
"""

import sys

from _common import OPS, paired_counts, run_standalone, show

from repro.analysis.tradeoff import crossover_write_rate
from repro.experiments.configs import PARTIAL_NS, WRITE_RATES

#: Table IV of the paper (total message counts at 600 ops/process)
PAPER_TABLE4 = {
    5: {"full": (2036, 4960, 8004), "partial": (3208, 3463, 3764)},
    10: {"full": (8910, 22266, 35892), "partial": (8297, 10234, 12156)},
    20: {"full": (38057, 95114, 151905), "partial": (22808, 35668, 48128)},
    30: {"full": (86826, 217181, 347304), "partial": (42600, 75679, 108810)},
    40: {"full": (156156, 390039, 624390), "partial": (69405, 130572, 192883)},
}


def compute_table4_rows():
    rows = []
    for n in PARTIAL_NS:
        row = {"n": n}
        for k, wr in enumerate(WRITE_RATES):
            full, partial, _, _ = paired_counts(n, wr)
            row[f"full_w{wr}"] = full
            row[f"partial_w{wr}"] = partial
            row[f"paper_full_w{wr}"] = PAPER_TABLE4[n]["full"][k]
            row[f"paper_partial_w{wr}"] = PAPER_TABLE4[n]["partial"][k]
        rows.append(row)
    return rows


def test_table4_message_counts(benchmark):
    rows = benchmark.pedantic(compute_table4_rows, rounds=1, iterations=1)
    cols = ["n"] + [f"{kind}_w{wr}" for wr in WRITE_RATES
                    for kind in ("full", "partial")]
    show(rows, f"Table IV: total message counts ({OPS} ops/process)", columns=cols)
    show(rows, "Table IV: paper values (600 ops/process)",
         columns=["n"] + [f"paper_{kind}_w{wr}" for wr in WRITE_RATES
                          for kind in ("full", "partial")])

    for row in rows:
        n = row["n"]
        for wr in WRITE_RATES:
            partial_wins = row[f"partial_w{wr}"] < row[f"full_w{wr}"]
            predicted = wr > crossover_write_rate(n)
            assert partial_wins == predicted, (n, wr)
    # paper's single exception: n=5, w_rate=0.2
    n5 = rows[0]
    assert n5["partial_w0.2"] > n5["full_w0.2"]
    assert n5["partial_w0.5"] < n5["full_w0.5"]


if __name__ == "__main__":
    sys.exit(run_standalone(test_table4_message_counts))
