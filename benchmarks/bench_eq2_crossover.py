"""Eq. (1)/(2) — the analytic partial-vs-full crossover, validated by
simulation.

The paper derives that partial replication sends fewer messages iff
w_rate > 2/(n+1), independent of the replication factor p.  This bench
sweeps write rates through each n's threshold and checks the simulated
message-count ratio crosses 1.0 exactly where the closed form says.
"""

import sys

import pytest
from _common import paired_counts, run_standalone, show

from repro.analysis.tradeoff import crossover_write_rate, message_count_ratio
from repro.memory.replication import paper_replication_factor

NS = (5, 10, 20, 40)
WRATES = (0.05, 0.15, 0.25, 0.35, 0.5, 0.8)


def compute_eq2_rows():
    rows = []
    for n in NS:
        threshold = crossover_write_rate(n)
        p = paper_replication_factor(n)
        for wr in WRATES:
            full, partial, w, r = paired_counts(n, wr)
            realized = w / (w + r) if (w + r) else 0.0
            rows.append({
                "n": n,
                "write_rate": wr,
                "threshold": threshold,
                "sim_ratio": partial / full if full else float("inf"),
                # analytic prediction from the *realized* operation mix
                "analytic_ratio": message_count_ratio(n, p, realized),
                "partial_wins_sim": partial < full,
                "partial_wins_eq2": wr > threshold,
            })
    return rows


def test_eq2_crossover(benchmark):
    rows = benchmark.pedantic(compute_eq2_rows, rounds=1, iterations=1)
    show(rows, "Eq. (2): simulated vs analytic crossover")

    mismatches = []
    for row in rows:
        # near the threshold, workload sampling can flip the outcome;
        # demand agreement once the write rate is clearly on one side
        if abs(row["write_rate"] - row["threshold"]) < 0.05:
            continue
        if row["partial_wins_sim"] != row["partial_wins_eq2"]:
            mismatches.append((row["n"], row["write_rate"]))
        # the analytic ratio should predict the simulated ratio closely
        if row["analytic_ratio"] != float("inf"):
            assert row["sim_ratio"] == pytest.approx(
                row["analytic_ratio"], rel=0.15
            ), (row["n"], row["write_rate"])
    assert not mismatches, f"eq. (2) mispredicted at {mismatches}"


if __name__ == "__main__":
    sys.exit(run_standalone(test_eq2_crossover))
