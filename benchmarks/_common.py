"""Shared infrastructure for the paper-reproduction benchmarks.

Every bench regenerates one exhibit (table or figure) of the paper's
Section V and prints the same rows/series the paper reports, alongside
the paper's own numbers where they are tabulated.

Scale knobs (environment variables):

* ``REPRO_BENCH_OPS``   — operations per process (default 120; paper 600)
* ``REPRO_BENCH_SEEDS`` — seeds averaged per cell (default 1)

Grid cells are cached per (protocol, n, write_rate, ops, seeds) for the
whole pytest session: Fig. 1, Figs. 2-4 and Table II all consume the
same 30 partial-replication runs, so the suite executes each run once.

Run any bench standalone for a paper-scale reproduction, e.g.::

    REPRO_BENCH_OPS=600 python benchmarks/bench_fig1_partial_ratio.py
"""

from __future__ import annotations

import functools
import os
import sys
import time

from repro.experiments.configs import bench_ops, bench_seeds
from repro.experiments.report import ascii_chart, format_table
from repro.experiments.sweep import averaged_cell, paired_runs

__all__ = [
    "OPS",
    "SEEDS",
    "cell",
    "paired_counts",
    "show",
    "chart",
    "run_standalone",
]

OPS = bench_ops()
SEEDS = tuple(range(bench_seeds()))


@functools.lru_cache(maxsize=None)
def cell(protocol: str, n: int, write_rate: float, ops: int = OPS,
         seeds: tuple = SEEDS):
    """Session-cached grid cell (averaged over seeds).

    Each fresh (non-cached) cell reports its wall-clock cost and event
    throughput on stderr so standalone bench runs show where the time
    goes; the numbers also ride along in the returned ``CellResult``
    (``wall_ms``, ``events_per_sec``).
    """
    result = averaged_cell(protocol, n, write_rate,
                           ops_per_process=ops, seeds=seeds)
    print(f"[cell] {protocol} n={n} w={write_rate}: "
          f"{result['wall_ms']:.0f} ms/run, "
          f"{result['events_per_sec']:,.0f} events/s",
          file=sys.stderr)
    return result


@functools.lru_cache(maxsize=None)
def paired_counts(n: int, write_rate: float, ops: int = OPS, seed: int = 0):
    """Session-cached same-schedule message counts (full vs partial).

    Returns ``(full_count, partial_count, measured_writes, measured_reads)``
    so analytic comparisons can use the *realized* operation mix rather
    than the target write rate (they differ by sampling noise, which
    matters at extreme rates).
    """
    runs = paired_runs(("opt-track-crp", "opt-track"), n, write_rate,
                       ops_per_process=ops, seed=seed)
    partial = runs["opt-track"].collector
    return (
        runs["opt-track-crp"].collector.total_message_count,
        partial.total_message_count,
        partial.measured_ops_write,
        partial.measured_ops_read,
    )


def show(rows, title, columns=None):
    """Print an exhibit table (pytest -s or standalone)."""
    print()
    print(format_table(rows, columns=columns, title=title))


def chart(series, **kw):
    print()
    print(ascii_chart(series, **kw))


def partial_avg_rows(write_rate: float):
    """Shared body of Figs. 2-4: per-message sizes vs n, partial replication."""
    from repro.experiments.configs import PARTIAL_NS

    rows = []
    for n in PARTIAL_NS:
        ot = cell("opt-track", n, write_rate)
        ft = cell("full-track", n, write_rate)
        rows.append({
            "n": n,
            "ot_sm_B": ot.mean_sm, "ot_rm_B": ot.mean_rm, "ot_fm_B": ot.mean_fm,
            "ft_sm_B": ft.mean_sm, "ft_rm_B": ft.mean_rm, "ft_fm_B": ft.mean_fm,
        })
    return rows


def assert_partial_avg_shapes(rows):
    """Common shape assertions for Figs. 2-4.

    Full-Track per-message size must grow quadratically (superlinearly)
    in n; Opt-Track clearly sublinearly relative to it; FM constant.
    """
    ns = [r["n"] for r in rows]
    ft = [r["ft_sm_B"] for r in rows]
    ot = [r["ot_sm_B"] for r in rows]
    # Full-Track: growth factor n=5 -> n=40 must be near (40/5)^2 on the
    # matrix term; with the envelope it still exceeds 20x
    assert ft[-1] / ft[0] > 20
    # Opt-Track grows far slower than Full-Track
    assert ot[-1] / ot[0] < 0.5 * ft[-1] / ft[0]
    # Opt-Track is cheaper than Full-Track from n=10 on
    for r in rows:
        if r["n"] >= 10:
            assert r["ot_sm_B"] < r["ft_sm_B"]
    # FM: the fetch base plus requirement pairs (the soundness fix, see
    # DESIGN.md).  Opt-Track's pruned logs keep it near the 64-byte base;
    # Full-Track's requirements are a matrix column, bounded by 12 bytes
    # per writer — linear, so its share of the quadratic SM shrinks with n
    for r in rows:
        assert 64 <= r["ot_fm_B"] < 0.5 * r["ot_sm_B"]
        assert 64 <= r["ft_fm_B"] <= 64 + 12 * r["n"]
    first, last = rows[0], rows[-1]
    assert (last["ft_fm_B"] / last["ft_sm_B"]
            < first["ft_fm_B"] / first["ft_sm_B"])


def full_avg_rows(write_rate: float):
    """Shared body of Figs. 6-8: per-SM sizes vs n, full replication."""
    from repro.experiments.configs import FULL_NS

    rows = []
    for n in FULL_NS:
        crp = cell("opt-track-crp", n, write_rate)
        optp = cell("optp", n, write_rate)
        rows.append({"n": n, "crp_sm_B": crp.mean_sm, "optp_sm_B": optp.mean_sm})
    return rows


def assert_full_avg_shapes(rows):
    """Common shape assertions for Figs. 6-8: optP linear in n (10 B per
    process), Opt-Track-CRP nearly flat (O(d))."""
    first, last = rows[0], rows[-1]
    optp_growth = last["optp_sm_B"] - first["optp_sm_B"]
    crp_growth = last["crp_sm_B"] - first["crp_sm_B"]
    assert optp_growth == (last["n"] - first["n"]) * 10  # vector entries
    assert crp_growth < 0.4 * optp_growth  # near-flat vs linear
    assert last["crp_sm_B"] < last["optp_sm_B"]  # CRP wins at scale


def run_standalone(test_fn):
    """Standalone entry: run the bench body once, printing its exhibit."""

    class _NullBenchmark:
        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
            return fn(*args, **(kwargs or {}))

    print(f"ops per process = {OPS}, seeds = {len(SEEDS)} "
          f"(paper scale: REPRO_BENCH_OPS=600)")
    t0 = time.perf_counter()
    test_fn(_NullBenchmark())
    print(f"\nbench wall time: {time.perf_counter() - t0:.2f}s")
    return 0
