"""Table II — average SM and RM space overhead for Full-Track and
Opt-Track (KB), over the full (n, w_rate) grid.

The printed table mirrors the paper's layout (one row per protocol x
message kind x write rate, one column per n) and includes the paper's
own numbers for side-by-side comparison.
"""

import sys

from _common import cell, run_standalone, show

from repro.experiments.configs import PARTIAL_NS, WRITE_RATES

#: Table II of the paper (KB), for the printed comparison
PAPER_TABLE2 = {
    ("opt-track", "SM", 0.2): [0.489, 0.828, 1.512, 2.241, 2.783],
    ("opt-track", "SM", 0.5): [0.464, 0.715, 1.125, 1.442, 1.976],
    ("opt-track", "SM", 0.8): [0.450, 0.627, 0.914, 1.194, 1.475],
    ("opt-track", "RM", 0.2): [0.432, 0.774, 1.530, 2.351, 3.184],
    ("opt-track", "RM", 0.5): [0.436, 0.702, 1.235, 1.656, 2.197],
    ("opt-track", "RM", 0.8): [0.555, 0.632, 0.948, 1.288, 1.599],
    ("full-track", "SM", 0.2): [0.518, 1.252, 3.870, 8.028, 13.547],
    ("full-track", "SM", 0.5): [0.522, 1.271, 3.975, 8.127, 14.033],
    ("full-track", "SM", 0.8): [0.524, 1.275, 3.988, 8.410, 14.157],
    ("full-track", "RM", 0.2): [0.493, 1.220, 3.817, 7.959, 13.461],
    ("full-track", "RM", 0.5): [0.497, 1.205, 3.941, 8.117, 13.983],
    ("full-track", "RM", 0.8): [0.499, 1.250, 3.966, 8.369, 14.099],
}


def compute_table2_rows():
    rows = []
    for protocol in ("opt-track", "full-track"):
        for kind in ("SM", "RM"):
            for wr in WRITE_RATES:
                measured = {
                    n: cell(protocol, n, wr)[f"{kind}_mean_bytes"] / 1000.0
                    for n in PARTIAL_NS
                }
                row = {"protocol": protocol, "msg": kind, "w_rate": wr}
                row.update({f"n{n}": measured[n] for n in PARTIAL_NS})
                paper = PAPER_TABLE2[(protocol, kind, wr)]
                row.update({f"paper_n{n}": p for n, p in zip(PARTIAL_NS, paper)})
                rows.append(row)
    return rows


def test_table2_avg_sm_rm_sizes(benchmark):
    rows = benchmark.pedantic(compute_table2_rows, rounds=1, iterations=1)
    cols = ["protocol", "msg", "w_rate"] + [f"n{n}" for n in PARTIAL_NS]
    show(rows, "Table II: average SM/RM overhead (KB) — measured", columns=cols)
    show(rows, "Table II: paper values (KB)",
         columns=["protocol", "msg", "w_rate"] + [f"paper_n{n}" for n in PARTIAL_NS])

    for row in rows:
        # Full-Track sizes are schedule-independent (fixed n^2 matrix):
        # measured values must be *exactly* the size model's prediction
        if row["protocol"] == "full-track":
            from repro.metrics.sizing import DEFAULT_SIZE_MODEL as M

            for n in PARTIAL_NS:
                expected = (M.sm_full_track(n) if row["msg"] == "SM"
                            else M.rm_full_track(n)) / 1000.0
                assert abs(row[f"n{n}"] - expected) < 1e-9
        # and they must land within 15% of the paper's Table II
        if row["protocol"] == "full-track":
            for n in PARTIAL_NS:
                paper = row[f"paper_n{n}"]
                assert abs(row[f"n{n}"] - paper) / paper < 0.15
    # Opt-Track: write-intensive workloads shrink messages (paper's
    # headline observation), checked at the largest system size
    ot_sm = {wr: next(r for r in rows if r["protocol"] == "opt-track"
                      and r["msg"] == "SM" and r["w_rate"] == wr)
             for wr in WRITE_RATES}
    assert ot_sm[0.8]["n40"] < ot_sm[0.2]["n40"]


if __name__ == "__main__":
    sys.exit(run_standalone(test_table2_avg_sm_rm_sizes))
