"""Ablation — what implicit condition 2 (send-time destination pruning)
buys Opt-Track.

DESIGN.md calls out the KS pruning rules as the design choice behind
Opt-Track's near-linear metadata growth.  This bench runs the same
workload through Opt-Track and through the no-pruning variant and
reports log sizes and metadata bytes; the gap is the value of the rule.
"""

import sys

from _common import OPS, SEEDS, run_standalone, show

from repro.experiments.sweep import averaged_cell

NS = (5, 10, 15)
WRATE = 0.5


def compute_rows():
    rows = []
    for n in NS:
        pruned = averaged_cell("opt-track", n, WRATE,
                               ops_per_process=OPS, seeds=SEEDS)
        unpruned = averaged_cell("opt-track-noprune", n, WRATE,
                                 ops_per_process=OPS, seeds=SEEDS)
        rows.append({
            "n": n,
            "pruned_log": pruned["mean_log_size"],
            "unpruned_log": unpruned["mean_log_size"],
            "pruned_KB": pruned["total_metadata_bytes"] / 1000,
            "unpruned_KB": unpruned["total_metadata_bytes"] / 1000,
            "bytes_blowup": (unpruned["total_metadata_bytes"]
                             / pruned["total_metadata_bytes"]),
        })
    return rows


def test_ablation_send_time_pruning(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    show(rows, "Ablation: Opt-Track with vs without condition-2 pruning")
    for row in rows:
        assert row["unpruned_log"] > row["pruned_log"]
        assert row["bytes_blowup"] > 1.0
    # the gap widens with system size: pruning matters more at scale
    assert rows[-1]["bytes_blowup"] > rows[0]["bytes_blowup"]


if __name__ == "__main__":
    sys.exit(run_standalone(test_ablation_send_time_pruning))
