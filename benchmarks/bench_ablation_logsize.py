"""Ablation — Opt-Track's amortized log size vs n.

The paper cites Chandra et al. [18]: the KS log's upper bound is O(n^2)
but its amortized size is almost O(n).  This bench measures the mean and
sampled-max log entry counts across system sizes and write rates and
checks the mean stays within a small constant multiple of n (nowhere
near the n^2 worst case).
"""

import sys

from _common import cell, chart, run_standalone, show

from repro.experiments.configs import WRITE_RATES

NS = (5, 10, 20, 40)


def compute_rows():
    rows = []
    for n in NS:
        for wr in WRITE_RATES:
            c = cell("opt-track", n, wr)
            rows.append({
                "n": n,
                "write_rate": wr,
                "mean_log_entries": c["mean_log_size"],
                "entries_per_n": c["mean_log_size"] / n,
                "worst_case_n2": n * n,
            })
    return rows


def test_ablation_amortized_log_size(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    show(rows, "Ablation: Opt-Track amortized log size vs n")
    chart(
        {
            f"w={wr}": [(r["n"], r["mean_log_entries"])
                        for r in rows if r["write_rate"] == wr]
            for wr in WRITE_RATES
        },
        title="mean log entries vs n", x_label="n", y_label="entries",
    )
    for row in rows:
        # amortized O(n): a small constant times n, far below n^2
        assert row["mean_log_entries"] <= 4 * row["n"], row
        assert row["mean_log_entries"] < 0.5 * row["worst_case_n2"]
    # write-intensive workloads keep logs smaller (more PURGE, fewer MERGEs)
    for n in NS:
        by_rate = {r["write_rate"]: r["mean_log_entries"]
                   for r in rows if r["n"] == n}
        assert by_rate[0.8] <= by_rate[0.2]


if __name__ == "__main__":
    sys.exit(run_standalone(test_ablation_amortized_log_size))
