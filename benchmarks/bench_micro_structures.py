"""Micro-benchmarks of the hot data structures.

Unlike the exhibit benches (which run whole simulations once), these use
pytest-benchmark's actual timing loops on the operations the profiler
identified as hot paths (docs/architecture.md, "Performance notes"):
per-write piggyback-view construction, log MERGE, activation predicates,
clock merges, and message sizing.  They guard against performance
regressions in the code paths that dominate paper-scale runs.
"""

import numpy as np
import pytest

from repro.core.activation import full_track_sm_ready, opt_track_entries_ready
from repro.core.clocks import MatrixClock, VectorClock
from repro.core.log import OptTrackLog, PiggybackEntry
from repro.core.messages import OptTrackSM
from repro.memory.store import WriteId
from repro.metrics.sizing import DEFAULT_SIZE_MODEL

N = 40  # paper-scale system size


def build_log(n_entries=80, n_sites=N, seed=0):
    rng = np.random.default_rng(seed)
    log = OptTrackLog()
    for k in range(n_entries):
        writer = int(rng.integers(0, n_sites))
        clock = k + 1
        dests = set(map(int, rng.choice(n_sites, size=rng.integers(0, 4),
                                        replace=False)))
        log.insert(writer, clock, dests)
    return log


def test_micro_piggyback_views(benchmark):
    """One write's per-destination views over an n=40-scale log."""
    log = build_log()
    dests = frozenset(range(0, 12))  # p = 12 at n = 40

    views, base = benchmark(log.piggyback_views, dests)
    assert len(views) == 12
    assert isinstance(base, tuple)


def test_micro_log_merge(benchmark):
    """Read-time MERGE of a typical piggybacked log."""
    incoming = tuple(
        PiggybackEntry(int(j % N), int(100 + j), frozenset({int(j % 7)}))
        for j in range(40)
    )
    applied = np.zeros(N, dtype=np.int64)

    def merge_into_fresh():
        log = build_log()
        log.merge(incoming, self_site=3, applied=applied)
        return len(log)

    size = benchmark(merge_into_fresh)
    assert size > 0


def test_micro_activation_opt_track(benchmark):
    """A_OPT over a 40-record piggybacked log (the per-delivery check)."""
    entries = [
        PiggybackEntry(j % N, j + 1, frozenset({j % 5, (j + 1) % 5}))
        for j in range(40)
    ]
    applied = np.full(N, 1000, dtype=np.int64)

    ready = benchmark(opt_track_entries_ready, entries, 3, applied)
    assert ready is True


def test_micro_activation_full_track(benchmark):
    """A_OPT over an n=40 matrix column."""
    m = MatrixClock(N)
    m.increment(0, range(N))
    applied = np.ones(N, dtype=np.int64)

    ready = benchmark(full_track_sm_ready, m, 0, 3, applied)
    assert ready is True


def test_micro_matrix_merge(benchmark):
    """Entrywise max of two 40x40 matrices (read-time merge)."""
    rng = np.random.default_rng(0)
    a = MatrixClock(N, rng.integers(0, 100, (N, N)))
    b = MatrixClock(N, rng.integers(0, 100, (N, N)))

    benchmark(a.merge, b)
    assert a.dominates(b)


def test_micro_vector_merge(benchmark):
    rng = np.random.default_rng(0)
    a = VectorClock(N, rng.integers(0, 100, N))
    b = VectorClock(N, rng.integers(0, 100, N))

    benchmark(a.merge, b)
    assert a.dominates(b)


def test_micro_message_sizing(benchmark):
    """Per-send metadata pricing of an 80-record Opt-Track SM."""
    log = tuple(build_log().entries())
    sm = OptTrackSM(var=0, value=1, write_id=WriteId(0, 1), log=log)

    size = benchmark(sm.metadata_size, DEFAULT_SIZE_MODEL)
    assert size > DEFAULT_SIZE_MODEL.envelope_opt_track


def test_micro_matrix_snapshot(benchmark):
    """Per-write matrix snapshot (Full-Track's dominant allocation)."""
    m = MatrixClock(N)
    m.increment(0, range(N))

    snap = benchmark(m.copy)
    assert snap == m
