"""Fig. 8 — average SM meta-data space overhead as a function of n with
w_rate = 0.8, full replication protocols.

Paper's finding: optP's per-SM size is exactly linear in n (its Write
vector), while Opt-Track-CRP's is O(d) — nearly flat in n.
"""

import sys

from _common import (
    assert_full_avg_shapes,
    chart,
    full_avg_rows,
    run_standalone,
    show,
)


def test_fig8_full_avg_sizes_wrate_8(benchmark):
    rows = benchmark.pedantic(full_avg_rows, args=(0.8,), rounds=1, iterations=1)
    show(rows, "Fig. 8: average SM metadata bytes (w_rate=0.8, full replication)")
    chart(
        {
            "optP": [(r["n"], r["optp_sm_B"]) for r in rows],
            "CRP": [(r["n"], r["crp_sm_B"]) for r in rows],
        },
        title="Fig. 8 (bytes vs n, w_rate=0.8)", x_label="n", y_label="bytes",
    )
    assert_full_avg_shapes(rows)


if __name__ == "__main__":
    sys.exit(run_standalone(test_fig8_full_avg_sizes_wrate_8))
