"""Extension — protocol cost under faults: retransmission and recovery.

The paper assumes reliable FIFO channels (TCP) and never charges the
protocols for the transport that provides them.  This bench injects
packet loss and a network partition under all four protocols and
reports what reliability actually costs: retransmitted packets, ack
overhead, and how long a severed site takes to catch back up after the
partition heals.  The causal guarantees hold at every drop rate — the
chaos layer's ack/retransmit channel restores exactly-once FIFO
delivery — so the differences are pure transport overhead.
"""

import sys

from _common import OPS, run_standalone, show

from repro.experiments.runner import SimulationConfig, run_simulation
from repro.sim.faults import FaultPlan, Partition
from repro.sim.network import UniformLatency
from repro.sim.reliable import RetransmitPolicy

N = 10
WRATE = 0.5
DROP_RATES = (0.0, 0.1, 0.25)
#: base RTO above the 100 ms max RTT so a clean network never times out
POLICY = RetransmitPolicy(base_rto_ms=500.0, max_rto_ms=4000.0, jitter_ms=25.0)


def plan_for(drop_rate):
    return FaultPlan.uniform(
        drop_rate=drop_rate,
        partitions=(Partition([0, 1], 500.0, 3000.0),),
    )


def compute_rows():
    rows = []
    for drop in DROP_RATES:
        for protocol in ("full-track", "opt-track", "optp", "opt-track-crp"):
            cfg = SimulationConfig(
                protocol=protocol, n_sites=N, write_rate=WRATE,
                ops_per_process=OPS, seed=0,
                latency=UniformLatency(10.0, 100.0),
                fault_plan=plan_for(drop), fault_seed=11, retransmit=POLICY,
            )
            col = run_simulation(cfg).collector
            rows.append({
                "drop": drop,
                "protocol": protocol,
                "retx": col.retransmissions,
                "dup_drops": col.duplicate_drops,
                "ack_kB": round(col.ack_bytes / 1000.0, 1),
                "recovery_ms": round(col.recovery_latency.mean, 1),
            })
    return rows


def test_ext_fault_recovery(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    show(rows, f"Extension: reliability cost under loss + partition/heal "
               f"(n={N}, w_rate={WRATE})")

    def col(drop, protocol, key):
        return next(r[key] for r in rows
                    if r["drop"] == drop and r["protocol"] == protocol)

    for protocol in ("full-track", "opt-track", "optp", "opt-track-crp"):
        # a lossless link with rto > max RTT never times out: the only
        # retransmissions are the eager resends at the partition heal
        clean = col(0.0, protocol, "retx")
        assert clean <= col(0.0, protocol, "ack_kB") * 1000 / 20.0
        # retransmissions grow monotonically with the drop rate
        retx = [col(d, protocol, "retx") for d in DROP_RATES]
        assert retx[0] < retx[1] < retx[2], (protocol, retx)
        # the severed sites always pay a measurable catch-up delay
        for d in DROP_RATES:
            assert col(d, protocol, "recovery_ms") > 0.0
    # ack traffic tracks message count, so the p=n protocols (one SM per
    # write to every site) pay more ack overhead than partial replication
    for d in DROP_RATES:
        assert col(d, "optp", "ack_kB") > col(d, "opt-track", "ack_kB")


if __name__ == "__main__":
    sys.exit(run_standalone(test_ext_fault_recovery))
