"""Ablation — sensitivity of partial replication's advantage to the
replication factor p.

The paper fixes p = 0.3 n; eq. (1)'s derivation shows the *crossover*
write rate is independent of p, but the magnitude of the message-count
advantage is not.  This bench sweeps p at fixed n and verifies both: the
win/lose direction never changes with p, while the message count grows
monotonically with p until it meets the full-replication cost at p = n.
"""

import sys

from _common import OPS, run_standalone, show

from repro.analysis.model import (
    full_replication_message_count,
    partial_replication_message_count,
)
from repro.experiments.runner import SimulationConfig, run_simulation
from repro.workload.generator import generate_workload

N = 12
WRATE = 0.5
PS = (1, 2, 4, 6, 9, 12)


def compute_rows():
    workload = generate_workload(N, write_rate=WRATE, ops_per_process=OPS, seed=0)
    w = round(0.85 * workload.total_writes)  # measured window approximation
    r = round(0.85 * workload.total_reads)
    full_analytic = full_replication_message_count(N, w)
    rows = []
    for p in PS:
        cfg = SimulationConfig(protocol="opt-track", n_sites=N,
                               replication_factor=p, write_rate=WRATE,
                               ops_per_process=OPS, seed=0)
        result = run_simulation(cfg, workload=workload)
        rows.append({
            "p": p,
            "messages": result.collector.total_message_count,
            "analytic": partial_replication_message_count(N, p, w, r),
            "metadata_KB": result.collector.total_metadata_bytes / 1000,
            "vs_full": result.collector.total_message_count / full_analytic,
        })
    return rows


def test_ablation_replication_factor(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    show(rows, f"Ablation: replication factor sweep (n={N}, w_rate={WRATE})")
    # message count rises with p (more SM copies beat fewer fetches at
    # this write rate)
    counts = [r["messages"] for r in rows]
    assert counts == sorted(counts)
    # w_rate=0.5 > 2/(n+1): partial must win at every p < n (eq. 1 says
    # the direction is p-independent)
    for row in rows[:-1]:
        assert row["vs_full"] < 1.0, row
    # analytic model tracks the simulation
    for row in rows:
        assert abs(row["messages"] - row["analytic"]) / row["analytic"] < 0.1


if __name__ == "__main__":
    sys.exit(run_standalone(test_ablation_replication_factor))
