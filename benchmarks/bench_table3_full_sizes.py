"""Table III — average SM space overhead for Opt-Track-CRP (bytes) by
write rate, against optP's n-determined SM size.

Paper's values: optP = 209 + 10 n exactly; Opt-Track-CRP between ~273
and ~338 bytes, rising slowly with n and falling as the write rate
grows.
"""

import sys

from _common import cell, run_standalone, show

from repro.experiments.configs import FULL_NS, WRITE_RATES

#: Table III of the paper (bytes)
PAPER_TABLE3 = {
    5: (287.3, 277.5, 272.9, 259),
    10: (300.3, 284.3, 278.2, 309),
    20: (315.5, 294.9, 288.3, 409),
    30: (327.1, 305.2, 298.4, 509),
    35: (332.8, 310.1, 303.4, 559),
    40: (338.4, 315.3, 308.4, 609),
}


def compute_table3_rows():
    rows = []
    for n in FULL_NS:
        row = {"n": n}
        for wr in WRITE_RATES:
            row[f"crp_w{wr}"] = cell("opt-track-crp", n, wr).mean_sm
        row["optp"] = cell("optp", n, WRITE_RATES[0]).mean_sm
        paper = PAPER_TABLE3[n]
        row.update({
            "paper_crp_w0.2": paper[0],
            "paper_crp_w0.5": paper[1],
            "paper_crp_w0.8": paper[2],
            "paper_optp": paper[3],
        })
        rows.append(row)
    return rows


def test_table3_avg_sm_sizes(benchmark):
    rows = benchmark.pedantic(compute_table3_rows, rounds=1, iterations=1)
    show(rows, "Table III: average SM bytes, Opt-Track-CRP vs optP",
         columns=["n", "crp_w0.2", "crp_w0.5", "crp_w0.8", "optp"])
    show(rows, "Table III: paper values",
         columns=["n", "paper_crp_w0.2", "paper_crp_w0.5", "paper_crp_w0.8",
                  "paper_optp"])

    for row in rows:
        # optP is deterministic: must match the paper's 209 + 10n exactly
        assert row["optp"] == row["paper_optp"]
        # CRP decreases with write rate (paper's Table III trend)
        assert row["crp_w0.8"] <= row["crp_w0.5"] <= row["crp_w0.2"]
        # and lands in the paper's ballpark (within 25%)
        for wr, col in ((0.2, "crp_w0.2"), (0.5, "crp_w0.5"), (0.8, "crp_w0.8")):
            paper = row[f"paper_{col}"]
            assert abs(row[col] - paper) / paper < 0.25, (row["n"], wr)
    # CRP grows only slowly with n: < 100 bytes across the whole sweep
    spread = rows[-1]["crp_w0.2"] - rows[0]["crp_w0.2"]
    assert 0 <= spread < 100


if __name__ == "__main__":
    sys.exit(run_standalone(test_table3_avg_sm_sizes))
