"""Extension — replica divergence under causal consistency.

Causal memory lets concurrent writes settle in different orders at
different replicas (no convergence guarantee — the gap "causal+"
systems close).  This bench measures how often that actually happens as
a function of write rate: the fraction of written variables whose
replicas disagree at quiescence, for a full-replication and a
partial-replication protocol.  Divergence legitimacy (concurrent-only)
is verified by the convergence checker in the same pass.
"""

import sys

from _common import OPS, run_standalone, show

from repro.experiments.runner import SimulationConfig, run_simulation
from repro.verify.convergence import check_convergence

N = 8
WRATES = (0.2, 0.5, 0.8)


def compute_rows():
    rows = []
    for protocol in ("optp", "opt-track"):
        for wr in WRATES:
            cfg = SimulationConfig(protocol=protocol, n_sites=N, n_vars=40,
                                   write_rate=wr, ops_per_process=OPS,
                                   seed=0, record_history=True)
            result = run_simulation(cfg)
            report = check_convergence(result.protocols, result.history)
            assert report.ok, report.illegitimate[:3]
            rows.append({
                "protocol": protocol,
                "write_rate": wr,
                "divergent_vars": len(report.divergent),
                "divergence_rate": report.divergence_rate,
            })
    return rows


def test_ext_divergence(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    show(rows, f"Extension: replica divergence at quiescence (n={N}, q=40)")
    # Every divergence was already checker-verified as concurrent-only
    # inside compute_rows (an assertion there fails the bench otherwise).
    # Magnitude is the finding: causal memory's non-convergence is *rare*
    # in practice — most writes get causally ordered through read chains
    # before the run ends — but it is not zero, which is exactly why
    # causal+ systems add convergent conflict handling.
    for r in rows:
        assert 0.0 <= r["divergence_rate"] < 0.3


if __name__ == "__main__":
    sys.exit(run_standalone(test_ext_divergence))
