"""Fig. 1 — total message meta-data space overhead as a function of n and
w_rate in partial replication protocols (Opt-Track / Full-Track ratio).

Paper's finding: the ratio falls rapidly with n — around 0.9 at n=5 and
only 0.1-0.2 at n=40 — and a higher write rate magnifies Opt-Track's
advantage.
"""

import sys

from _common import OPS, SEEDS, cell, chart, run_standalone, show

from repro.experiments.configs import PARTIAL_NS, WRITE_RATES


def compute_fig1_rows():
    rows = []
    for wr in WRITE_RATES:
        for n in PARTIAL_NS:
            ot = cell("opt-track", n, wr)
            ft = cell("full-track", n, wr)
            rows.append({
                "n": n,
                "write_rate": wr,
                "opt_track_KB": ot.total_bytes / 1000,
                "full_track_KB": ft.total_bytes / 1000,
                "ratio": ot.total_bytes / ft.total_bytes,
            })
    return rows


def test_fig1_total_overhead_ratio(benchmark):
    rows = benchmark.pedantic(compute_fig1_rows, rounds=1, iterations=1)
    show(rows, "Fig. 1: total metadata overhead ratio Opt-Track / Full-Track")
    chart(
        {
            f"w={wr}": [(r["n"], r["ratio"]) for r in rows if r["write_rate"] == wr]
            for wr in WRITE_RATES
        },
        title="Fig. 1 (ratio vs n)", x_label="n", y_label="ratio",
    )
    # shape assertions: ratio decreases with n at every write rate, and
    # Opt-Track always wins at the larger system sizes
    for wr in WRITE_RATES:
        series = [r["ratio"] for r in rows if r["write_rate"] == wr]
        assert series[-1] < series[0], f"ratio did not fall with n at w={wr}"
        assert series[-1] < 0.5, "Opt-Track should win clearly at n=40"
    # higher write rate magnifies the gap at n=40
    at40 = {r["write_rate"]: r["ratio"] for r in rows if r["n"] == 40}
    assert at40[0.8] < at40[0.2]


if __name__ == "__main__":
    sys.exit(run_standalone(test_fig1_total_overhead_ratio))
