"""Extension — metadata size as latency: constrained uplinks.

The paper measures metadata in bytes and treats timing separately.
Under a finite uplink bandwidth the two collide: every byte of
piggybacked causality metadata occupies the sender's uplink before the
next message can depart.  This bench runs all four protocols over
identical 10-100 ms links with progressively tighter uplinks and
reports update-visibility latency — Full-Track's O(n^2) matrices turn
into real queueing delay, Opt-Track/CRP's lean metadata does not.
"""

import sys

from _common import OPS, run_standalone, show

from repro.experiments.runner import SimulationConfig, run_simulation
from repro.sim.network import UniformLatency

N = 20
WRATE = 0.5
#: uplink capacities in bytes/ms (None = the paper's infinite model)
BANDWIDTHS = (None, 200.0, 25.0)


def compute_rows():
    rows = []
    for bw in BANDWIDTHS:
        for protocol in ("full-track", "opt-track", "optp", "opt-track-crp"):
            cfg = SimulationConfig(
                protocol=protocol, n_sites=N, write_rate=WRATE,
                ops_per_process=OPS, seed=0,
                latency=UniformLatency(10.0, 100.0),
                bandwidth_bytes_per_ms=bw,
            )
            result = run_simulation(cfg)
            col = result.collector
            rows.append({
                "uplink_B_per_ms": bw if bw is not None else "inf",
                "protocol": protocol,
                "sm_mean_B": col.as_dict()["SM_mean_bytes"],
                "mean_visibility_ms": col.visibility_lags.mean,
                "max_visibility_ms": col.visibility_lags.maximum,
            })
    return rows


def test_ext_bandwidth(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    show(rows, f"Extension: visibility latency under constrained uplinks "
               f"(n={N}, w_rate={WRATE})")

    def vis(bw, protocol):
        return next(r["mean_visibility_ms"] for r in rows
                    if r["uplink_B_per_ms"] == (bw or "inf")
                    and r["protocol"] == protocol)

    # infinite bandwidth: metadata size is latency-free, protocols tie
    assert abs(vis(None, "full-track") - vis(None, "opt-track")) < 10.0
    # tight uplinks: Full-Track's matrices cost real time
    assert vis(25.0, "full-track") > 1.5 * vis(25.0, "opt-track")
    # and every lean-metadata protocol degrades strictly less than
    # Full-Track, both absolutely and relative to its own baseline
    ft_blowup = vis(25.0, "full-track") / vis(None, "full-track")
    for protocol in ("opt-track", "optp", "opt-track-crp"):
        assert vis(25.0, protocol) < vis(25.0, "full-track")
        assert vis(25.0, protocol) / vis(None, protocol) < ft_blowup
    # tighter uplink never improves visibility
    for protocol in ("full-track", "opt-track"):
        assert vis(25.0, protocol) >= vis(200.0, protocol) - 1e-6
        assert vis(200.0, protocol) >= vis(None, protocol) - 1e-6


if __name__ == "__main__":
    sys.exit(run_standalone(test_ext_bandwidth))
