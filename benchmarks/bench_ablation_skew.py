"""Ablation — variable-popularity skew (uniform vs Zipf access).

The paper's workload picks variables uniformly.  Real stores see Zipf
popularity, which concentrates reads (and hence MERGE traffic) on a few
hot variables while rarely-touched variables keep ancient LastWriteOn
snapshots.  This bench contrasts Opt-Track under uniform and Zipf access
at the same write rate.
"""

import sys

from _common import OPS, run_standalone, show

from repro.experiments.runner import SimulationConfig, run_simulation

N = 12
WRATE = 0.5


def compute_rows():
    rows = []
    for dist, zipf_s in (("uniform", 1.1), ("zipf", 1.1), ("zipf", 1.5)):
        cfg = SimulationConfig(protocol="opt-track", n_sites=N, write_rate=WRATE,
                               ops_per_process=OPS, seed=0,
                               var_distribution=dist, zipf_s=zipf_s)
        result = run_simulation(cfg)
        col = result.collector
        rows.append({
            "distribution": dist if dist == "uniform" else f"zipf(s={zipf_s})",
            "messages": col.total_message_count,
            "metadata_KB": col.total_metadata_bytes / 1000,
            "mean_log": col.log_sizes.mean,
            "sm_mean_B": col.as_dict()["SM_mean_bytes"],
        })
    return rows


def test_ablation_variable_skew(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    show(rows, f"Ablation: variable popularity skew (opt-track, n={N})")
    uniform = rows[0]
    for zipf in rows[1:]:
        # message *counts* are distribution-free (writes multicast to p
        # replicas regardless of which variable), within sampling noise
        assert abs(zipf["messages"] - uniform["messages"]) / uniform["messages"] < 0.1
        # logs stay bounded under skew too (the tombstone mechanism is
        # what prevents hot-variable churn from exploding them)
        assert zipf["mean_log"] < 6 * N


if __name__ == "__main__":
    sys.exit(run_standalone(test_ablation_variable_skew))
