"""Fig. 5 — total message meta-data space overhead as a function of n and
w_rate in full replication protocols (Opt-Track-CRP / optP ratio).

Paper's finding: slightly above 1 at n=5 (CRP's log can exceed optP's
tiny vector there), dropping to 50-55% at n=40, with higher write rates
pushing the ratio further down.
"""

import sys

from _common import cell, chart, run_standalone, show

from repro.experiments.configs import FULL_NS, WRITE_RATES


def compute_fig5_rows():
    rows = []
    for wr in WRITE_RATES:
        for n in FULL_NS:
            crp = cell("opt-track-crp", n, wr)
            optp = cell("optp", n, wr)
            rows.append({
                "n": n,
                "write_rate": wr,
                "crp_KB": crp["SM_bytes"] / 1000,
                "optp_KB": optp["SM_bytes"] / 1000,
                "ratio": crp["SM_bytes"] / optp["SM_bytes"],
            })
    return rows


def test_fig5_total_sm_ratio(benchmark):
    rows = benchmark.pedantic(compute_fig5_rows, rounds=1, iterations=1)
    show(rows, "Fig. 5: total SM overhead ratio Opt-Track-CRP / optP")
    chart(
        {
            f"w={wr}": [(r["n"], r["ratio"]) for r in rows if r["write_rate"] == wr]
            for wr in WRITE_RATES
        },
        title="Fig. 5 (ratio vs n)", x_label="n", y_label="ratio",
    )
    for wr in WRITE_RATES:
        series = [r["ratio"] for r in rows if r["write_rate"] == wr]
        assert series[-1] < series[0]          # falls with n
        assert 0.3 < series[-1] < 0.75         # paper: ~50-55% at n=40
    # near parity (or slight CRP disadvantage) at n=5, as in the paper
    at5 = [r["ratio"] for r in rows if r["n"] == 5]
    assert all(0.8 < x < 1.3 for x in at5)


if __name__ == "__main__":
    sys.exit(run_standalone(test_fig5_total_sm_ratio))
