"""Fig. 3 — average message meta-data space overhead as a function of n
with w_rate = 0.5, partial replication protocols.

Paper's finding: Full-Track's SM/RM sizes grow quadratically in n while
Opt-Track's grow almost linearly; FM is a small constant for both.
"""

import sys

from _common import (
    assert_partial_avg_shapes,
    chart,
    partial_avg_rows,
    run_standalone,
    show,
)


def test_fig3_partial_avg_sizes_wrate_5(benchmark):
    rows = benchmark.pedantic(partial_avg_rows, args=(0.5,), rounds=1, iterations=1)
    show(rows, "Fig. 3: average metadata bytes per message (w_rate=0.5)")
    chart(
        {
            "FT SM": [(r["n"], r["ft_sm_B"]) for r in rows],
            "OT SM": [(r["n"], r["ot_sm_B"]) for r in rows],
            "FM": [(r["n"], r["ot_fm_B"]) for r in rows],
        },
        title="Fig. 3 (bytes vs n, w_rate=0.5)", x_label="n", y_label="bytes",
    )
    assert_partial_avg_shapes(rows)


if __name__ == "__main__":
    sys.exit(run_standalone(test_fig3_partial_avg_sizes_wrate_5))
