"""Pytest wiring for the benchmark suite.

Ensures the benchmarks directory is importable (for ``_common``) and
prints the active scale once per session.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_report_header(config):
    ops = os.environ.get("REPRO_BENCH_OPS", "120 (default)")
    seeds = os.environ.get("REPRO_BENCH_SEEDS", "1 (default)")
    return (
        f"repro benchmarks: ops/process={ops}, seeds={seeds} "
        "(paper scale: REPRO_BENCH_OPS=600)"
    )
