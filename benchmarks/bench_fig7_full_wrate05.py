"""Fig. 7 — average SM meta-data space overhead as a function of n with
w_rate = 0.5, full replication protocols.

Paper's finding: optP's per-SM size is exactly linear in n (its Write
vector), while Opt-Track-CRP's is O(d) — nearly flat in n.
"""

import sys

from _common import (
    assert_full_avg_shapes,
    chart,
    full_avg_rows,
    run_standalone,
    show,
)


def test_fig7_full_avg_sizes_wrate_5(benchmark):
    rows = benchmark.pedantic(full_avg_rows, args=(0.5,), rounds=1, iterations=1)
    show(rows, "Fig. 7: average SM metadata bytes (w_rate=0.5, full replication)")
    chart(
        {
            "optP": [(r["n"], r["optp_sm_B"]) for r in rows],
            "CRP": [(r["n"], r["crp_sm_B"]) for r in rows],
        },
        title="Fig. 7 (bytes vs n, w_rate=0.5)", x_label="n", y_label="bytes",
    )
    assert_full_avg_shapes(rows)


if __name__ == "__main__":
    sys.exit(run_standalone(test_fig7_full_avg_sizes_wrate_5))
