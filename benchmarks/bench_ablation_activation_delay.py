"""Ablation — the cost of causal gating under different network regimes.

Updates that arrive before their causal dependencies sit in the pending
buffer until the activation predicate fires.  Under well-behaved
networks that almost never happens; under heavy cross-channel
reordering it is the norm.  This bench measures mean activation delay
and remote-read RTTs per latency model — the protocol-side latency the
paper's message-size metrics do not show.
"""

import sys

from _common import OPS, run_standalone, show

from repro.experiments.runner import SimulationConfig, run_simulation
from repro.sim.network import (
    AdversarialLatency,
    ConstantLatency,
    LogNormalLatency,
    UniformLatency,
)

MODELS = [
    ("constant", ConstantLatency(50.0)),
    ("uniform", UniformLatency(10.0, 100.0)),
    ("lognormal", LogNormalLatency(median_ms=40.0, sigma=1.0)),
    ("adversarial", AdversarialLatency(1.0, 5000.0)),
]
SEEDS = (0, 1, 2)  # buffering events are rare; aggregate a few runs


def compute_rows():
    rows = []
    for name, model in MODELS:
        buffered = 0
        delay_total = 0.0
        delay_max = 0.0
        rtt_means = []
        for seed in SEEDS:
            cfg = SimulationConfig(protocol="opt-track", n_sites=10,
                                   write_rate=0.5, ops_per_process=OPS,
                                   seed=seed, latency=model)
            col = run_simulation(cfg).collector
            buffered += col.activation_delays.count
            delay_total += col.activation_delays.total
            delay_max = max(delay_max, col.activation_delays.maximum
                            if col.activation_delays.count else 0.0)
            rtt_means.append(col.fetch_rtts.mean)
        rows.append({
            "latency_model": name,
            "mean_activation_delay_ms": delay_total / buffered if buffered else 0.0,
            "max_activation_delay_ms": delay_max,
            "buffered_updates": buffered,
            "mean_fetch_rtt_ms": sum(rtt_means) / len(rtt_means),
        })
    return rows


def test_ablation_activation_delay(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    show(rows, "Ablation: activation buffering delay by latency model")
    by_name = {r["latency_model"]: r for r in rows}
    # constant latency: multicast copies of one write arrive everywhere
    # simultaneously and dependencies always precede dependents
    assert by_name["constant"]["mean_activation_delay_ms"] <= 1e-6
    # heavy reordering must actually exercise the buffering machinery
    assert by_name["adversarial"]["buffered_updates"] > 0
    assert (by_name["adversarial"]["mean_activation_delay_ms"]
            > by_name["uniform"]["mean_activation_delay_ms"])
    # every regime still completes remote reads
    for row in rows:
        assert row["mean_fetch_rtt_ms"] > 0


if __name__ == "__main__":
    sys.exit(run_standalone(test_ablation_activation_delay))
