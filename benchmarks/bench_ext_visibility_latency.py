"""Extension — update visibility latency, partial vs full replication.

Not an exhibit from the paper, but the question its Section V-C raises:
full replication "might improve the latency for accessing these files",
at a large messaging cost.  This bench quantifies the other side of the
ledger the paper leaves qualitative — how long a write takes to become
visible at remote replicas (issue -> causally-gated apply), and how long
remote reads take under partial replication.
"""

import sys

from _common import OPS, run_standalone, show

from repro.experiments.runner import SimulationConfig, run_simulation
from repro.sim.network import UniformLatency

PROTOCOLS = ("opt-track", "full-track", "opt-track-crp", "optp")
N = 12
WRATE = 0.5


def compute_rows():
    rows = []
    for protocol in PROTOCOLS:
        cfg = SimulationConfig(protocol=protocol, n_sites=N, write_rate=WRATE,
                               ops_per_process=OPS, seed=0,
                               latency=UniformLatency(10.0, 100.0))
        result = run_simulation(cfg)
        col = result.collector
        rows.append({
            "protocol": protocol,
            "p": result.placement.replication_factor,
            "mean_visibility_ms": col.visibility_lags.mean,
            "max_visibility_ms": col.visibility_lags.maximum,
            "mean_read_rtt_ms": (col.fetch_rtts.mean if col.fetch_rtts.count else 0.0),
            "remote_reads": col.ops_read_remote,
        })
    return rows


def test_ext_visibility_latency(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    show(rows, f"Extension: update visibility latency (n={N}, w_rate={WRATE})")
    by_proto = {r["protocol"]: r for r in rows}
    for row in rows:
        # visibility is bounded below by the one-way delay and should sit
        # within the same order of magnitude as the 10-100 ms network
        assert 10.0 <= row["mean_visibility_ms"] < 500.0, row
    # full replication never fetches; partial replication pays RTTs on
    # its remote reads — the latency cost the paper trades against
    for proto in ("opt-track-crp", "optp"):
        assert by_proto[proto]["remote_reads"] == 0
    for proto in ("opt-track", "full-track"):
        assert by_proto[proto]["remote_reads"] > 0
        assert by_proto[proto]["mean_read_rtt_ms"] >= 20.0  # two one-way hops


if __name__ == "__main__":
    sys.exit(run_standalone(test_ext_visibility_latency))
