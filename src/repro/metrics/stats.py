"""Small statistics helpers shared by the metrics collector and reports."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["RunningStat", "Summary", "summarize", "percentile"]


@dataclass
class RunningStat:
    """Streaming count/mean/variance/min/max (Welford's algorithm).

    O(1) memory; used for per-message-size statistics where a simulation
    can generate hundreds of thousands of samples.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    minimum: float = math.inf
    maximum: float = -math.inf
    total: float = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        self.total += x
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def variance(self) -> float:
        """Sample variance (0 for fewer than two samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Combine two streams (Chan et al. parallel variance formula)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return self
        n = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / n
        self.mean = (self.mean * self.count + other.mean * other.count) / n
        self.count = n
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self


@dataclass(frozen=True)
class Summary:
    """Immutable snapshot of a sample's descriptive statistics."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    total: float
    p50: float
    p95: float


def percentile(sorted_xs: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile over an already-sorted sequence."""
    if not sorted_xs:
        raise ValueError("empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    if len(sorted_xs) == 1:
        return float(sorted_xs[0])
    pos = (len(sorted_xs) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return float(sorted_xs[lo])
    frac = pos - lo
    return float(sorted_xs[lo] * (1 - frac) + sorted_xs[hi] * frac)


def summarize(xs: Iterable[float]) -> Summary:
    """Descriptive statistics of a finite sample (materializes it once)."""
    data = sorted(float(x) for x in xs)
    if not data:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    rs = RunningStat()
    rs.extend(data)
    return Summary(
        count=rs.count,
        mean=rs.mean,
        stdev=rs.stdev,
        minimum=rs.minimum,
        maximum=rs.maximum,
        total=rs.total,
        p50=percentile(data, 50),
        p95=percentile(data, 95),
    )
