"""Small statistics helpers shared by the metrics collector and reports."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

__all__ = ["RunningStat", "Summary", "summarize", "percentile", "RESERVOIR_CAPACITY"]

#: samples kept per stream for percentile estimation; below this size the
#: reservoir holds every sample and percentiles are exact
RESERVOIR_CAPACITY = 1024

#: fixed seed for the per-stat reservoir sampler — two stats fed the same
#: sample stream keep identical reservoirs, so traced and untraced runs
#: (and repeated runs) report identical percentiles
_RESERVOIR_SEED = 0x5EED


@dataclass(slots=True)
class RunningStat:
    """Streaming count/mean/variance/min/max (Welford's algorithm).

    O(1) memory for the moments; used for per-message-size statistics
    where a simulation can generate hundreds of thousands of samples.
    A bounded reservoir (Vitter's algorithm R, deterministic seed) rides
    along so every consumer also gets p50/p95/p99 estimates — exact
    whenever the stream fits in :data:`RESERVOIR_CAPACITY`.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    minimum: float = math.inf
    maximum: float = -math.inf
    total: float = 0.0
    _reservoir: list = field(default_factory=list, repr=False)
    _sampler: Optional[random.Random] = field(default=None, repr=False, compare=False)

    def add(self, x: float) -> None:
        self.count += 1
        self.total += x
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x
        if len(self._reservoir) < RESERVOIR_CAPACITY:
            self._reservoir.append(x)
        else:
            if self._sampler is None:
                self._sampler = random.Random(_RESERVOIR_SEED)
            j = self._sampler.randrange(self.count)
            if j < RESERVOIR_CAPACITY:
                self._reservoir[j] = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    def add_many(self, xs: Iterable[float]) -> None:
        """Batched :meth:`add` for hot callers (per-record log metrics).

        State evolution is operation-for-operation identical to repeated
        ``add`` calls — same arithmetic order, same reservoir RNG draws —
        so results stay byte-identical; only the per-sample attribute
        traffic is hoisted out of the loop.  The reservoir index draw
        inlines ``Random._randbelow_with_getrandbits`` (rejection-sample
        ``bit_length(count)`` bits until below ``count``) on the same
        ``Random`` instance, so the underlying getrandbits stream — and
        with it every reservoir — is unchanged.
        """
        count = self.count
        total = self.total
        mean = self.mean
        m2 = self._m2
        minimum = self.minimum
        maximum = self.maximum
        reservoir = self._reservoir
        size = len(reservoir)
        sampler = self._sampler
        getrandbits = None if sampler is None else sampler.getrandbits
        append = reservoir.append
        for x in xs:
            count += 1
            total += x
            delta = x - mean
            mean += delta / count
            m2 += delta * (x - mean)
            if x < minimum:
                minimum = x
            if x > maximum:
                maximum = x
            if size < RESERVOIR_CAPACITY:
                append(x)
                size += 1
            else:
                if getrandbits is None:
                    sampler = random.Random(_RESERVOIR_SEED)
                    getrandbits = sampler.getrandbits
                k = count.bit_length()
                j = getrandbits(k)
                while j >= count:
                    j = getrandbits(k)
                if j < RESERVOIR_CAPACITY:
                    reservoir[j] = x
        self.count = count
        self.total = total
        self.mean = mean
        self._m2 = m2
        self.minimum = minimum
        self.maximum = maximum
        self._sampler = sampler

    @property
    def variance(self) -> float:
        """Sample variance (0 for fewer than two samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, q: float) -> float:
        """Percentile estimate from the reservoir (0.0 for an empty stream).

        Exact while fewer than :data:`RESERVOIR_CAPACITY` samples were
        seen; an unbiased uniform-subsample estimate beyond that.
        """
        if not self._reservoir:
            return 0.0
        return percentile(sorted(self._reservoir), q)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def quantiles(self) -> dict:
        """The standard tail snapshot: {"p50": ..., "p95": ..., "p99": ...}."""
        data = sorted(self._reservoir)
        if not data:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "p50": percentile(data, 50),
            "p95": percentile(data, 95),
            "p99": percentile(data, 99),
        }

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Combine two streams (Chan et al. parallel variance formula).

        Reservoirs are combined by count-weighted deterministic
        subsampling, keeping the merged reservoir a uniform-ish sample
        of the concatenated stream.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            self._reservoir = list(other._reservoir)
            self._sampler = None
            return self
        merged_pool = self._merged_reservoir(other)
        n = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / n
        self.mean = (self.mean * self.count + other.mean * other.count) / n
        self.count = n
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self._reservoir = merged_pool
        self._sampler = None
        return self

    def _merged_reservoir(self, other: "RunningStat") -> list:
        pool = self._reservoir + other._reservoir
        if len(pool) <= RESERVOIR_CAPACITY:
            return pool
        # weight by stream size: sample proportionally, deterministically
        rng = random.Random(_RESERVOIR_SEED)
        keep_self = max(1, round(
            RESERVOIR_CAPACITY * self.count / (self.count + other.count)
        ))
        keep_other = RESERVOIR_CAPACITY - keep_self
        out = list(self._reservoir)
        if len(out) > keep_self:
            out = rng.sample(out, keep_self)
        tail = list(other._reservoir)
        if len(tail) > keep_other:
            tail = rng.sample(tail, max(0, keep_other))
        return out + tail


@dataclass(frozen=True)
class Summary:
    """Immutable snapshot of a sample's descriptive statistics."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    total: float
    p50: float
    p95: float
    p99: float = 0.0


def percentile(sorted_xs: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile over an already-sorted sequence."""
    if not sorted_xs:
        raise ValueError("empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    if len(sorted_xs) == 1:
        return float(sorted_xs[0])
    pos = (len(sorted_xs) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return float(sorted_xs[lo])
    frac = pos - lo
    return float(sorted_xs[lo] * (1 - frac) + sorted_xs[hi] * frac)


def summarize(xs: Iterable[float]) -> Summary:
    """Descriptive statistics of a finite sample (materializes it once)."""
    data = sorted(float(x) for x in xs)
    if not data:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    rs = RunningStat()
    rs.extend(data)
    return Summary(
        count=rs.count,
        mean=rs.mean,
        stdev=rs.stdev,
        minimum=rs.minimum,
        maximum=rs.maximum,
        total=rs.total,
        p50=percentile(data, 50),
        p95=percentile(data, 95),
        p99=percentile(data, 99),
    )
