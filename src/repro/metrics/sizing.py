"""Byte-size model for protocol message metadata.

The paper reports message *meta-data space overhead* in bytes/KB as
serialized by JDK-8 object streams over TCP.  We cannot reproduce Java
serialization byte-for-byte, so sizes are computed from the logical
content of each message through an explicit, documented model:

* fixed-width fields (site ids, clocks, variable ids, values) have named
  byte costs;
* causality metadata costs what its structure implies — ``8*n^2`` for a
  Write matrix, ``10*n`` for a Write vector, a per-entry cost plus
  per-destination cost for Opt-Track logs, ``10`` per 2-tuple for
  Opt-Track-CRP logs;
* each message class carries a fixed *envelope* (transport + Java
  object-stream framing) calibrated once against the paper's absolute
  numbers (Tables II and III at n=5) and then left untouched.

The scaling *shapes* — quadratic vs linear vs O(d) — are produced by the
actual data structures the protocols maintain, not by the calibration;
see EXPERIMENTS.md for the paper-vs-measured comparison.

All methods return sizes in bytes.  Table values in the paper quoted in
KB use 1 KB = 1000 bytes (their byte-level Table III and KB-level
Table II are consistent under that convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["SizeModel", "DEFAULT_SIZE_MODEL", "KILOBYTE"]

#: The paper's KB convention (SI, not KiB).
KILOBYTE = 1000.0


@dataclass(frozen=True)
class SizeModel:
    """Named byte costs for every field kind appearing in a message.

    Defaults are the calibrated values; construct with overrides to study
    other serialization regimes (e.g. varint encodings), or use
    :meth:`compact` for a headerless model useful in unit tests.
    """

    # --- primitive fields --------------------------------------------
    site_id: int = 4
    var_id: int = 4
    value: int = 8           #: payload value slot (metadata excludes blobs)
    clock: int = 8           #: one logical-clock counter

    # --- causality structures ----------------------------------------
    matrix_entry: int = 8    #: one cell of the n x n Write matrix (Full-Track)
    vector_entry: int = 10   #: one cell of the size-n Write vector (optP)
    tuple_entry: int = 10    #: one (site, clock) 2-tuple (Opt-Track-CRP)
    log_entry_overhead: int = 12   #: per Opt-Track log record: ids + list header
    dest_id: int = 4         #: one destination in an Opt-Track record

    # --- message envelopes (framing + serialization headers) ----------
    envelope_full_track: int = 306
    envelope_opt_track: int = 236
    envelope_crp: int = 236
    envelope_optp: int = 197
    fm_size: int = 64        #: FM is "a constant byte count c" in the paper
    #: one (writer, threshold) pair on a fetch request — the soundness
    #: fix for remote reads (see DESIGN.md); typically 0-3 pairs ride
    #: along, so FM stays near-constant in practice
    fm_requirement: int = 12

    def __post_init__(self) -> None:
        for name in (
            "site_id", "var_id", "value", "clock", "matrix_entry",
            "vector_entry", "tuple_entry", "log_entry_overhead", "dest_id",
            "envelope_full_track", "envelope_opt_track", "envelope_crp",
            "envelope_optp", "fm_size", "fm_requirement",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"size constant {name} must be non-negative")

    # ------------------------------------------------------------------
    # causality metadata structures
    # ------------------------------------------------------------------
    def matrix_clock(self, n: int) -> int:
        """Bytes for an n x n Write matrix."""
        return self.matrix_entry * n * n

    def vector_clock(self, n: int) -> int:
        """Bytes for a size-n Write vector (optP)."""
        return self.vector_entry * n

    def opt_track_log(self, dest_counts: Iterable[int]) -> int:
        """Bytes for an Opt-Track log: one count per entry = |Dests|."""
        total = 0
        for d in dest_counts:
            if d < 0:
                raise ValueError("destination count cannot be negative")
            total += self.log_entry_overhead + self.dest_id * d
        return total

    def opt_track_log_shape(self, n_entries: int, total_dests: int) -> int:
        """Equivalent of :meth:`opt_track_log` from aggregate shape numbers
        (hot path: message sizing happens once per sent message)."""
        if n_entries < 0 or total_dests < 0:
            raise ValueError("log shape cannot be negative")
        return self.log_entry_overhead * n_entries + self.dest_id * total_dests

    def tuple_log(self, n_entries: int) -> int:
        """Bytes for an Opt-Track-CRP log of (site, clock) 2-tuples."""
        if n_entries < 0:
            raise ValueError("entry count cannot be negative")
        return self.tuple_entry * n_entries

    # ------------------------------------------------------------------
    # whole messages — partial replication protocols
    # ------------------------------------------------------------------
    def sm_full_track(self, n: int) -> int:
        """SM(x_h, v, Write) in Full-Track."""
        return self.envelope_full_track + self.var_id + self.value + self.matrix_clock(n)

    def rm_full_track(self, n: int) -> int:
        """RM(v, LastWriteOn<h>) in Full-Track: the stored Write matrix rides along."""
        return self.envelope_full_track + self.value + self.matrix_clock(n)

    def sm_opt_track(self, dest_counts: Iterable[int]) -> int:
        """SM(x_h, v, site, clock, L_w) in Opt-Track."""
        return (
            self.envelope_opt_track
            + self.var_id
            + self.value
            + self.site_id
            + self.clock
            + self.opt_track_log(dest_counts)
        )

    def rm_opt_track(self, dest_counts: Iterable[int]) -> int:
        """RM(v, LastWriteOn<h>) in Opt-Track: write id + piggybacked log."""
        return (
            self.envelope_opt_track
            + self.value
            + self.site_id
            + self.clock
            + self.opt_track_log(dest_counts)
        )

    def fm(self) -> int:
        """FM(x_h): the constant-size fetch request (same in all protocols)."""
        return self.fm_size

    # ------------------------------------------------------------------
    # whole messages — full replication protocols
    # ------------------------------------------------------------------
    def sm_opt_track_crp(self, n_log_entries: int) -> int:
        """SM(x_h, v, site, clock, LOG) in Opt-Track-CRP."""
        return (
            self.envelope_crp
            + self.var_id
            + self.value
            + self.site_id
            + self.clock
            + self.tuple_log(n_log_entries)
        )

    def sm_optp(self, n: int) -> int:
        """SM(x_h, v, site, Write) in optP (Baldoni et al.)."""
        return self.envelope_optp + self.var_id + self.value + self.vector_clock(n)

    # ------------------------------------------------------------------
    @staticmethod
    def compact() -> "SizeModel":
        """A headerless model: pure structure, no envelopes.

        Useful in unit tests where exact arithmetic should be readable,
        and in ablations isolating structural growth from fixed costs.
        """
        return SizeModel(
            envelope_full_track=0,
            envelope_opt_track=0,
            envelope_crp=0,
            envelope_optp=0,
            fm_size=0,
        )


#: Shared default instance (immutable).
DEFAULT_SIZE_MODEL = SizeModel()
