"""Measurement: message-size model, collectors, summary statistics."""

from .collector import MessageKind, MessageTally, MetricsCollector
from .sizing import DEFAULT_SIZE_MODEL, KILOBYTE, SizeModel
from .stats import RunningStat, Summary, percentile, summarize

__all__ = [
    "MessageKind",
    "MessageTally",
    "MetricsCollector",
    "SizeModel",
    "DEFAULT_SIZE_MODEL",
    "KILOBYTE",
    "RunningStat",
    "Summary",
    "summarize",
    "percentile",
]
