"""Whole-program effect inference: certify the protocol cores pure.

Every function in the project gets a set of *effects* — observable
interactions with the world outside its arguments:

``WALL_CLOCK``
    reads real time (``time.time``, ``datetime.now``, ...) — poison for
    bit-deterministic replay;
``UNSEEDED_RNG``
    draws randomness not derived from an injected seed
    (``random.random``, ``numpy.random.default_rng()`` with no seed,
    ``os.urandom``, ``uuid.uuid4``, ``secrets``);
``FILE_IO``
    touches the filesystem (``open``, ``Path.write_text``,
    ``shutil``/``tempfile``, destructive ``os.*``);
``NETWORK``
    real sockets / HTTP — the simulation must stay in-process;
``SIM_INTERNAL``
    references simulator machinery (``repro.sim.*``) at runtime from
    outside the sim layer, except through a declared data-only port —
    the core protocols must not know the substrate that hosts them;
``MUTATES_SENT_PAYLOAD``
    the SIM005 aliasing dataflow found a mutation of data already
    captured in a sent message.

Leaf effects are detected directly at call/name sites, then propagated
up the reverse call graph to a fixpoint: a caller inherits every effect
of every statically-resolved callee, with a witness chain explaining
*why* (``a calls b calls c which calls time.time at line N``).

The analysis is deliberately conservative in one direction only: the
call graph under-approximates dynamic dispatch, so injected ports
(``self.ctx.network.send``) contribute nothing — which is the whole
point.  A function certified effect-free here is a pure function of its
arguments plus whatever the harness injects.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from .callgraph import MODULE_FN, FunctionInfo, ModuleInfo, ProjectGraph
from .contract import Contract
from .lint import Finding
from .rules._util import parse_suppressions
from .rules.aliasing import analyze_function as _aliasing_mutations

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "EFFECTS",
    "EffectReport",
    "analyze_effects",
    "diff_against_baseline",
    "load_baseline",
    "render_baseline",
]

EFFECTS = (
    "WALL_CLOCK",
    "UNSEEDED_RNG",
    "FILE_IO",
    "NETWORK",
    "SIM_INTERNAL",
    "MUTATES_SENT_PAYLOAD",
)

BASELINE_SCHEMA_VERSION = 1

# -- leaf effect tables -------------------------------------------------
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.localtime", "time.gmtime", "time.ctime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    # asyncio's clock surface: loop.time() reads the wall clock and
    # loop.call_later/call_at arm real-time timers; asyncio.sleep awaits
    # real time.  The bare "loop." spellings catch the common local
    # variable idiom (`loop = asyncio.get_event_loop(); loop.time()`);
    # attribute receivers (`self._loop.time()`) resolve through
    # _WALL_CLOCK_METHODS below.
    "asyncio.sleep", "loop.time", "loop.call_later", "loop.call_at",
})
#: receiver-agnostic method names that always mean real-time scheduling
_WALL_CLOCK_METHODS = frozenset({"call_later", "call_at"})
#: ``<receiver>.time()`` is a wall-clock read when the receiver is an
#: event loop; matched by the receiver attribute's tail (``loop``,
#: ``_loop``, ``event_loop``...) so instance attributes resolve too
_LOOP_RECEIVER_SUFFIX = "loop"

_UNSEEDED_EXACT = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4", "random.SystemRandom",
})
#: module-function trees drawing from process-global RNG state
_UNSEEDED_PREFIXES = ("random.", "numpy.random.", "np.random.", "secrets.")
#: constructors that are *seeded* uses when given a seed argument and
#: unseeded uses when called bare
_RNG_CONSTRUCTORS = frozenset({
    "random.Random", "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.RandomState", "numpy.random.SeedSequence",
})

_FILE_IO_EXACT = frozenset({
    "open", "os.remove", "os.unlink", "os.rename", "os.replace",
    "os.makedirs", "os.mkdir", "os.rmdir", "os.removedirs", "os.listdir",
    "os.scandir", "os.stat", "os.open", "os.read", "os.write",
    "os.fsync", "os.truncate",
})
_FILE_IO_PREFIXES = ("shutil.", "tempfile.")
#: receiver-agnostic method names that always mean filesystem access
_FILE_IO_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

_NETWORK_PREFIXES = (
    "socket.", "http.client.", "urllib.request.", "requests.",
    "ssl.", "asyncio.open_connection", "asyncio.start_server",
)


@dataclass(frozen=True)
class Witness:
    """Why a function has an effect: a leaf fact or a call edge."""

    kind: str  # "leaf" | "call"
    detail: str  # leaf description, or callee qual
    line: int


@dataclass
class EffectReport:
    """The inferred effect table plus provenance for every fact."""

    graph: ProjectGraph
    #: qual -> effect set
    effects: dict[str, set[str]]
    #: (qual, effect) -> first witness found
    witnesses: dict[tuple[str, str], Witness]

    # ------------------------------------------------------------------
    def chain(self, qual: str, effect: str, *, limit: int = 6) -> list[str]:
        """Human-readable witness chain, leaf last."""
        out: list[str] = []
        seen: set[str] = set()
        cur = qual
        while cur not in seen and len(out) < limit:
            seen.add(cur)
            wit = self.witnesses.get((cur, effect))
            if wit is None:
                break
            if wit.kind == "leaf":
                out.append(f"{cur}:{wit.line} {wit.detail}")
                break
            out.append(f"{cur}:{wit.line} calls {wit.detail}")
            cur = wit.detail
        return out

    def nonempty(self) -> dict[str, set[str]]:
        return {q: e for q, e in self.effects.items() if e}

    def findings(
        self, contract: Contract, *, code: str = "EFF001"
    ) -> list[Finding]:
        """EFF001 for forbidden effects inside the pure trees, plus
        EFF003 for impure data-only port targets."""
        out: list[Finding] = []
        forbidden = set(contract.forbidden_effects) or set(EFFECTS)
        for qual in sorted(self.effects):
            if not contract.in_pure_tree(qual):
                continue
            fn = self.graph.function(qual)
            if fn is None:
                continue
            for effect in sorted(self.effects[qual] & forbidden):
                if contract.allows_effect(qual, effect):
                    continue
                if self._suppressed(fn, code):
                    continue
                chain = self.chain(qual, effect)
                out.append(Finding(
                    code=code,
                    path=self._display(fn),
                    line=fn.lineno,
                    col=0,
                    message=(
                        f"{qual} is in a substrate-pure tree but "
                        f"transitively reaches {effect}: "
                        + " <- ".join(reversed(chain))
                    ),
                    hint=(
                        "inject the dependency through a port argument, "
                        "or add a justified [[effects.allow]] entry to "
                        "the contract"
                    ),
                ))
        out.extend(self._port_findings(contract))
        return out

    def _port_findings(self, contract: Contract) -> list[Finding]:
        """EFF003: data-only port targets must themselves be pure."""
        out: list[Finding] = []
        forbidden = set(contract.forbidden_effects) or set(EFFECTS)
        for port in contract.data_only_targets():
            for qual in sorted(self.effects):
                fn = self.graph.function(qual)
                if fn is None or not _has_prefix(fn.module, port.imported):
                    continue
                bad = sorted(self.effects[qual] & forbidden)
                if not bad:
                    continue
                chain = self.chain(qual, bad[0])
                out.append(Finding(
                    code="EFF003",
                    path=self._display(fn),
                    line=fn.lineno,
                    col=0,
                    message=(
                        f"{qual} has {', '.join(bad)} but its module is "
                        f"the target of data-only port "
                        f"{port.importer} -> {port.imported}: "
                        + " <- ".join(reversed(chain))
                    ),
                    hint=(
                        "a data-only port target must stay effect-free; "
                        "remove the effect or re-declare the port kind"
                    ),
                ))
        return out

    # ------------------------------------------------------------------
    def _display(self, fn: FunctionInfo) -> str:
        return _display_path(self.graph.modules[fn.module].path)

    def _suppressed(self, fn: FunctionInfo, code: str) -> bool:
        mod = self.graph.modules.get(fn.module)
        if mod is None:
            return False
        for sup in parse_suppressions(mod.lines):
            if sup.line in (fn.lineno, fn.lineno - 1) and code in sup.codes:
                return sup.reason is not None
        return False


# ----------------------------------------------------------------------
def analyze_effects(
    graph: ProjectGraph, contract: Contract
) -> EffectReport:
    """Leaf detection + fixpoint propagation over the reverse call graph."""
    report = EffectReport(graph=graph, effects={}, witnesses={})
    for fn in graph.functions.values():
        effs: set[str] = set()
        mod = graph.modules[fn.module]
        for effect, detail, line in _leaf_effects(graph, mod, fn, contract):
            effs.add(effect)
            report.witnesses.setdefault(
                (fn.qual, effect), Witness("leaf", detail, line)
            )
        report.effects[fn.qual] = effs

    # fixpoint: callers inherit callee effects
    callers = graph.callers_of()
    work = [q for q, e in report.effects.items() if e]
    while work:
        callee = work.pop()
        callee_effects = report.effects[callee]
        for caller in callers.get(callee, ()):
            fn = graph.functions[caller]
            missing = callee_effects - report.effects[caller]
            if not missing:
                continue
            line = _call_line(graph, fn, callee)
            for effect in missing:
                report.effects[caller].add(effect)
                report.witnesses.setdefault(
                    (caller, effect), Witness("call", callee, line)
                )
            work.append(caller)
    return report


def _call_line(graph: ProjectGraph, fn: FunctionInfo, callee: str) -> int:
    """Line of the first call site of ``callee`` (for witness chains)."""
    return fn.callee_lines.get(callee, fn.lineno)


def _leaf_effects(
    graph: ProjectGraph,
    mod: ModuleInfo,
    fn: FunctionInfo,
    contract: Contract,
) -> Iterator[tuple[str, str, int]]:
    """(effect, detail, line) facts detected directly in ``fn``."""
    in_sim = _has_prefix(fn.module, f"{contract.package}.sim")
    sim_prefix = f"{contract.package}.sim."
    for node in graph.own_nodes(fn):
        if id(node) in mod.non_runtime_nodes:
            continue
        if isinstance(node, ast.Call):
            target = _call_target(mod, node)
            if target is not None:
                effect = _classify_call(target, node)
                if effect is not None:
                    yield effect, f"calls {target}", node.lineno
            meth = _method_name(node)
            if meth in _FILE_IO_METHODS:
                yield "FILE_IO", f"calls .{meth}()", node.lineno
            elif meth in _WALL_CLOCK_METHODS:
                yield "WALL_CLOCK", f"calls .{meth}()", node.lineno
            elif meth == "time" and _receiver_tail(node).endswith(
                _LOOP_RECEIVER_SUFFIX
            ):
                yield (
                    "WALL_CLOCK",
                    "calls .time() on an event loop",
                    node.lineno,
                )
        elif (
            not in_sim
            and isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
        ):
            target = mod.import_map.get(node.id)
            if (
                target is not None
                and target.startswith(sim_prefix)
                and not _data_only_exempt(contract, fn.module, target)
            ):
                yield (
                    "SIM_INTERNAL",
                    f"references {target} at runtime",
                    node.lineno,
                )
    # SIM005 aliasing verdicts become an effect fact
    if isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for mut in _aliasing_mutations(fn.node):
            yield (
                "MUTATES_SENT_PAYLOAD",
                f"mutates '{mut.ref}' after it was sent "
                f"(line {mut.send_line})",
                mut.node.lineno,
            )


def _classify_call(target: str, node: ast.Call) -> Optional[str]:
    if target in _WALL_CLOCK:
        return "WALL_CLOCK"
    if target in _RNG_CONSTRUCTORS:
        # seeded constructions are the sanctioned idiom; a bare call
        # falls back to entropy from the OS
        if node.args or any(
            kw.arg in ("seed", "x") for kw in node.keywords
        ):
            return None
        return "UNSEEDED_RNG"
    if target in _UNSEEDED_EXACT or target.startswith(_UNSEEDED_PREFIXES):
        return "UNSEEDED_RNG"
    if target in _FILE_IO_EXACT or target.startswith(_FILE_IO_PREFIXES):
        return "FILE_IO"
    if target.startswith(_NETWORK_PREFIXES):
        return "NETWORK"
    return None


def _call_target(mod: ModuleInfo, node: ast.Call) -> Optional[str]:
    """Dotted call name with the head resolved through the import map.

    ``perf_counter()`` after ``from time import perf_counter`` becomes
    ``time.perf_counter``; an unresolvable head is returned verbatim so
    builtins like ``open`` still match.
    """
    parts: list[str] = []
    cur: ast.AST = node.func
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    head = cur.id
    rest = ".".join(reversed(parts))
    resolved = mod.import_map.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved


def _method_name(node: ast.Call) -> Optional[str]:
    return node.func.attr if isinstance(node.func, ast.Attribute) else None


def _receiver_tail(node: ast.Call) -> str:
    """The attribute/name immediately below a method call's receiver:
    ``self._loop.time()`` -> ``_loop``, ``loop.time()`` -> ``loop``."""
    if not isinstance(node.func, ast.Attribute):
        return ""
    recv = node.func.value
    if isinstance(recv, ast.Attribute):
        return recv.attr
    if isinstance(recv, ast.Name):
        return recv.id
    return ""


def _data_only_exempt(
    contract: Contract, importer_mod: str, target: str
) -> bool:
    for port in contract.data_only_targets():
        if _has_prefix(importer_mod, port.importer) and _has_prefix(
            target, port.imported
        ):
            return True
    return False


def _has_prefix(dotted: str, prefix: str) -> bool:
    return dotted == prefix or dotted.startswith(prefix + ".")


def _display_path(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd().resolve()))
    except ValueError:
        return str(path)


# -- baseline ----------------------------------------------------------
def render_baseline(report: EffectReport, package: str) -> str:
    """The committed certificate: every effectful function and why."""
    doc = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "package": package,
        "effects": {
            qual: sorted(effs)
            for qual, effs in sorted(report.nonempty().items())
        },
    }
    return json.dumps(doc, indent=2) + "\n"


def load_baseline(path: Path) -> Optional[dict[str, set[str]]]:
    if not path.is_file():
        return None
    doc = json.loads(path.read_text(encoding="utf-8"))
    return {q: set(e) for q, e in doc.get("effects", {}).items()}


def diff_against_baseline(
    report: EffectReport, baseline: dict[str, set[str]]
) -> list[Finding]:
    """EFF002 for every effect not recorded in the baseline.

    Only *additions* fail — code getting purer never blocks a merge;
    ``--write-baseline`` refreshes the certificate either way.
    """
    out: list[Finding] = []
    for qual, effs in sorted(report.nonempty().items()):
        new = effs - baseline.get(qual, set())
        if not new:
            continue
        fn = report.graph.function(qual)
        if fn is None:
            continue
        chains = [
            " <- ".join(reversed(report.chain(qual, e))) for e in sorted(new)
        ]
        out.append(Finding(
            code="EFF002",
            path=_display_path(report.graph.modules[fn.module].path),
            line=fn.lineno,
            col=0,
            message=(
                f"{qual} gained effect(s) not in the baseline: "
                f"{', '.join(sorted(new))} ({'; '.join(chains)})"
            ),
            hint=(
                "review the new effect; if intentional run "
                "`repro check --effects --write-baseline` and commit"
            ),
        ))
    return out
