"""Strict-typing gate: run mypy over the hot packages when available.

The container this repo develops in does not always ship mypy; CI
installs it (see the ``check`` workflow job).  The gate therefore has
three outcomes: ``passed``, ``failed`` (findings, non-zero exit), and
``skipped`` (mypy not importable — reported loudly, but not an error,
so `python -m repro.check` stays usable offline).
"""

from __future__ import annotations

import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

__all__ = ["MypyResult", "run_mypy", "mypy_available", "MYPY_TARGETS"]

#: packages under strict per-module configuration in pyproject.toml
MYPY_TARGETS = ("src/repro/core", "src/repro/sim", "src/repro/check")


@dataclass(frozen=True)
class MypyResult:
    status: str  # "passed" | "failed" | "skipped"
    output: str = ""

    @property
    def ok(self) -> bool:
        return self.status != "failed"


def mypy_available() -> bool:
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


def run_mypy(
    root: Path, targets: Optional[tuple[str, ...]] = None
) -> MypyResult:
    """Invoke ``python -m mypy`` over ``targets`` relative to ``root``."""
    if not mypy_available():
        return MypyResult(
            status="skipped",
            output="mypy is not installed; typing gate skipped "
                   "(pip install -e '.[dev]' to enable)",
        )
    paths = [str(root / t) for t in (targets or MYPY_TARGETS)]
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", *paths],
        cwd=root,
        capture_output=True,
        text=True,
    )
    status = "passed" if proc.returncode == 0 else "failed"
    return MypyResult(status=status, output=proc.stdout + proc.stderr)
