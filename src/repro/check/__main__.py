"""Entry point: ``python -m repro.check``."""

from .cli import main

raise SystemExit(main())
