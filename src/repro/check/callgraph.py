"""Project-wide import graph and call graph over a python package tree.

This is the substrate of the whole-program analyzers
(:mod:`repro.check.effects`, :mod:`repro.check.layers`).  It parses
every module under a source root once and extracts:

* **modules** — dotted name, path, AST, and a per-module import table
  mapping local aliases to fully-qualified targets (relative imports
  resolved against the module's package);
* **import edges** — (importer, imported module) pairs with line
  numbers, split into *runtime* and *typing-only* (``if TYPE_CHECKING:``
  blocks), plus per-symbol runtime-use tracking so the layer checker
  can verify an import is genuinely annotation-only;
* **functions** — every ``def``/``async def`` plus a synthetic
  ``<module>`` function per file for top-level code, keyed by qualified
  name (``repro.core.base.CausalProtocol._send``);
* **call edges** — best-effort static resolution of calls: direct
  names, imported names, ``module.attr`` through import aliases,
  ``self.method`` through the enclosing class and its statically
  resolvable project base classes, and class instantiations (resolved
  to ``__init__``).

The resolution is deliberately an *under*-approximation of dynamic
dispatch (unresolvable attribute calls like ``self.ctx.network.send``
produce no edge): injected ports are opaque at their call sites, which
is exactly what makes the protocol cores analyzable as pure functions
of their inputs.  The effect analyzer compensates with leaf-effect
facts detected directly at call sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from .lint import iter_python_files
from .rules._util import is_generated_source

__all__ = [
    "FunctionInfo",
    "ImportEdge",
    "ModuleInfo",
    "ProjectGraph",
    "MODULE_FN",
]

#: name of the synthetic per-module function holding top-level code
MODULE_FN = "<module>"


@dataclass
class FunctionInfo:
    """One function (or the synthetic module body) in the project."""

    qual: str
    module: str
    name: str
    node: ast.AST
    lineno: int
    class_name: Optional[str] = None
    #: qualified names of statically resolved callees
    callees: set[str] = field(default_factory=set)
    #: callee qual -> first call-site line (witness chains)
    callee_lines: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class ImportEdge:
    """One ``import``/``from-import`` of a project module."""

    importer: str
    imported: str
    lineno: int
    #: local names bound by this import (aliases or symbol names)
    names: tuple[str, ...]
    #: True when the import sits under ``if TYPE_CHECKING:``
    typing_only: bool


@dataclass
class ModuleInfo:
    """One parsed module and its local symbol/import tables."""

    name: str
    path: Path
    tree: ast.Module
    is_package: bool = False
    #: source split into lines (for suppression comments in analyzers)
    lines: list[str] = field(default_factory=list)
    #: ids of nodes inside annotations / TYPE_CHECKING blocks — these
    #: never evaluate at runtime under `from __future__ import annotations`
    non_runtime_nodes: set[int] = field(default_factory=set)
    #: local alias -> fully qualified target ("repro.sim.engine",
    #: "repro.sim.engine.Simulator", "time", "numpy.random", ...)
    import_map: dict[str, str] = field(default_factory=dict)
    import_edges: list[ImportEdge] = field(default_factory=list)
    #: local function name -> qual (module-level defs only)
    functions: dict[str, str] = field(default_factory=dict)
    #: local class name -> {method name -> qual} and base-name list
    classes: dict[str, "ClassInfo"] = field(default_factory=dict)
    #: local names used outside annotations / TYPE_CHECKING blocks
    runtime_names: set[str] = field(default_factory=set)
    #: lineno of the first runtime use per local name (diagnostics)
    runtime_use_lines: dict[str, int] = field(default_factory=dict)


@dataclass
class ClassInfo:
    name: str
    module: str
    bases: tuple[str, ...]
    methods: dict[str, str] = field(default_factory=dict)


class ProjectGraph:
    """Modules, imports, functions, and resolved call edges of one tree."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: "module.Class" -> ClassInfo for cross-module base resolution
        self._classes: dict[str, ClassInfo] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, src_root: Path, package: str) -> "ProjectGraph":
        """Parse ``src_root/package`` and resolve the call graph."""
        graph = cls()
        pkg_dir = src_root / package.replace(".", "/")
        for path in iter_python_files([pkg_dir]):
            text = path.read_text(encoding="utf-8")
            if is_generated_source(text):
                continue
            try:
                tree = ast.parse(text, filename=str(path))
            except SyntaxError:
                continue  # the lint pass reports this as SIM999
            name = _module_name(path, src_root)
            graph.modules[name] = ModuleInfo(
                name=name, path=path, tree=tree,
                is_package=path.name == "__init__.py",
                lines=text.splitlines(),
            )
        for mod in graph.modules.values():
            graph._collect_module(mod)
        for mod in graph.modules.values():
            graph._resolve_calls(mod)
        return graph

    # ------------------------------------------------------------------
    def function(self, qual: str) -> Optional[FunctionInfo]:
        return self.functions.get(qual)

    def callers_of(self) -> dict[str, set[str]]:
        """Reverse call graph: callee qual -> caller quals."""
        rev: dict[str, set[str]] = {}
        for fn in self.functions.values():
            for callee in fn.callees:
                rev.setdefault(callee, set()).add(fn.qual)
        return rev

    # -- collection ----------------------------------------------------
    def _collect_module(self, mod: ModuleInfo) -> None:
        typing_only_nodes = _type_checking_blocks(mod.tree)
        for node in ast.walk(mod.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._collect_import(
                    mod, node, typing_only=id(node) in typing_only_nodes
                )
        # module-level functions and classes
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{mod.name}.{stmt.name}"
                mod.functions[stmt.name] = qual
                self.functions[qual] = FunctionInfo(
                    qual=qual, module=mod.name, name=stmt.name,
                    node=stmt, lineno=stmt.lineno,
                )
            elif isinstance(stmt, ast.ClassDef):
                self._collect_class(mod, stmt)
        # synthetic module body (top-level statements incl. lambdas)
        qual = f"{mod.name}.{MODULE_FN}"
        self.functions[qual] = FunctionInfo(
            qual=qual, module=mod.name, name=MODULE_FN,
            node=mod.tree, lineno=1,
        )
        # runtime name usage (outside annotations and TYPE_CHECKING)
        annotation_nodes = _annotation_nodes(mod.tree)
        skip = typing_only_nodes | annotation_nodes
        mod.non_runtime_nodes = skip
        for node in ast.walk(mod.tree):
            if id(node) in skip:
                continue
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Load, ast.Del)
            ):
                mod.runtime_names.add(node.id)
                mod.runtime_use_lines.setdefault(node.id, node.lineno)

    def _collect_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        bases = tuple(
            b for b in (_dotted(base) for base in node.bases) if b is not None
        )
        info = ClassInfo(name=node.name, module=mod.name, bases=bases)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{mod.name}.{node.name}.{stmt.name}"
                info.methods[stmt.name] = qual
                self.functions[qual] = FunctionInfo(
                    qual=qual, module=mod.name, name=stmt.name,
                    node=stmt, lineno=stmt.lineno, class_name=node.name,
                )
        mod.classes[node.name] = info
        self._classes[f"{mod.name}.{node.name}"] = info

    def _collect_import(
        self, mod: ModuleInfo, node: ast.AST, *, typing_only: bool
    ) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                # `import a.b` binds `a`; `import a.b as c` binds c -> a.b
                local = alias.asname or alias.name.split(".")[0]
                mod.import_map[local] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                mod.import_edges.append(ImportEdge(
                    importer=mod.name, imported=alias.name,
                    lineno=node.lineno, names=(local,),
                    typing_only=typing_only,
                ))
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from(mod.name, mod.is_package, node)
            if base is None:
                return
            names = []
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mod.import_map[local] = f"{base}.{alias.name}"
                names.append(local)
            mod.import_edges.append(ImportEdge(
                importer=mod.name, imported=base,
                lineno=node.lineno, names=tuple(names),
                typing_only=typing_only,
            ))

    # -- call resolution -----------------------------------------------
    def _resolve_calls(self, mod: ModuleInfo) -> None:
        for fn in list(self.functions.values()):
            if fn.module != mod.name:
                continue
            owner = mod.classes.get(fn.class_name) if fn.class_name else None
            for node in self.own_nodes(fn):
                if not isinstance(node, ast.Call):
                    continue
                target = self._resolve_call(mod, owner, node)
                if target is not None:
                    fn.callees.add(target)
                    fn.callee_lines.setdefault(target, node.lineno)

    def own_nodes(self, fn: FunctionInfo) -> Iterator[ast.AST]:
        """Nodes belonging to ``fn`` itself.

        For a def: its whole body (nested defs excluded — they are their
        own FunctionInfo only at module/class level, so nested closures
        intentionally stay attributed to their enclosing function).  For
        the synthetic module body: top-level statements minus any
        def/class bodies.
        """
        if fn.name == MODULE_FN:
            assert isinstance(fn.node, ast.Module)
            for stmt in fn.node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    # class bodies: default expressions run at import
                    # time but method bodies do not
                    if isinstance(stmt, ast.ClassDef):
                        for sub in stmt.body:
                            if not isinstance(
                                sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                            ):
                                yield from ast.walk(sub)
                    continue
                yield from ast.walk(stmt)
        else:
            skip: set[int] = set()
            for node in ast.walk(fn.node):
                if id(node) in skip:
                    continue
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and node is not fn.node:
                    for sub in ast.walk(node):
                        skip.add(id(sub))
                    continue
                yield node

    def _resolve_call(
        self,
        mod: ModuleInfo,
        owner: Optional[ClassInfo],
        call: ast.Call,
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(mod, func.id)
        if isinstance(func, ast.Attribute):
            # self.method() / cls.method(): enclosing class + bases
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and owner is not None
            ):
                return self._resolve_method(mod, owner, func.attr)
            dotted = _dotted(func)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                target = mod.import_map.get(head)
                if target is not None and rest:
                    return self._resolve_qualified(f"{target}.{rest}")
        return None

    def _resolve_name(self, mod: ModuleInfo, name: str) -> Optional[str]:
        if name in mod.functions:
            return mod.functions[name]
        if name in mod.classes:
            init = mod.classes[name].methods.get("__init__")
            return init or f"{mod.name}.{name}.<class>"
        target = mod.import_map.get(name)
        if target is not None:
            return self._resolve_qualified(target)
        return None

    def _resolve_qualified(self, target: str) -> Optional[str]:
        """A fully qualified target -> known function qual, if any."""
        # direct module-level function: pkg.mod.fn
        mod_name, _, leaf = target.rpartition(".")
        mod = self.modules.get(mod_name)
        if mod is not None:
            if leaf in mod.functions:
                return mod.functions[leaf]
            if leaf in mod.classes:
                init = mod.classes[leaf].methods.get("__init__")
                return init or f"{mod_name}.{leaf}.<class>"
            # re-export through a package __init__: follow one hop
            chained = mod.import_map.get(leaf)
            if chained is not None and chained != target:
                return self._resolve_qualified(chained)
        # method reference: pkg.mod.Class.meth
        cls_path, _, meth = target.rpartition(".")
        cls = self._classes.get(cls_path)
        if cls is not None:
            return cls.methods.get(meth)
        return None

    def _resolve_method(
        self, mod: ModuleInfo, owner: ClassInfo, meth: str
    ) -> Optional[str]:
        seen: set[str] = set()
        queue: list[ClassInfo] = [owner]
        while queue:
            cls = queue.pop(0)
            key = f"{cls.module}.{cls.name}"
            if key in seen:
                continue
            seen.add(key)
            if meth in cls.methods:
                return cls.methods[meth]
            for base in cls.bases:
                resolved = self._resolve_class_ref(cls.module, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def _resolve_class_ref(
        self, from_module: str, ref: str
    ) -> Optional[ClassInfo]:
        mod = self.modules.get(from_module)
        if mod is None:
            return None
        head, _, rest = ref.partition(".")
        if not rest and head in mod.classes:
            return mod.classes[head]
        target = mod.import_map.get(head)
        if target is None:
            return None
        full = f"{target}.{rest}" if rest else target
        info = self._classes.get(full)
        if info is not None:
            return info
        # re-export through a package __init__
        mod_name, _, leaf = full.rpartition(".")
        pkg = self.modules.get(mod_name)
        if pkg is not None:
            chained = pkg.import_map.get(leaf)
            if chained is not None:
                return self._classes.get(chained)
        return None


# ----------------------------------------------------------------------
def _module_name(path: Path, src_root: Path) -> str:
    rel = path.resolve().relative_to(src_root.resolve())
    parts = list(rel.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _resolve_from(
    module: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Fully qualified base module of a from-import.

    Level ``N`` strips ``N`` components from the importer's *package*
    path: for the module file ``pkg/a/b.py`` the package is ``pkg.a``;
    for the package ``pkg/a/__init__.py`` it is ``pkg.a`` itself.
    """
    if node.level == 0:
        return node.module
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]  # the containing package of a plain module
    base_parts = parts[: len(parts) - (node.level - 1)]
    if not base_parts:
        return node.module
    base = ".".join(base_parts)
    return f"{base}.{node.module}" if node.module else base


def _dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _type_checking_blocks(tree: ast.Module) -> set[int]:
    """ids of every node inside an ``if TYPE_CHECKING:`` block."""
    out: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = (
            test.id if isinstance(test, ast.Name)
            else test.attr if isinstance(test, ast.Attribute)
            else None
        )
        if name == "TYPE_CHECKING":
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    out.add(id(sub))
    return out


def _annotation_nodes(tree: ast.Module) -> set[int]:
    """ids of every node inside an annotation expression.

    With ``from __future__ import annotations`` (repository-wide
    convention) these never evaluate at runtime, so names appearing
    only there are not runtime uses.
    """
    out: set[int] = set()
    roots: list[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            roots.append(node.annotation)
        elif isinstance(node, ast.arg) and node.annotation is not None:
            roots.append(node.annotation)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and node.returns is not None:
            roots.append(node.returns)
    for root in roots:
        for sub in ast.walk(root):
            out.add(id(sub))
    return out
