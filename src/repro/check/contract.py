"""The declarative layer contract: parsing and module->layer assignment.

``layers.toml`` (repository root) declares the architecture the
analyzers enforce:

* ``[layers.<name>]`` — a named layer with its ``modules`` (dotted
  prefixes, longest prefix wins) and ``may_import`` (other layer names
  it may depend on; a layer may always import itself);
* ``[[ports]]`` — explicitly sanctioned crossings outside the
  ``may_import`` lattice, each with a ``kind``:

  - ``annotation-only``: the import exists for type annotations only;
    the checker *verifies* no imported name is used at runtime
    (exploiting the repo-wide ``from __future__ import annotations``
    convention) and flags violations as LAY002;
  - ``data-only``: the target is a pure data vocabulary (dataclasses,
    enums); the effect analyzer certifies the target effect-free and
    flags drift as EFF003;
  - ``sanctioned``: a reviewed crossing allowed as-is (use sparingly —
    each one weakens the substrate-independence certificate);

* ``[effects]`` — which subtrees must stay pure (``pure_trees``), which
  effect classes are ``forbidden`` there, and ``[[effects.allow]]``
  entries for reviewed exceptions.

Parsed with :mod:`tomllib` (python >= 3.11); no third-party TOML
dependency.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

__all__ = [
    "Contract",
    "ContractError",
    "EffectAllow",
    "Layer",
    "Port",
    "PORT_KINDS",
]

PORT_KINDS = ("annotation-only", "data-only", "sanctioned")


class ContractError(ValueError):
    """layers.toml is malformed (unknown kind, missing field, ...)."""


@dataclass(frozen=True)
class Layer:
    name: str
    #: dotted module prefixes owned by this layer (longest prefix wins)
    modules: tuple[str, ...]
    #: layer names this layer may import (itself is always allowed);
    #: "*" means anything
    may_import: tuple[str, ...]
    #: top-level stdlib modules this layer must not import at runtime
    forbidden_stdlib: tuple[str, ...] = ()


@dataclass(frozen=True)
class Port:
    """One sanctioned crossing: importer prefix -> imported prefix."""

    importer: str
    imported: str
    kind: str
    reason: str

    def matches(self, importer_mod: str, imported_mod: str) -> bool:
        return _has_prefix(importer_mod, self.importer) and _has_prefix(
            imported_mod, self.imported
        )


@dataclass(frozen=True)
class EffectAllow:
    """A reviewed exception: this qual prefix may carry these effects."""

    function: str
    effects: tuple[str, ...]
    reason: str

    def matches(self, qual: str, effect: str) -> bool:
        return effect in self.effects and _has_prefix(qual, self.function)


@dataclass
class Contract:
    package: str
    layers: dict[str, Layer] = field(default_factory=dict)
    ports: list[Port] = field(default_factory=list)
    pure_trees: tuple[str, ...] = ()
    forbidden_effects: tuple[str, ...] = ()
    effect_allows: list[EffectAllow] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Contract":
        try:
            data = tomllib.loads(path.read_text(encoding="utf-8"))
        except tomllib.TOMLDecodeError as exc:
            raise ContractError(f"{path}: {exc}") from exc
        return cls.from_dict(data, source=str(path))

    @classmethod
    def from_dict(cls, data: dict, *, source: str = "<dict>") -> "Contract":
        project = data.get("project", {})
        contract = cls(package=str(project.get("package", "repro")))
        for name, spec in data.get("layers", {}).items():
            modules = tuple(spec.get("modules", ()))
            if not modules:
                raise ContractError(
                    f"{source}: layer '{name}' declares no modules"
                )
            contract.layers[name] = Layer(
                name=name,
                modules=modules,
                may_import=tuple(spec.get("may_import", ())),
                forbidden_stdlib=tuple(spec.get("forbidden_stdlib", ())),
            )
        for layer in contract.layers.values():
            for dep in layer.may_import:
                if dep != "*" and dep not in contract.layers:
                    raise ContractError(
                        f"{source}: layer '{layer.name}' may_import "
                        f"unknown layer '{dep}'"
                    )
        for spec in data.get("ports", ()):
            kind = spec.get("kind", "")
            if kind not in PORT_KINDS:
                raise ContractError(
                    f"{source}: port {spec.get('importer')!r} -> "
                    f"{spec.get('imported')!r} has unknown kind {kind!r} "
                    f"(expected one of {', '.join(PORT_KINDS)})"
                )
            if not spec.get("reason"):
                raise ContractError(
                    f"{source}: port {spec.get('importer')!r} -> "
                    f"{spec.get('imported')!r} has no reason — every "
                    "sanctioned crossing must be justified"
                )
            contract.ports.append(Port(
                importer=str(spec["importer"]),
                imported=str(spec["imported"]),
                kind=kind,
                reason=str(spec["reason"]),
            ))
        eff = data.get("effects", {})
        contract.pure_trees = tuple(eff.get("pure_trees", ()))
        contract.forbidden_effects = tuple(eff.get("forbidden", ()))
        for spec in eff.get("allow", ()):
            if not spec.get("reason"):
                raise ContractError(
                    f"{source}: effects.allow for "
                    f"{spec.get('function')!r} has no reason"
                )
            contract.effect_allows.append(EffectAllow(
                function=str(spec["function"]),
                effects=tuple(spec.get("effects", ())),
                reason=str(spec["reason"]),
            ))
        return contract

    # ------------------------------------------------------------------
    def layer_of(self, module: str) -> Optional[Layer]:
        """Longest-prefix layer assignment for a dotted module name."""
        best: Optional[Layer] = None
        best_len = -1
        for layer in self.layers.values():
            for prefix in layer.modules:
                if _has_prefix(module, prefix) and len(prefix) > best_len:
                    best, best_len = layer, len(prefix)
        return best

    def port_for(self, importer: str, imported: str) -> Optional[Port]:
        """The most specific port covering this crossing, if any."""
        best: Optional[Port] = None
        best_len = -1
        for port in self.ports:
            if port.matches(importer, imported):
                key = len(port.importer) + len(port.imported)
                if key > best_len:
                    best, best_len = port, key
        return best

    def in_pure_tree(self, qual: str) -> bool:
        return any(_has_prefix(qual, tree) for tree in self.pure_trees)

    def allows_effect(self, qual: str, effect: str) -> bool:
        return any(a.matches(qual, effect) for a in self.effect_allows)

    def data_only_targets(self) -> list[Port]:
        return [p for p in self.ports if p.kind == "data-only"]


def _has_prefix(dotted: str, prefix: str) -> bool:
    return dotted == prefix or dotted.startswith(prefix + ".")
