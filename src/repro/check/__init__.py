"""repro.check — determinism & causal-metadata sanitizer.

Three layers (see ``docs/static_analysis.md``):

1. **AST lints** (:mod:`repro.check.lint`, :mod:`repro.check.rules`):
   SIM001..SIM008, project-specific determinism rules with fix-it hints
   and a mandatory-justification suppression syntax;
2. **runtime sanitizers** (:mod:`repro.check.sanitizer`): the
   frozen-message network wrapper and the double-run divergence
   detector;
3. **strict typing** (:mod:`repro.check.typing_gate`): mypy over the
   hot packages, configured in ``pyproject.toml``.

All three are wired into ``python -m repro.check``.
"""

# .rules must come first: repro.check.lint imports the shared
# suppression parser from .rules._util, so the cycle only resolves when
# the rules package (whose __init__ pulls in .lint) is entered first.
from .rules import ALL_RULES, all_rules, rule_by_code
from .lint import Finding, Rule, SourceFile, lint_file, lint_paths
from .sanitizer import (
    DivergenceReport,
    MessageMutationError,
    SanitizedNetwork,
    diff_traces,
    double_run,
    fingerprint,
)

__all__ = [
    "Finding",
    "Rule",
    "SourceFile",
    "lint_file",
    "lint_paths",
    "ALL_RULES",
    "all_rules",
    "rule_by_code",
    "DivergenceReport",
    "MessageMutationError",
    "SanitizedNetwork",
    "diff_traces",
    "double_run",
    "fingerprint",
]
