"""``python -m repro.check`` — the determinism & metadata sanitizer CLI.

Sub-behaviours (composable in one invocation):

* **lint** (default): run the SIM001..SIM008 AST rules over the given
  paths (default ``src/``), print ``path:line:col: CODE message`` per
  finding, exit non-zero on any finding;
* **--mypy/--no-mypy**: strict-typing gate over ``core/``/``sim/``/
  ``check/`` (skipped with a notice when mypy is not installed);
* **--double-run**: determinism smoke — run each protocol twice under
  the same seed (optionally through a chaos plan) and fail on the first
  diverging trace event, printing its causal chain.

Examples::

    python -m repro.check src/
    python -m repro.check --explain SIM003
    python -m repro.check --double-run --chaos --protocols full-track,optp
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .lint import lint_paths
from .rules import ALL_RULES, all_rules, rule_by_code

__all__ = ["main", "build_parser"]

#: the four protocols of the paper's comparison (Table IV)
DEFAULT_PROTOCOLS = ("full-track", "opt-track", "opt-track-crp", "optp")


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="determinism & causal-metadata sanitizer "
                    "(AST lints, typing gate, double-run diff)",
    )
    ap.add_argument("paths", nargs="*", type=Path,
                    help="files/directories to lint (default: src/)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    ap.add_argument("--explain", metavar="CODE",
                    help="print one rule's rationale and hint, then exit")
    ap.add_argument("--select", metavar="CODES",
                    help="comma-separated rule codes to run (default: all)")
    ap.add_argument("--no-lint", action="store_true",
                    help="skip the AST lint pass")
    ap.add_argument("--mypy", dest="mypy", action="store_true", default=None,
                    help="force the mypy gate (fail if mypy is missing)")
    ap.add_argument("--no-mypy", dest="mypy", action="store_false",
                    help="skip the mypy gate")
    ap.add_argument("--double-run", action="store_true",
                    help="run the double-run divergence detector")
    ap.add_argument("--protocols", metavar="NAMES",
                    default=",".join(DEFAULT_PROTOCOLS),
                    help="protocols for --double-run (comma-separated)")
    ap.add_argument("--chaos", action="store_true",
                    help="route the double run through a seeded chaos plan")
    ap.add_argument("--n-sites", type=int, default=5,
                    help="sites for the double-run smoke (default 5)")
    ap.add_argument("--ops", type=int, default=30,
                    help="operations per process for --double-run")
    ap.add_argument("--seed", type=int, default=0,
                    help="workload/latency seed for --double-run")
    return ap


def _print_rule_catalog() -> None:
    print("simcheck rules:")
    for cls in ALL_RULES:
        print(f"  {cls.code}  {cls.name:24s} {cls.rationale}")
    print("  SIM000  unjustified-suppression  "
          "a simcheck: ignore[...] comment without ' -- reason'")


def _explain(code: str) -> int:
    if code == "SIM000":
        print("SIM000 unjustified-suppression: every suppression must "
              "carry ' -- <why this is safe>' after the rule list.")
        return 0
    try:
        rule = rule_by_code(code)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(f"{rule.code} {rule.name}")
    print(f"  why : {rule.rationale}")
    print(f"  fix : {rule.hint}")
    print("  mute: append  # simcheck: ignore[{}] -- <justification>"
          .format(rule.code))
    return 0


def _run_lint(paths: Sequence[Path], select: Optional[str]) -> int:
    rules = all_rules()
    if select:
        wanted = {c.strip() for c in select.split(",") if c.strip()}
        rules = [r for r in rules if r.code in wanted]
    root = Path.cwd()
    findings = lint_paths(list(paths), rules, root=root)
    for f in findings:
        print(f.format())
    n = len(findings)
    print(f"simcheck lint: {n} finding{'s' if n != 1 else ''} "
          f"in {len(list(paths))} path(s)")
    return 1 if findings else 0


def _run_mypy(*, force: bool) -> int:
    from .typing_gate import run_mypy

    result = run_mypy(Path.cwd())
    if result.status == "skipped":
        print(result.output)
        return 1 if force else 0
    print(result.output.rstrip() or f"mypy: {result.status}")
    return 0 if result.ok else 1


def _run_double(args: argparse.Namespace) -> int:
    from ..experiments.runner import SimulationConfig
    from ..sim.faults import FaultPlan
    from .sanitizer import double_run

    plan = None
    if args.chaos:
        plan = FaultPlan.uniform(drop_rate=0.05, dup_rate=0.02,
                                 spike_rate=0.02)
    failures = 0
    for proto in [p.strip() for p in args.protocols.split(",") if p.strip()]:
        config = SimulationConfig(
            protocol=proto,
            n_sites=args.n_sites,
            n_vars=40,
            ops_per_process=args.ops,
            seed=args.seed,
            fault_plan=plan,
            fault_seed=args.seed,
        )
        report = double_run(config)
        print(report.format())
        if not report.identical:
            failures += 1
    if failures:
        print(f"double-run: {failures} protocol(s) diverged")
        return 1
    print("double-run: all protocols bit-deterministic")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rule_catalog()
        return 0
    if args.explain:
        return _explain(args.explain)
    exit_code = 0
    if not args.no_lint:
        paths = args.paths or [Path("src")]
        exit_code |= _run_lint(paths, args.select)
    if args.mypy is not False and not args.no_lint or args.mypy:
        exit_code |= _run_mypy(force=bool(args.mypy))
    if args.double_run:
        exit_code |= _run_double(args)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
