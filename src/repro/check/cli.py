"""``python -m repro.check`` — the determinism & metadata sanitizer CLI.

Sub-behaviours (composable in one invocation):

* **lint** (default): run the SIM001..SIM008 AST rules over the given
  paths (default ``src/``), print ``path:line:col: CODE message`` per
  finding, exit non-zero on any finding;
* **--effects**: whole-program effect inference (EFF001..EFF003) — the
  substrate-independence certificate for ``repro/core`` and
  ``repro/verify``, diffed against the committed
  ``EFFECTS_BASELINE.json``;
* **--layers**: layer-contract enforcement (LAY001..LAY003) against
  ``layers.toml``;
* **--mypy/--no-mypy**: strict-typing gate over ``core/``/``sim/``/
  ``check/`` (skipped with a notice when mypy is not installed);
* **--double-run**: determinism smoke — run each protocol twice under
  the same seed (optionally through a chaos plan) and fail on the first
  diverging trace event, printing its causal chain.

``--format json|sarif`` switches stdout to the machine-readable report
(findings from every pass that ran, plus the effect table when
``--effects`` ran); ``--report PATH`` writes that document to a file
while keeping human output on stdout.

Examples::

    python -m repro.check src/
    python -m repro.check --explain EFF001
    python -m repro.check --effects --layers
    python -m repro.check --effects --write-baseline
    python -m repro.check --effects --layers --format sarif --no-lint
    python -m repro.check --double-run --chaos --protocols full-track,optp

Exit codes: 0 clean, 1 findings/divergence, 2 usage or contract error.
"""

from __future__ import annotations

import argparse
import sys
import tomllib
from pathlib import Path
from typing import Optional, Sequence

from .lint import Finding, lint_paths
from .rules import all_rules, rule_by_code

__all__ = ["main", "build_parser"]

#: the four protocols of the paper's comparison (Table IV)
DEFAULT_PROTOCOLS = ("full-track", "opt-track", "opt-track-crp", "optp")


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="determinism & causal-metadata sanitizer "
                    "(AST lints, effect/layer analyzers, typing gate, "
                    "double-run diff)",
    )
    ap.add_argument("paths", nargs="*", type=Path,
                    help="files/directories to lint (default: src/)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    ap.add_argument("--explain", metavar="CODE",
                    help="print one rule's rationale and hint, then exit")
    ap.add_argument("--select", metavar="CODES",
                    help="comma-separated rule codes to run (default: all)")
    ap.add_argument("--no-lint", action="store_true",
                    help="skip the AST lint pass")
    ap.add_argument("--effects", action="store_true",
                    help="run the whole-program effect analysis "
                         "(EFF001..EFF003)")
    ap.add_argument("--layers", action="store_true",
                    help="check the layer contract (LAY001..LAY003)")
    ap.add_argument("--contract", type=Path, default=None, metavar="TOML",
                    help="layer contract path (default: layers.toml, or "
                         "[tool.repro.check] contract in pyproject.toml)")
    ap.add_argument("--baseline", type=Path, default=None, metavar="JSON",
                    help="effect baseline path (default: "
                         "EFFECTS_BASELINE.json)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="regenerate the effect baseline instead of "
                         "diffing against it (implies --effects)")
    ap.add_argument("--src-root", type=Path, default=None, metavar="DIR",
                    help="source root for the analyzers (default: src/)")
    ap.add_argument("--format", choices=("human", "json", "sarif"),
                    default="human",
                    help="stdout format for findings (default: human)")
    ap.add_argument("--report", type=Path, default=None, metavar="PATH",
                    help="also write the JSON (or SARIF, with "
                         "--format sarif) report to this file")
    ap.add_argument("--mypy", dest="mypy", action="store_true", default=None,
                    help="force the mypy gate (fail if mypy is missing)")
    ap.add_argument("--no-mypy", dest="mypy", action="store_false",
                    help="skip the mypy gate")
    ap.add_argument("--double-run", action="store_true",
                    help="run the double-run divergence detector")
    ap.add_argument("--protocols", metavar="NAMES",
                    default=",".join(DEFAULT_PROTOCOLS),
                    help="protocols for --double-run (comma-separated)")
    ap.add_argument("--chaos", action="store_true",
                    help="route the double run through a seeded chaos plan")
    ap.add_argument("--n-sites", type=int, default=5,
                    help="sites for the double-run smoke (default 5)")
    ap.add_argument("--ops", type=int, default=30,
                    help="operations per process for --double-run")
    ap.add_argument("--seed", type=int, default=0,
                    help="workload/latency seed for --double-run")
    return ap


def _project_defaults() -> dict[str, str]:
    """``[tool.repro.check]`` from pyproject.toml, when present."""
    pyproject = Path("pyproject.toml")
    if not pyproject.is_file():
        return {}
    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError):
        return {}
    section = data.get("tool", {}).get("repro", {}).get("check", {})
    return {k: str(v) for k, v in section.items()}


def _print_rule_catalog() -> None:
    from .reportfmt import rule_metadata

    print("simcheck rules:")
    for code, (name, rationale, _) in sorted(rule_metadata().items()):
        print(f"  {code}  {name:26s} {rationale}")


def _explain(code: str) -> int:
    from .reportfmt import rule_metadata

    meta = rule_metadata().get(code)
    if meta is None:
        try:
            rule = rule_by_code(code)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        meta = (rule.name, rule.rationale, rule.hint)
    name, rationale, hint = meta
    print(f"{code} {name}")
    print(f"  why : {rationale}")
    print(f"  fix : {hint}")
    print("  mute: append  # simcheck: ignore[{}] -- <justification>"
          .format(code))
    return 0


def _run_lint(
    paths: Sequence[Path], select: Optional[str], *, human: bool
) -> list[Finding]:
    rules = all_rules()
    if select:
        wanted = {c.strip() for c in select.split(",") if c.strip()}
        rules = [r for r in rules if r.code in wanted]
    root = Path.cwd()
    findings = lint_paths(list(paths), rules, root=root)
    if human:
        for f in findings:
            print(f.format())
        n = len(findings)
        print(f"simcheck lint: {n} finding{'s' if n != 1 else ''} "
              f"in {len(list(paths))} path(s)")
    return findings


def _run_mypy(*, force: bool) -> int:
    from .typing_gate import run_mypy

    result = run_mypy(Path.cwd())
    if result.status == "skipped":
        print(result.output)
        return 1 if force else 0
    print(result.output.rstrip() or f"mypy: {result.status}")
    return 0 if result.ok else 1


def _run_double(args: argparse.Namespace) -> int:
    from ..experiments.runner import SimulationConfig
    from ..sim.faults import FaultPlan
    from .sanitizer import double_run

    plan = None
    if args.chaos:
        plan = FaultPlan.uniform(drop_rate=0.05, dup_rate=0.02,
                                 spike_rate=0.02)
    failures = 0
    for proto in [p.strip() for p in args.protocols.split(",") if p.strip()]:
        config = SimulationConfig(
            protocol=proto,
            n_sites=args.n_sites,
            n_vars=40,
            ops_per_process=args.ops,
            seed=args.seed,
            fault_plan=plan,
            fault_seed=args.seed,
        )
        report = double_run(config)
        print(report.format())
        if not report.identical:
            failures += 1
    if failures:
        print(f"double-run: {failures} protocol(s) diverged")
        return 1
    print("double-run: all protocols bit-deterministic")
    return 0


def _run_analyzers(
    args: argparse.Namespace, defaults: dict[str, str], *, human: bool
) -> tuple[list[Finding], Optional[dict[str, list[str]]], dict[str, object]]:
    """Effect/layer passes: (findings, effect table, certificate)."""
    from .callgraph import ProjectGraph
    from .contract import Contract
    from .effects import (
        analyze_effects,
        diff_against_baseline,
        load_baseline,
        render_baseline,
    )
    from .layers import check_layers

    contract_path = args.contract or Path(
        defaults.get("contract", "layers.toml")
    )
    src_root = args.src_root or Path(defaults.get("src_root", "src"))
    contract = Contract.load(contract_path)
    graph = ProjectGraph.build(src_root, contract.package)

    findings: list[Finding] = []
    effect_table: Optional[dict[str, list[str]]] = None
    certificate: dict[str, object] = {}
    if args.layers:
        layer_findings = check_layers(graph, contract)
        findings.extend(layer_findings)
        if human:
            for f in layer_findings:
                print(f.format())
            print(f"layer check: {len(layer_findings)} finding(s), "
                  f"{len(graph.modules)} modules against {contract_path}")
    if args.effects or args.write_baseline:
        report = analyze_effects(graph, contract)
        effect_findings = report.findings(contract)
        findings.extend(effect_findings)
        effect_table = {
            q: sorted(e) for q, e in sorted(report.nonempty().items())
        }
        baseline_path = args.baseline or Path(
            defaults.get("baseline", "EFFECTS_BASELINE.json")
        )
        if args.write_baseline:
            baseline_path.write_text(
                render_baseline(report, contract.package), encoding="utf-8"
            )
            if human:
                print(f"effect baseline written: {baseline_path} "
                      f"({len(effect_table)} effectful functions)")
        else:
            baseline = load_baseline(baseline_path)
            if baseline is None:
                if human:
                    print(f"note: no effect baseline at {baseline_path} "
                          "(run --effects --write-baseline to create it)")
            else:
                drift = diff_against_baseline(report, baseline)
                findings.extend(drift)
                if human:
                    for f in drift:
                        print(f.format())
        certified = not any(
            f.code in ("EFF001", "EFF003") for f in effect_findings
        )
        certificate = {
            "pure_trees": list(contract.pure_trees),
            "forbidden_effects": list(contract.forbidden_effects),
            "certified": certified,
            "functions_analyzed": len(report.effects),
            "functions_with_effects": len(effect_table),
        }
        if human:
            for f in effect_findings:
                print(f.format())
            verdict = "CERTIFIED" if certified else "NOT certified"
            print(f"effect check: {len(effect_findings)} finding(s); "
                  f"pure trees {', '.join(contract.pure_trees)}: {verdict}")
    return findings, effect_table, certificate


def _emit_structured(
    args: argparse.Namespace,
    findings: list[Finding],
    effect_table: Optional[dict[str, list[str]]],
    certificate: dict[str, object],
) -> None:
    from .reportfmt import findings_to_json, findings_to_sarif

    findings = sorted(findings, key=Finding.sort_key)
    if args.format == "sarif" or (
        args.report is not None and args.report.suffix == ".sarif"
    ):
        doc = findings_to_sarif(findings)
    else:
        doc = findings_to_json(
            findings,
            effects=effect_table,
            certificate=certificate or None,
        )
    if args.format in ("json", "sarif"):
        sys.stdout.write(doc)
    if args.report is not None:
        args.report.write_text(doc, encoding="utf-8")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rule_catalog()
        return 0
    if args.explain:
        return _explain(args.explain)
    defaults = _project_defaults()
    human = args.format == "human"
    exit_code = 0
    findings: list[Finding] = []
    if not args.no_lint:
        paths = args.paths or [Path("src")]
        findings.extend(_run_lint(paths, args.select, human=human))
    if args.effects or args.layers or args.write_baseline:
        from .contract import ContractError

        try:
            analyzer_findings, effect_table, certificate = _run_analyzers(
                args, defaults, human=human
            )
        except ContractError as exc:
            print(f"contract error: {exc}", file=sys.stderr)
            return 2
        findings.extend(analyzer_findings)
    else:
        effect_table, certificate = None, {}
    if findings:
        exit_code = 1
    if not human or args.report is not None:
        _emit_structured(args, findings, effect_table, certificate)
    # mypy prints free-form output, so it is human-mode only unless
    # explicitly forced
    if (human and args.mypy is not False and not args.no_lint) or args.mypy:
        exit_code |= _run_mypy(force=bool(args.mypy))
    if args.double_run:
        exit_code |= _run_double(args)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
