"""Machine-readable report formats for ``repro check``: JSON and SARIF.

One exporter consumes the findings of every pass — AST lints
(SIM001..SIM008), the whole-program effect analysis (EFF...), and the
layer-contract check (LAY...) — so CI uploads a single artifact and
diff tools see one stable schema.

The SARIF output targets version 2.1.0 and round-trips through GitHub
code scanning; the JSON report is the project's own schema (versioned,
see :data:`JSON_SCHEMA_VERSION`) and additionally carries the full
effect table — the machine-checked certificate that the protocol cores
are substrate-independent.
"""

from __future__ import annotations

import json
from typing import Mapping, Optional, Sequence

from .lint import Finding

__all__ = [
    "ANALYZER_RULES",
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
    "findings_to_json",
    "findings_to_sarif",
    "rule_metadata",
]

JSON_SCHEMA_VERSION = 1
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: rules reported by the whole-program analyzers (code -> name,
#: rationale, fix-it hint); kept here so the CLI's ``--explain`` and
#: the suppression-code validator see one catalog
ANALYZER_RULES: dict[str, tuple[str, str, str]] = {
    "EFF001": (
        "forbidden-effect",
        "a function in a substrate-pure tree (repro/core, repro/verify) "
        "transitively reaches a forbidden effect (wall clock, unseeded "
        "RNG, file I/O, network, simulator internals)",
        "route the effect through an injected port (clock/RNG/transport "
        "argument), or declare the crossing in layers.toml",
    ),
    "EFF002": (
        "effect-baseline-drift",
        "a function gained an effect that is not in the committed "
        "EFFECTS_BASELINE.json — new effects must be reviewed, not "
        "slipped in",
        "if intentional, regenerate the baseline with "
        "`repro check --effects --write-baseline` and commit the diff",
    ),
    "EFF003": (
        "impure-data-port",
        "a module declared as a data-only port target has effectful "
        "functions; data-only crossings must be certified pure",
        "remove the effect from the port target, or re-declare the "
        "crossing with an honest kind",
    ),
    "LAY001": (
        "layer-violation",
        "an import crosses the layer contract (layers.toml) without a "
        "declared port — e.g. repro/core reaching into repro/sim",
        "invert the dependency (inject the object), or declare an "
        "explicit [[ports]] entry with a justification",
    ),
    "LAY002": (
        "annotation-port-runtime-use",
        "an import declared annotation-only in layers.toml is used at "
        "runtime — the sanctioned crossing was typing-only",
        "move the import under `if TYPE_CHECKING:` and keep runtime "
        "access behind the injected port object",
    ),
    "LAY003": (
        "unknown-module",
        "the layer contract does not assign this module to any layer",
        "add the module (or a parent package prefix) to a [layers.*] "
        "modules list in layers.toml",
    ),
}


def rule_metadata() -> dict[str, tuple[str, str, str]]:
    """code -> (name, rationale, hint) for every reportable rule."""
    # deferred: repro.check.rules imports repro.check.lint which
    # imports this module's ANALYZER_RULES indirectly
    from .rules import ALL_RULES

    meta = {
        cls.code: (cls.name, cls.rationale, cls.hint) for cls in ALL_RULES
    }
    meta["SIM000"] = (
        "invalid-suppression",
        "a simcheck: ignore[...] comment without a ' -- reason' or "
        "naming an unknown rule code",
        "append ' -- <why this is safe>' and use codes from --list-rules",
    )
    meta["SIM999"] = (
        "syntax-error",
        "the file does not parse; nothing else can be checked",
        "fix the syntax error",
    )
    meta.update(ANALYZER_RULES)
    return meta


def findings_to_json(
    findings: Sequence[Finding],
    *,
    effects: Optional[Mapping[str, Sequence[str]]] = None,
    certificate: Optional[Mapping[str, object]] = None,
    meta: Optional[Mapping[str, object]] = None,
) -> str:
    """The project JSON report: findings + optional effect certificate."""
    doc: dict[str, object] = {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "repro.check",
        "findings": [
            {
                "code": f.code,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "hint": f.hint,
            }
            for f in findings
        ],
        "summary": {
            "total": len(findings),
            "by_code": _count_by_code(findings),
        },
    }
    if effects is not None:
        doc["effects"] = {
            qual: sorted(effs) for qual, effs in sorted(effects.items())
        }
    if certificate is not None:
        doc["certificate"] = dict(certificate)
    if meta is not None:
        doc["meta"] = dict(meta)
    return json.dumps(doc, indent=2, sort_keys=False) + "\n"


def findings_to_sarif(findings: Sequence[Finding]) -> str:
    """A SARIF 2.1.0 log with one run and the full rule catalog."""
    meta = rule_metadata()
    used_codes = sorted({f.code for f in findings} | set(meta))
    rules = []
    rule_index: dict[str, int] = {}
    for i, code in enumerate(used_codes):
        name, rationale, hint = meta.get(code, (code, "", ""))
        rule_index[code] = i
        rules.append({
            "id": code,
            "name": name,
            "shortDescription": {"text": name},
            "fullDescription": {"text": rationale},
            "help": {"text": hint},
            "defaultConfiguration": {"level": "error"},
        })
    results = []
    for f in findings:
        result: dict[str, object] = {
            "ruleId": f.code,
            "ruleIndex": rule_index.get(f.code, -1),
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": max(f.col + 1, 1),
                    },
                },
            }],
        }
        if f.hint:
            result["message"] = {"text": f"{f.message} (hint: {f.hint})"}
        results.append(result)
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.check",
                    "informationUri":
                        "https://example.invalid/repro/docs/static_analysis",
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2) + "\n"


def _count_by_code(findings: Sequence[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.code] = counts.get(f.code, 0) + 1
    return dict(sorted(counts.items()))
