"""Runtime sanitizers: frozen-message transport and double-run diffing.

Two dynamic checks complement the AST lints, catching what static
analysis cannot prove:

* :class:`SanitizedNetwork` — an opt-in wrapper around
  :class:`repro.sim.network.Network` that *freezes* every message at
  send time (structural fingerprint over a deep snapshot) and verifies
  the fingerprint again at each delivery.  Any mutation of a message —
  or of metadata aliased into one, from any site — between send and
  delivery raises :class:`MessageMutationError` naming the sender,
  receiver, and message type.  Enable per run with
  ``SimulationConfig(sanitize=True)``.

* :func:`double_run` — the divergence detector: executes the same
  configuration twice under the same seed with a fresh
  :class:`~repro.obs.tracer.Tracer` each time and diffs the two event
  logs.  Identical logs certify the run bit-deterministic end to end
  (every send, delivery, activation, and crash at the same simulated
  time with the same attributes).  On divergence the report pinpoints
  the first differing event and reconstructs its causal chain from the
  tracer's parent links.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, fields, is_dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..obs.tracer import Trace, TraceEvent, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.runner import SimulationConfig
    from ..sim.network import Network

__all__ = [
    "MessageMutationError",
    "SanitizedNetwork",
    "fingerprint",
    "DivergenceReport",
    "double_run",
    "diff_traces",
    "set_divergence_test_hook",
]

#: cap on the causal chain reported for a diverging event
MAX_CHAIN = 20


# ----------------------------------------------------------------------
# structural fingerprinting
# ----------------------------------------------------------------------
def fingerprint(obj: object) -> str:
    """Order-insensitive structural hash of a message.

    Containers hash by content with sets/dicts canonically ordered, so
    the fingerprint is stable under hash-seed variation and under
    deep-copying — equal structure, equal fingerprint.  numpy arrays
    hash by dtype/shape/bytes.
    """
    h = hashlib.sha256()
    _feed(h, obj)
    return h.hexdigest()


def _feed(h: "hashlib._Hash", obj: object) -> None:
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        h.update(f"{type(obj).__name__}:{obj!r};".encode())
        return
    if is_dataclass(obj) and not isinstance(obj, type):
        h.update(f"dc:{type(obj).__name__}(".encode())
        for f in fields(obj):
            h.update(f.name.encode())
            h.update(b"=")
            _feed(h, getattr(obj, f.name))
        h.update(b");")
        return
    if isinstance(obj, (list, tuple)):
        h.update(f"{type(obj).__name__}[".encode())
        for item in obj:
            _feed(h, item)
        h.update(b"];")
        return
    if isinstance(obj, (set, frozenset)):
        h.update(f"{type(obj).__name__}{{".encode())
        for digest in sorted(fingerprint(item) for item in obj):
            h.update(digest.encode())
        h.update(b"};")
        return
    if isinstance(obj, dict):
        h.update(b"dict{")
        entries = sorted(
            (fingerprint(k), fingerprint(v)) for k, v in obj.items()
        )
        for kd, vd in entries:
            h.update(kd.encode())
            h.update(b":")
            h.update(vd.encode())
        h.update(b"};")
        return
    tobytes = getattr(obj, "tobytes", None)
    if callable(tobytes):  # numpy arrays (and the clock classes' .m)
        dtype = getattr(obj, "dtype", "")
        shape = getattr(obj, "shape", "")
        h.update(f"nd:{dtype}:{shape}:".encode())
        h.update(tobytes())
        h.update(b";")
        return
    # MatrixClock (.m) / VectorClock (.v) wrap arrays; fingerprint the
    # array alone so their lazy tolist caches (populated on first hot-
    # path read, logically immutable) don't register as mutations
    inner = getattr(obj, "m", None)
    if inner is None:
        inner = getattr(obj, "v", None)
    if inner is not None and callable(getattr(inner, "tobytes", None)):
        h.update(f"clock:{type(obj).__name__}:".encode())
        _feed(h, inner)
        return
    slots = getattr(type(obj), "__slots__", None)
    if slots:
        h.update(f"obj:{type(obj).__name__}(".encode())
        for name in slots:
            _feed(h, getattr(obj, name, None))
        h.update(b");")
        return
    state = getattr(obj, "__dict__", None)
    if state is not None:
        h.update(f"obj:{type(obj).__name__}(".encode())
        for key in sorted(state):
            h.update(key.encode())
            h.update(b"=")
            _feed(h, state[key])
        h.update(b");")
        return
    h.update(f"opaque:{type(obj).__name__}:{obj!r};".encode())


# ----------------------------------------------------------------------
# frozen-message network wrapper
# ----------------------------------------------------------------------
class MessageMutationError(AssertionError):
    """A message changed between send and delivery (cross-site aliasing)."""


class SanitizedNetwork:
    """Decorator around :class:`~repro.sim.network.Network`.

    Every message entering via :meth:`send` is fingerprinted; every
    application-level delivery re-fingerprints and compares.  Unknown
    payloads (transport-internal packets: acks, heartbeats, sync
    probes) pass through unchecked — they never cross :meth:`send`.

    All other attributes delegate to the wrapped network, so the
    wrapper is a drop-in for every consumer (protocol contexts, the
    crash-recovery manager, the cluster facade).
    """

    def __init__(self, inner: "Network") -> None:
        self._inner = inner
        #: id(message) -> (strong ref, deep snapshot, fingerprint, src)
        self._frozen: dict[int, tuple[object, object, str, int]] = {}
        self.mutation_checks = 0

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    # -- intercepted surface ------------------------------------------
    def send(self, src: int, dst: int, message: object, *,
             size_bytes: float = 0.0) -> Optional[float]:
        entry = self._frozen.get(id(message))
        if entry is None:
            self._frozen[id(message)] = (
                message, copy.deepcopy(message), fingerprint(message), src
            )
        return self._inner.send(src, dst, message, size_bytes=size_bytes)

    def multicast(self, src: int, dests: Any,
                  message_for: Callable[[int], object]) -> int:
        sent = 0
        for dst in dests:
            if dst == src:
                continue
            self.send(src, dst, message_for(dst))
            sent += 1
        return sent

    def register(self, site: int,
                 receiver: Callable[[int, object], None]) -> None:
        def verifying_receiver(src: int, message: object) -> None:
            self.verify(src, site, message)
            receiver(src, message)

        self._inner.register(site, verifying_receiver)

    # -- verification --------------------------------------------------
    def verify(self, src: int, dst: int, message: object) -> None:
        entry = self._frozen.get(id(message))
        if entry is None:
            return  # not a sanitized application message
        _original, snapshot, frozen_fp, sent_by = entry
        self.mutation_checks += 1
        now_fp = fingerprint(message)
        if now_fp != frozen_fp:
            raise MessageMutationError(
                f"{type(message).__name__} sent by site {sent_by} was "
                f"mutated before delivery to site {dst} (from {src}): "
                f"fingerprint {frozen_fp[:12]} -> {now_fp[:12]}; "
                f"changed fields: {_changed_fields(snapshot, message)}. "
                "Some site aliases metadata captured into this message "
                "(Dests list / clock row / piggyback log) and mutated it "
                "after send."
            )


def _changed_fields(snapshot: object, current: object) -> str:
    """Name the dataclass fields whose structure drifted from the freeze."""
    if not (is_dataclass(snapshot) and type(snapshot) is type(current)):
        return "<whole object>"
    drifted = [
        f.name
        for f in fields(snapshot)
        if fingerprint(getattr(snapshot, f.name))
        != fingerprint(getattr(current, f.name))
    ]
    return ", ".join(drifted) if drifted else "<none identified>"


def sanitize_network(network: "Network") -> SanitizedNetwork:
    """Wrap ``network``; register all receivers through the wrapper."""
    return SanitizedNetwork(network)


# ----------------------------------------------------------------------
# double-run divergence detector
# ----------------------------------------------------------------------
#: test-only hook: transforms the config of the *second* run, injecting
#: seeded nondeterminism so tests can watch the detector catch it
_SECOND_RUN_HOOK: Optional[Callable[["SimulationConfig"], "SimulationConfig"]] = None


def set_divergence_test_hook(
    hook: Optional[Callable[["SimulationConfig"], "SimulationConfig"]],
) -> None:
    """Install (or clear, with None) the second-run config mutator.

    Test-only: production callers must never set this — the detector's
    whole point is that both runs use the *same* configuration.
    """
    global _SECOND_RUN_HOOK
    _SECOND_RUN_HOOK = hook


@dataclass(frozen=True)
class EventDiff:
    """The first diverging event pair, field by field."""

    index: int
    first: Optional[dict]
    second: Optional[dict]
    changed_fields: tuple[str, ...]


@dataclass
class DivergenceReport:
    """Outcome of a double run: identical, or first divergence + chain."""

    protocol: str
    identical: bool
    events_a: int
    events_b: int
    divergence: Optional[EventDiff] = None
    #: causal chain (parent links) of the diverging event, root first
    causal_chain: tuple[dict, ...] = ()

    def format(self) -> str:
        if self.identical:
            return (
                f"{self.protocol}: deterministic — {self.events_a} events "
                "bit-identical across both runs"
            )
        lines = [
            f"{self.protocol}: DIVERGED "
            f"(run A: {self.events_a} events, run B: {self.events_b})",
        ]
        d = self.divergence
        if d is not None:
            lines.append(f"  first divergence at event #{d.index}:")
            lines.append(f"    run A: {_fmt_event(d.first)}")
            lines.append(f"    run B: {_fmt_event(d.second)}")
            if d.changed_fields:
                lines.append(f"    changed: {', '.join(d.changed_fields)}")
        if self.causal_chain:
            lines.append("  causal chain of the diverging event (root first):")
            for ev in self.causal_chain:
                lines.append(f"    -> {_fmt_event(ev)}")
        return "\n".join(lines)


def _fmt_event(ev: Optional[dict]) -> str:
    if ev is None:
        return "<no event — run ended early>"
    attrs = ev.get("attrs", {})
    shown = {k: v for k, v in sorted(attrs.items()) if k != "waited_on"}
    return (
        f"[{ev['id']}] t={ev['ts']:.3f} {ev['kind']} site={ev['site']} {shown}"
    )


def _event_signature(ev: TraceEvent) -> str:
    """Canonical comparison key for one trace event."""
    return fingerprint((ev.id, ev.ts, ev.kind, ev.site, ev.parent, ev.attrs))


def diff_traces(a: Trace, b: Trace, *, protocol: str = "?") -> DivergenceReport:
    """Compare two event logs; report the first diverging event."""
    n = min(len(a.events), len(b.events))
    for i in range(n):
        ea, eb = a.events[i], b.events[i]
        if _event_signature(ea) != _event_signature(eb):
            return _report(protocol, a, b, i, ea, eb)
    if len(a.events) != len(b.events):
        i = n
        ea = a.events[i] if i < len(a.events) else None
        eb = b.events[i] if i < len(b.events) else None
        return _report(protocol, a, b, i, ea, eb)
    return DivergenceReport(
        protocol=protocol, identical=True,
        events_a=len(a.events), events_b=len(b.events),
    )


def _report(
    protocol: str,
    a: Trace,
    b: Trace,
    index: int,
    ea: Optional[TraceEvent],
    eb: Optional[TraceEvent],
) -> DivergenceReport:
    changed: list[str] = []
    if ea is not None and eb is not None:
        for attr in ("ts", "kind", "site", "parent"):
            if getattr(ea, attr) != getattr(eb, attr):
                changed.append(attr)
        keys = set(ea.attrs) | set(eb.attrs)
        for key in sorted(keys):
            if ea.attrs.get(key) != eb.attrs.get(key):
                changed.append(f"attrs.{key}")
    # chain from run B when it has the event (B is the diverging rerun),
    # else from run A
    chain_src = b if eb is not None else a
    chain_ev = eb if eb is not None else ea
    chain = _causal_chain(chain_src, chain_ev) if chain_ev is not None else ()
    return DivergenceReport(
        protocol=protocol,
        identical=False,
        events_a=len(a.events),
        events_b=len(b.events),
        divergence=EventDiff(
            index=index,
            first=ea.to_json() if ea is not None else None,
            second=eb.to_json() if eb is not None else None,
            changed_fields=tuple(changed),
        ),
        causal_chain=chain,
    )


def _causal_chain(trace: Trace, ev: TraceEvent) -> tuple[dict, ...]:
    by_id = trace.by_id()
    chain: list[dict] = []
    cur: Optional[TraceEvent] = ev
    while cur is not None and len(chain) < MAX_CHAIN:
        chain.append(cur.to_json())
        cur = by_id.get(cur.parent) if cur.parent is not None else None
    chain.reverse()
    return tuple(chain)


def double_run(
    config: "SimulationConfig",
    *,
    sanitize: bool = True,
) -> DivergenceReport:
    """Run ``config`` twice under the same seed and diff the event logs.

    The second run rebuilds everything from scratch (fresh simulator,
    network, RNG streams, workload generation) — shared state between
    the runs would defeat the point.  ``sanitize=True`` additionally
    routes both runs through :class:`SanitizedNetwork`, so a mutation
    is caught even when it happens to mutate identically in both runs.
    """
    from dataclasses import replace

    from ..experiments.runner import run_simulation

    base = replace(config, sanitize=sanitize) if sanitize else config
    tracer_a = Tracer()
    run_simulation(base, tracer=tracer_a)
    second = base if _SECOND_RUN_HOOK is None else _SECOND_RUN_HOOK(base)
    tracer_b = Tracer()
    run_simulation(second, tracer=tracer_b)
    return diff_traces(
        tracer_a.to_trace(), tracer_b.to_trace(), protocol=config.protocol
    )
