"""Layer-contract enforcement over the project import graph.

Checks every import edge between project modules (and selected stdlib
imports) against the contract in ``layers.toml``:

* **LAY001** — an edge crosses layers outside the ``may_import``
  lattice and no ``[[ports]]`` entry covers it;
* **LAY002** — an edge covered by an *annotation-only* port is used at
  runtime: the import sits outside ``if TYPE_CHECKING:`` **and** at
  least one imported name is referenced outside annotations.  The check
  is sound under the repo-wide ``from __future__ import annotations``
  convention, which makes annotation expressions never evaluate;
* **LAY003** — the contract does not assign a module to any layer (the
  architecture has a hole).

Data-only ports are admitted here; :mod:`repro.check.effects` owns the
other half of that bargain (EFF003: the target must stay effect-free).
Typing-only edges still require a declared port when they cross layers
— the certificate enumerates *every* crossing, including the ones that
exist only for type annotations.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from .callgraph import ImportEdge, ModuleInfo, ProjectGraph
from .contract import Contract, Layer
from .lint import Finding
from .rules._util import parse_suppressions

__all__ = ["check_layers"]


def check_layers(graph: ProjectGraph, contract: Contract) -> list[Finding]:
    findings: list[Finding] = []
    pkg_prefix = contract.package + "."
    for mod in graph.modules.values():
        layer = contract.layer_of(mod.name)
        if layer is None:
            findings.append(_finding(
                mod, "LAY003", 1,
                f"module {mod.name} is not assigned to any layer in the "
                "contract",
                hint="add it (or a parent package) to a [layers.*] "
                "modules list in layers.toml",
            ))
            continue
        for edge in mod.import_edges:
            if edge.imported is None:
                continue
            if edge.imported == contract.package or edge.imported.startswith(
                pkg_prefix
            ):
                findings.extend(
                    _check_project_edge(contract, graph, mod, layer, edge)
                )
            else:
                findings.extend(_check_stdlib_edge(layer, mod, edge))
    findings.sort(key=Finding.sort_key)
    return [
        f for f in findings
        if not _suppressed(graph.modules, f)
    ]


# ----------------------------------------------------------------------
def _check_project_edge(
    contract: Contract,
    graph: ProjectGraph,
    mod: ModuleInfo,
    layer: Layer,
    edge: ImportEdge,
) -> list[Finding]:
    target_mod = _target_module(graph, edge.imported)
    target_layer = contract.layer_of(target_mod)
    if target_layer is None:
        # LAY003 is reported once at the target module itself
        return []
    if target_layer.name == layer.name:
        return []
    if "*" in layer.may_import or target_layer.name in layer.may_import:
        return []
    port = contract.port_for(mod.name, target_mod)
    if port is None:
        kind_note = " (typing-only)" if edge.typing_only else ""
        return [_finding(
            mod, "LAY001", edge.lineno,
            f"layer '{layer.name}' must not import layer "
            f"'{target_layer.name}': {mod.name} -> {edge.imported}"
            f"{kind_note}",
            hint="invert the dependency (inject the object) or declare "
            "a justified [[ports]] entry in layers.toml",
        )]
    if port.kind == "annotation-only" and not edge.typing_only:
        runtime_used = [
            name for name in edge.names if name in mod.runtime_names
        ]
        if runtime_used:
            name = runtime_used[0]
            line = mod.runtime_use_lines.get(name, edge.lineno)
            return [_finding(
                mod, "LAY002", line,
                f"import of {edge.imported} is declared annotation-only "
                f"but '{name}' is used at runtime",
                hint="move the import under `if TYPE_CHECKING:` and keep "
                "runtime access behind the injected port object",
            )]
    return []


def _check_stdlib_edge(
    layer: Layer, mod: ModuleInfo, edge: ImportEdge
) -> list[Finding]:
    if edge.typing_only or not layer.forbidden_stdlib:
        return []
    top = edge.imported.split(".")[0]
    if top not in layer.forbidden_stdlib:
        return []
    return [_finding(
        mod, "LAY001", edge.lineno,
        f"layer '{layer.name}' must not import stdlib module '{top}' "
        f"at runtime ({mod.name})",
        hint="inject the capability (clock/RNG/IO port) instead of "
        "importing the ambient module",
    )]


def _target_module(graph: ProjectGraph, imported: str) -> str:
    """The *module* part of an imported dotted path.

    ``from repro.sim.events import EventKind`` records the base module
    directly; ``import repro.sim.events`` does too — but guard against
    symbol-level paths by trimming to the longest known module prefix.
    """
    if imported in graph.modules:
        return imported
    parts = imported.split(".")
    while parts:
        cand = ".".join(parts)
        if cand in graph.modules:
            return cand
        parts.pop()
    return imported


def _finding(
    mod: ModuleInfo,
    code: str,
    line: int,
    message: str,
    *,
    hint: str = "",
) -> Finding:
    return Finding(
        code=code,
        path=_display_path(mod.path),
        line=line,
        col=0,
        message=message,
        hint=hint,
    )


def _suppressed(
    modules: dict[str, ModuleInfo], finding: Finding
) -> bool:
    mod = _module_by_display(modules, finding.path)
    if mod is None:
        return False
    for sup in parse_suppressions(mod.lines):
        if sup.line in (finding.line, finding.line - 1) and (
            finding.code in sup.codes
        ):
            return sup.reason is not None
    return False


def _module_by_display(
    modules: dict[str, ModuleInfo], display: str
) -> Optional[ModuleInfo]:
    for mod in modules.values():
        if _display_path(mod.path) == display:
            return mod
    return None


def _display_path(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd().resolve()))
    except ValueError:
        return str(path)
