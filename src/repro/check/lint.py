"""simcheck lint framework: rules, findings, suppressions, file walking.

The reproduction's claims rest on the simulator being bit-deterministic
and on causal metadata (``Write`` matrices, KS logs, Dests lists) never
being silently shared or reordered.  ``repro.check`` mechanically
enforces the project conventions that keep runs reproducible with ~8
AST rules (SIM001..SIM008, see :mod:`repro.check.rules`).

Suppression syntax
------------------
A finding is suppressed by a ``simcheck`` comment on the flagged line or
on the line directly above it::

    t0 = time.perf_counter()  # simcheck: ignore[SIM001] -- wall-clock report only

The justification after ``--`` is **mandatory** in this repository: a
suppression without one still silences its target rule but surfaces as a
``SIM000`` finding of its own, so an unjustified escape hatch can never
make ``python -m repro.check`` exit 0.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from .rules._util import (
    SUPPRESSION_CODE,
    Suppression,
    is_excluded_path,
    is_generated_source,
    parse_suppressions,
)

__all__ = [
    "Finding",
    "SourceFile",
    "Rule",
    "Suppression",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "SUPPRESSION_CODE",
]


@dataclass(frozen=True)
class Finding:
    """One lint violation: rule id, location, message, and fix-it hint."""

    code: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def format(self) -> str:
        out = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)


@dataclass
class SourceFile:
    """A parsed source file handed to every rule (parse once, lint many)."""

    path: Path
    #: path as reported in findings — relative to the scan root when possible
    display_path: str
    text: str
    tree: ast.AST
    lines: list[str] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, *, root: Optional[Path] = None) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        display = str(path)
        if root is not None:
            try:
                display = str(path.resolve().relative_to(root.resolve()))
            except ValueError:
                display = str(path)
        src = cls(
            path=path,
            display_path=display,
            text=text,
            tree=ast.parse(text, filename=str(path)),
            lines=text.splitlines(),
        )
        src.suppressions = list(parse_suppressions(src.lines))
        return src

    # ------------------------------------------------------------------
    def suppressed(self, code: str, line: int) -> bool:
        """True when ``code`` is silenced at ``line`` (same or previous line)."""
        for sup in self.suppressions:
            if sup.line in (line, line - 1) and code in sup.codes:
                return True
        return False

    def invalid_suppressions(
        self, known_codes: Optional[frozenset[str]] = None
    ) -> Iterator[Finding]:
        """SIM000 findings: missing justification or unknown rule codes.

        ``known_codes`` defaults to every registered rule code; a
        suppression naming a code outside that set is dead weight that
        silently stops guarding anything when rules are renamed, so it
        fails the check exactly like a missing justification.
        """
        if known_codes is None:
            known_codes = _registered_codes()
        for sup in self.suppressions:
            if sup.reason is None:
                yield Finding(
                    code=SUPPRESSION_CODE,
                    path=self.display_path,
                    line=sup.line,
                    col=0,
                    message=(
                        "suppression without a justification: "
                        f"ignore[{', '.join(sorted(sup.codes))}]"
                    ),
                    hint=(
                        "append ' -- <why this is safe>' to the simcheck "
                        "comment; unjustified suppressions fail the check"
                    ),
                )
                continue
            unknown = sorted(sup.codes - known_codes)
            if unknown:
                yield Finding(
                    code=SUPPRESSION_CODE,
                    path=self.display_path,
                    line=sup.line,
                    col=0,
                    message=(
                        "suppression names unknown rule "
                        f"code(s): {', '.join(unknown)}"
                    ),
                    hint="drop the stale code or fix the typo; see --list-rules",
                )

    # backwards-compatible name used by pre-analyzer callers
    def unjustified_suppressions(self) -> Iterator[Finding]:
        yield from self.invalid_suppressions()


def _registered_codes() -> frozenset[str]:
    """Every code a suppression may legitimately name."""
    # deferred import: repro.check.rules imports this module for Rule
    from .rules import ALL_RULES
    from .reportfmt import ANALYZER_RULES

    return frozenset(
        {cls.code for cls in ALL_RULES}
        | set(ANALYZER_RULES)
        | {SUPPRESSION_CODE, "SIM999"}
    )


class Rule:
    """Base class for simcheck rules.

    Subclasses set ``code``/``name``/``hint`` and implement
    :meth:`check`.  :meth:`applies_to` scopes the rule by path (e.g.
    SIM003 only patrols the hot protocol directories).
    """

    code: str = "SIM999"
    name: str = "abstract"
    #: one-line rationale shown by ``--explain``
    rationale: str = ""
    #: default fix-it hint (rules may emit finding-specific ones)
    hint: str = ""

    def applies_to(self, display_path: str) -> bool:
        return True

    def check(self, src: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(
        self,
        src: SourceFile,
        node: ast.AST,
        message: str,
        *,
        hint: Optional[str] = None,
    ) -> Finding:
        return Finding(
            code=self.code,
            path=src.display_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint if hint is None else hint,
        )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, sorted for stable output.

    ``__pycache__``, VCS/tool caches, build output, and ``*.egg-info``
    trees are excluded everywhere — no pass ever lints generated or
    cached sources (see :data:`repro.check.rules._util.EXCLUDED_DIR_NAMES`).
    """
    seen: list[Path] = []
    for p in paths:
        if p.is_dir():
            seen.extend(
                f for f in sorted(p.rglob("*.py"))
                if not is_excluded_path(f.parts)
            )
        elif p.suffix == ".py" and not is_excluded_path(p.parts):
            seen.append(p)
    emitted = set()
    for p in seen:
        key = str(p.resolve())
        if key not in emitted:
            emitted.add(key)
            yield p


def lint_file(
    src: SourceFile, rules: Sequence[Rule]
) -> list[Finding]:
    """Run every applicable rule over one parsed file."""
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(src.display_path):
            continue
        for f in rule.check(src):
            if not src.suppressed(f.code, f.line):
                findings.append(f)
    findings.extend(src.invalid_suppressions())
    findings.sort(key=Finding.sort_key)
    return findings


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    *,
    root: Optional[Path] = None,
) -> list[Finding]:
    """Lint every python file under ``paths``; findings sorted by location."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            src = SourceFile.load(path, root=root)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    code="SIM999",
                    path=str(path),
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        if is_generated_source(src.text):
            continue
        findings.extend(lint_file(src, rules))
    findings.sort(key=Finding.sort_key)
    return findings
