"""SIM001: wall-clock reads outside benchmarks.

The simulation's only clock is :attr:`repro.sim.engine.Simulator.now`.
A ``time.time()`` (or friends) on a protocol path leaks host timing into
results, so two runs of the same seed stop being comparable.  Real-time
measurement belongs in ``benchmarks/`` (or behind a justified
suppression for wall-clock *reporting*, never *logic*).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, Rule, SourceFile
from ._util import call_name

__all__ = ["WallClockRule"]

#: banned functions of the ``time`` module
_TIME_FNS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    }
)
#: banned constructors on datetime/date classes
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


class WallClockRule(Rule):
    code = "SIM001"
    name = "wall-clock"
    rationale = (
        "host wall-clock reads make seeded runs non-reproducible; the "
        "simulated clock is Simulator.now"
    )
    hint = (
        "use the simulated clock (ctx.sim.now / self.sim.now); real-time "
        "measurement belongs in benchmarks/ or repro/perf/"
    )

    def applies_to(self, display_path: str) -> bool:
        norm = display_path.replace("\\", "/")
        # benchmarks/ and the in-package perf harness exist to measure
        # wall time; everything else must use the simulated clock
        return "benchmarks/" not in norm and "repro/perf/" not in norm

    def check(self, src: SourceFile) -> Iterator[Finding]:
        time_aliases, datetime_names = _clock_imports(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            # time.perf_counter(), t.monotonic() under `import time as t`
            if len(parts) == 2 and parts[0] in time_aliases and parts[1] in _TIME_FNS:
                yield self.finding(src, node, f"wall-clock call {name}()")
            # bare perf_counter() after `from time import perf_counter`
            elif len(parts) == 1 and parts[0] in time_aliases and parts[0] in _TIME_FNS:
                yield self.finding(src, node, f"wall-clock call {name}()")
            # datetime.now() / datetime.datetime.now() / date.today()
            elif (
                len(parts) >= 2
                and parts[-1] in _DATETIME_FNS
                and parts[-2] in datetime_names
            ):
                yield self.finding(src, node, f"wall-clock call {name}()")


def _clock_imports(tree: ast.AST) -> tuple[set[str], set[str]]:
    """(aliases of the time module or its functions, datetime class names)."""
    time_aliases: set[str] = set()
    datetime_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    time_aliases.add(alias.asname or "time")
                elif alias.name == "datetime":
                    datetime_names.add(alias.asname or "datetime")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _TIME_FNS:
                        time_aliases.add(alias.asname or alias.name)
            elif node.module == "datetime":
                for alias in node.names:
                    if alias.name in ("datetime", "date"):
                        datetime_names.add(alias.asname or alias.name)
    return time_aliases, datetime_names
