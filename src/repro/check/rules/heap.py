"""SIM007: raw heapq use outside the simulation kernel.

The event queue's total order is ``(time, seq)`` — the insertion
sequence number is what makes equal-timestamp events fire in FIFO order
and two runs bit-identical.  A raw ``heapq.heappush`` elsewhere invents
a second priority queue *without* that tie-break: equal keys then pop
in heap-internal order, which depends on arrival interleaving.  All
time-ordered scheduling must go through
:meth:`repro.sim.engine.Simulator.schedule`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, Rule, SourceFile
from ._util import call_name

__all__ = ["RawHeapqRule"]

_HEAP_FNS = frozenset(
    {"heappush", "heappop", "heapify", "heappushpop", "heapreplace",
     "merge", "nsmallest", "nlargest"}
)


class RawHeapqRule(Rule):
    code = "SIM007"
    name = "raw-heapq"
    rationale = (
        "a raw heap has no (time, seq) tie-break; equal-priority pops "
        "come out in heap-internal order and differ between runs"
    )
    hint = (
        "schedule through Simulator.schedule()/schedule_at(), whose "
        "ScheduledEvent ordering is (time, seq)"
    )

    def applies_to(self, display_path: str) -> bool:
        # the kernel itself is the one sanctioned heap user
        return not display_path.replace("\\", "/").endswith("sim/engine.py")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        heap_fn_aliases: set[str] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "heapq":
                for alias in node.names:
                    if alias.name in _HEAP_FNS:
                        heap_fn_aliases.add(alias.asname or alias.name)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if (
                (len(parts) == 2 and parts[0] == "heapq" and parts[1] in _HEAP_FNS)
                or (len(parts) == 1 and parts[0] in heap_fn_aliases)
            ):
                yield self.finding(
                    src, node, f"raw heap operation {name}() bypasses the "
                    "engine's (time, seq) tie-break"
                )
