"""simcheck rule registry: SIM001..SIM008.

==========  ======================  =====================================
code        name                    guards against
==========  ======================  =====================================
``SIM001``  wall-clock              host time leaking into simulated runs
``SIM002``  unseeded-random         hidden global RNG state
``SIM003``  set-iteration           hash-order iteration on hot paths
``SIM004``  mutable-default         call-to-call shared default containers
``SIM005``  mutate-after-send       aliased message metadata rewritten
``SIM006``  float-ts-equality       exact == on accumulated float times
``SIM007``  raw-heapq               priority queues without (time, seq)
``SIM008``  no-print                debug prints in library code
==========  ======================  =====================================

``SIM000`` is the framework's own pseudo-rule: a suppression comment
without a ``-- justification``.
"""

from __future__ import annotations

from ..lint import Rule
from .aliasing import MutateAfterSendRule
from .defaults import MutableDefaultRule
from .floateq import FloatTimestampEqualityRule
from .heap import RawHeapqRule
from .iteration import SetIterationRule
from .printing import NoPrintRule
from .randomness import UnseededRandomRule
from .wallclock import WallClockRule

__all__ = ["ALL_RULES", "all_rules", "rule_by_code"]

ALL_RULES: tuple[type[Rule], ...] = (
    WallClockRule,
    UnseededRandomRule,
    SetIterationRule,
    MutableDefaultRule,
    MutateAfterSendRule,
    FloatTimestampEqualityRule,
    RawHeapqRule,
    NoPrintRule,
)


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in SIM-code order."""
    return [cls() for cls in ALL_RULES]


def rule_by_code(code: str) -> Rule:
    for cls in ALL_RULES:
        if cls.code == code:
            return cls()
    raise KeyError(f"unknown rule {code!r}; known: "
                   f"{[c.code for c in ALL_RULES]}")
