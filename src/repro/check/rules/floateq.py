"""SIM006: exact float equality on simulated timestamps.

Simulated times are floats built from sums of sampled latencies plus
FIFO epsilons; ``a == b`` on two of them encodes an accidental property
of one particular accumulation order.  Compare with ``<=``/``>=``
against explicit bounds, or test ``abs(a - b) < eps`` when coincidence
is genuinely meant.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..lint import Finding, Rule, SourceFile

__all__ = ["FloatTimestampEqualityRule"]

#: identifier shapes that denote simulated times in this codebase
_TIMEY = re.compile(
    r"(^|_)(time|ts|now|arrived|issued|deadline|delivery|departure|"
    r"downtime|horizon|at)(_ms|_s)?$|_ms$|_time$"
)


class FloatTimestampEqualityRule(Rule):
    code = "SIM006"
    name = "float-timestamp-equality"
    rationale = (
        "== on accumulated float timestamps asserts one particular "
        "rounding history; runs differ in the last ulp, results flip"
    )
    hint = (
        "compare with <=/>= bounds, or abs(a - b) < eps when testing "
        "coincidence"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_timey(left) and _is_numeric_ish(right):
                    yield self._flag(src, node, left)
                elif _is_timey(right) and _is_numeric_ish(left):
                    yield self._flag(src, node, right)

    def _flag(self, src: SourceFile, node: ast.Compare,
              timey: ast.AST) -> Finding:
        label = _ident(timey) or "timestamp"
        return self.finding(
            src, node, f"exact float equality on simulated time {label!r}"
        )


def _ident(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_timey(node: ast.AST) -> bool:
    name = _ident(node)
    return bool(name) and bool(_TIMEY.search(name))


def _is_numeric_ish(node: ast.AST) -> bool:
    """The other operand looks like a number (not None / str / bool)."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(
            node.value, bool
        )
    if isinstance(node, (ast.Name, ast.Attribute)):
        # comparing two identifiers: only flag when the peer is timey or
        # numeric-looking; identifiers compare as "numeric-ish" here and
        # the timey test on the flagged side does the narrowing
        return True
    if isinstance(node, (ast.BinOp, ast.UnaryOp, ast.Call, ast.Subscript)):
        return True
    return False
