"""Shared AST helpers for the simcheck rules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

__all__ = ["dotted_name", "walk_scopes", "ScopeNode", "call_name", "is_hot_path"]

#: function-like scope nodes (each gets its own symbol table in rules)
ScopeNode = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, None for anything dynamic."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee (None when not statically nameable)."""
    return dotted_name(node.func)


def walk_scopes(tree: ast.AST) -> Iterator[ast.AST]:
    """Yield module + every function scope (for per-scope analyses)."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, ScopeNode):
            yield node


def is_hot_path(display_path: str) -> bool:
    """True for the determinism-critical protocol directories.

    ``core/`` and ``sim/`` execute inside the event loop; ``verify/``
    must report identical verdicts across runs to be a usable oracle;
    ``perf/`` drives the regression-gated benchmark runs, so an
    accidental O(n^2) there skews the numbers the gate compares;
    ``obs/`` records from inside the same event loop and its exporters
    promise byte-identical same-seed dumps.
    """
    norm = display_path.replace("\\", "/")
    return any(
        f"repro/{d}/" in norm or norm.startswith(f"{d}/")
        for d in ("core", "sim", "verify", "perf", "obs")
    )
