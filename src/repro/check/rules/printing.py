"""SIM008: bare ``print`` in library code.

Library modules report through the collector/tracer; a stray ``print``
is almost always leftover debugging, corrupts machine-readable CLI
output, and (worse) tempts f-strings that format simulated state and
hide ordering assumptions.  User-facing surfaces (the CLI, figures)
are exempt by path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, Rule, SourceFile

__all__ = ["NoPrintRule"]

#: user-facing surfaces that are *supposed* to print (kept in sync with
#: the ruff T20 per-file-ignores in pyproject.toml)
_ALLOWED_SUFFIXES = (
    "repro/cli.py",
    "repro/experiments/figures.py",
    "repro/check/cli.py",
    "repro/perf/cli.py",
)


class NoPrintRule(Rule):
    code = "SIM008"
    name = "no-print"
    rationale = (
        "library code reports through the collector/tracer; bare print "
        "is leftover debugging and corrupts CLI output"
    )
    hint = "route output through the tracer/collector, or move it to the CLI"

    def applies_to(self, display_path: str) -> bool:
        norm = display_path.replace("\\", "/")
        if any(norm.endswith(sfx) for sfx in _ALLOWED_SUFFIXES):
            return False
        # non-library trees print freely
        for part in ("examples/", "benchmarks/", "tests/", "docs/"):
            if part in norm or norm.startswith(part.rstrip("/")):
                return False
        return True

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(src, node, "bare print() in library code")
