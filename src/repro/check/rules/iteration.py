"""SIM003: iteration over sets on determinism-critical paths.

CPython set iteration order depends on insertion history *and* on
``PYTHONHASHSEED`` for str/bytes/tuple elements — two runs of the same
seed may visit a destination set in different orders, which reorders
message sends and breaks bit-determinism.  In ``core/``, ``sim/`` and
``verify/`` every set must be materialized through ``sorted(...)``
before its order can matter.

The rule is deliberately scoped: order-insensitive folds (``len``,
``sum``, ``min``, ``max``, ``any``, ``all``, membership tests, set
algebra) are not flagged — only ``for`` loops, comprehensions, and
order-preserving materializations (``list(s)``, ``tuple(s)``,
``enumerate(s)``) whose input is statically known to be a set.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..lint import Finding, Rule, SourceFile
from ._util import is_hot_path

__all__ = ["SetIterationRule"]

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)
_ORDERED_MATERIALIZERS = frozenset({"list", "tuple", "enumerate"})


class SetIterationRule(Rule):
    code = "SIM003"
    name = "set-iteration"
    rationale = (
        "set iteration order is hash/insertion dependent; ordering "
        "leaks into message schedules and breaks bit-determinism"
    )
    hint = "iterate sorted(the_set) (or justify with a suppression)"

    def applies_to(self, display_path: str) -> bool:
        return is_hot_path(display_path)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        table = _SetSymbols.collect(src.tree)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.For):
                reason = table.set_reason(node.iter)
                if reason:
                    yield self.finding(
                        src, node.iter, f"for-loop over {reason}"
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    reason = table.set_reason(gen.iter)
                    if reason:
                        yield self.finding(
                            src, gen.iter, f"comprehension over {reason}"
                        )
            elif isinstance(node, ast.Call):
                fn = node.func
                if (
                    isinstance(fn, ast.Name)
                    and fn.id in _ORDERED_MATERIALIZERS
                    and len(node.args) == 1
                ):
                    reason = table.set_reason(node.args[0])
                    if reason:
                        yield self.finding(
                            src, node,
                            f"{fn.id}() materializes {reason} in hash order",
                        )


class _SetSymbols:
    """Best-effort, module-wide table of set-typed names and attributes.

    Over-approximates on purpose (any ``x.foo`` where some ``self.foo``
    is a set counts): in the hot directories a false positive costs one
    ``sorted()`` or one justified suppression, a false negative costs a
    nondeterministic benchmark.
    """

    def __init__(self) -> None:
        self.names: set[str] = set()
        self.attrs: set[str] = set()

    # ------------------------------------------------------------------
    @classmethod
    def collect(cls, tree: ast.AST) -> "_SetSymbols":
        table = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                if _is_set_expr(node.value):
                    for tgt in node.targets:
                        table._note_target(tgt)
            elif isinstance(node, ast.AnnAssign):
                if _is_set_annotation(node.annotation) or (
                    node.value is not None and _is_set_expr(node.value)
                ):
                    table._note_target(node.target)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                    if arg.annotation is not None and _is_set_annotation(
                        arg.annotation
                    ):
                        table.names.add(arg.arg)
        return table

    def _note_target(self, tgt: ast.AST) -> None:
        if isinstance(tgt, ast.Name):
            self.names.add(tgt.id)
        elif isinstance(tgt, ast.Attribute):
            self.attrs.add(tgt.attr)

    # ------------------------------------------------------------------
    def is_set(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            fn = node.func
            return isinstance(fn, ast.Name) and fn.id in _SET_CONSTRUCTORS
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            return node.attr in self.attrs
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        return False

    def set_reason(self, node: ast.AST) -> Optional[str]:
        """Human description of why ``node`` is a set, or None."""
        if not self.is_set(node):
            return None
        if isinstance(node, ast.Name):
            return f"set {node.id!r}"
        if isinstance(node, ast.Attribute):
            return f"set attribute .{node.attr}"
        if isinstance(node, ast.Call):
            return "a set/frozenset constructor"
        if isinstance(node, ast.BinOp):
            return "a set-algebra expression"
        return "a set literal"


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        return isinstance(fn, ast.Name) and fn.id in _SET_CONSTRUCTORS
    return False


def _is_set_annotation(node: ast.AST) -> bool:
    base: ast.AST = node
    if isinstance(base, ast.Subscript):
        base = base.value
    if isinstance(base, ast.Attribute):  # typing.Set[...]
        return base.attr in _SET_ANNOTATIONS
    if isinstance(base, ast.Name):
        return base.id in _SET_ANNOTATIONS
    if isinstance(base, ast.Constant) and isinstance(base.value, str):
        # string annotation: "set[int]" — cheap textual check
        head = base.value.split("[", 1)[0].strip()
        return head in _SET_ANNOTATIONS
    return False
