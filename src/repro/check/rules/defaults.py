"""SIM004: mutable default arguments.

A ``def f(x, dests=[])`` default is created once and shared across every
call — state leaks between protocol instances and between *runs* inside
one process, which is exactly the cross-instance aliasing this
repository's determinism contract forbids.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, Rule, SourceFile

__all__ = ["MutableDefaultRule"]

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)


class MutableDefaultRule(Rule):
    code = "SIM004"
    name = "mutable-default"
    rationale = (
        "a mutable default is shared across calls and protocol "
        "instances — hidden state that survives between runs"
    )
    hint = "default to None and create the container inside the function"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            for default in [*args.defaults, *args.kw_defaults]:
                if default is None:
                    continue
                if _is_mutable(default):
                    yield self.finding(
                        src, default,
                        f"mutable default argument in {node.name}()",
                    )


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False
