"""SIM002: unseeded randomness.

Every random draw in the system must come from an *injected* generator —
a ``random.Random(seed)`` instance or a ``numpy`` ``Generator`` built
from an explicit seed — so that the full run replays bit-identically.
Module-level ``random.*`` calls share hidden global state seeded from
the OS; ``np.random.default_rng()`` with no argument is seeded from
entropy.  Either one silently breaks every benchmark comparison.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, Rule, SourceFile
from ._util import call_name

__all__ = ["UnseededRandomRule"]

#: module-level functions of the stdlib ``random`` module (hidden state)
_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "expovariate",
        "betavariate", "triangular", "seed", "getrandbits", "vonmisesvariate",
        "paretovariate", "weibullvariate", "lognormvariate",
    }
)
#: legacy numpy global-state functions (np.random.rand etc.)
_NP_RANDOM_OK = frozenset({"Generator", "SeedSequence", "RandomState", "default_rng"})


class UnseededRandomRule(Rule):
    code = "SIM002"
    name = "unseeded-random"
    rationale = (
        "module-level random calls use hidden global state; all draws "
        "must come from an injected, explicitly seeded generator"
    )
    hint = (
        "draw from an injected random.Random(seed) / "
        "np.random.default_rng(seed) instance instead of module-level state"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        random_aliases = _random_module_aliases(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            # random.shuffle(...) on the stdlib module (Random() is fine)
            if (
                len(parts) == 2
                and parts[0] in random_aliases
                and parts[1] in _RANDOM_FNS
            ):
                yield self.finding(
                    src, node, f"unseeded stdlib random call {name}()"
                )
            # bare Random() with no seed argument
            elif parts[-1] == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    src, node,
                    "random.Random() without a seed argument",
                    hint="pass an explicit seed: random.Random(seed)",
                )
            # numpy legacy global state: np.random.rand / np.random.seed ...
            elif (
                len(parts) >= 2
                and parts[-2] == "random"
                and parts[0] in ("np", "numpy")
                and parts[-1] not in _NP_RANDOM_OK
            ):
                yield self.finding(
                    src, node, f"numpy global-state random call {name}()"
                )
            # np.random.default_rng() with no seed is entropy-seeded
            elif (
                parts[-1] == "default_rng"
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    src, node,
                    "default_rng() without a seed draws OS entropy",
                    hint="pass an explicit seed: np.random.default_rng(seed)",
                )


def _random_module_aliases(tree: ast.AST) -> set[str]:
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
    return aliases
