"""SIM005: mutating a message (or metadata aliased into one) after send.

Messages are frozen dataclasses, but the tuples/lists/logs *inside*
them — Dests lists, piggyback logs, clock rows — are captured by
reference at construction.  Mutating such an object after the message
entered the network mutates in-flight (and possibly already-delivered)
state at other sites: silent cross-site aliasing that invalidates the
metadata-size accounting the paper's comparisons rest on.

The rule is an intra-procedural *aliasing dataflow* pass.  Statements
are replayed in source order; every assignment updates an alias-class
partition of the function's names:

* ``alias = payload`` joins the two names into one class;
* tuple/list/set displays and comprehensions alias the target to every
  name escaping through an element expression (``pair = (hdr, log)``,
  ``rows = [e.row for e in log]`` — the *elements* stay shared even
  though the container is fresh);
* a call to an unknown helper aliases its result to its arguments
  (``msg = self._make_sm(entries)`` may capture ``entries``), while
  scalar-returning builtins (``len``, ``sum`` ...) and explicit
  copy-breakers (``tuple(x)``, ``frozenset(x)``, ``x.copy()``,
  ``copy.deepcopy(x)``, ``sorted(x)``) start a fresh class;
* rebinding a name to a fresh value detaches it from its old class.

A send/multicast call *taints* the alias class of every name captured
into it (directly, through an inline constructor, or through a display
or comprehension argument).  Any later mutation — a mutator-method
call or an assignment into an attribute/subscript — whose root object
belongs to a tainted class is flagged.

The runtime sanitizer (:mod:`repro.check.sanitizer`) still backstops
what a static approximation cannot prove, but only on the paths a seed
happens to exercise; this pass is the one that certifies the rest.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional

from ..lint import Finding, Rule, SourceFile
from ._util import ScopeNode

__all__ = ["MutateAfterSendRule", "PayloadMutation", "analyze_function"]

_SEND_NAMES = frozenset({"send", "multicast", "_send", "_multicast", "_transmit_raw"})
_MUTATORS = frozenset(
    {"append", "add", "update", "extend", "insert", "pop", "remove",
     "discard", "clear", "sort", "reverse", "setdefault", "popitem",
     "increment", "merge",
     # OptTrackLog / TupleLog in-place pruning API: these rewrite
     # destination sets that may be aliased into in-flight piggybacks
     "remove_dests", "purge", "reset"}
)

#: calls whose result is a *fresh* top-level object (top-level copy),
#: so assigning their result starts a new alias class
_COPY_BREAKERS = frozenset(
    {"tuple", "frozenset", "list", "set", "dict", "sorted", "reversed",
     "copy", "deepcopy", "copy.copy", "copy.deepcopy"}
)
#: builtins returning scalars / non-capturing values: their result does
#: NOT alias their arguments (keeps `n = len(buf)` from linking n→buf)
_SCALAR_BUILTINS = frozenset(
    {"len", "sum", "min", "max", "any", "all", "abs", "round", "int",
     "float", "str", "bool", "repr", "format", "hash", "id", "ord",
     "chr", "isinstance", "issubclass", "divmod", "pow", "range",
     "enumerate", "zip", "print"}
)


@dataclass(frozen=True)
class PayloadMutation:
    """One mutation of data aliased into an already-sent message."""

    node: ast.AST
    ref: str
    #: name actually captured by the send (may differ from ``ref``
    #: when the mutation reached the payload through an alias)
    captured_as: str
    send_line: int
    what: str

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)


class _AliasState:
    """Union-find-ish alias classes with taint lines, in replay order."""

    def __init__(self) -> None:
        #: name -> class id
        self._cls: dict[str, int] = {}
        #: class id -> members
        self._members: dict[int, set[str]] = {}
        #: class id -> (send line, name captured) of the earliest taint
        self.taint: dict[int, tuple[int, str]] = {}
        self._next = 0

    def _class_of(self, name: str) -> int:
        cid = self._cls.get(name)
        if cid is None:
            cid = self._next
            self._next += 1
            self._cls[name] = cid
            self._members[cid] = {name}
        return cid

    def fresh(self, name: str) -> None:
        """Rebind ``name`` to a brand-new object (copy-breaker result)."""
        old = self._cls.get(name)
        if old is not None:
            self._members[old].discard(name)
        cid = self._next
        self._next += 1
        self._cls[name] = cid
        self._members[cid] = {name}

    def join(self, target: str, sources: list[str]) -> None:
        """Alias ``target`` with every name in ``sources``."""
        if not sources:
            self.fresh(target)
            return
        # rebinding: target leaves its old class, joins the sources'
        old = self._cls.get(target)
        if old is not None:
            self._members[old].discard(target)
            self._cls.pop(target)
        cid = self._class_of(sources[0])
        for src in sources[1:]:
            other = self._class_of(src)
            if other != cid:
                for member in self._members.pop(other):
                    self._cls[member] = cid
                    self._members[cid].add(member)
                if other in self.taint and (
                    cid not in self.taint or self.taint[other] < self.taint[cid]
                ):
                    self.taint[cid] = self.taint.pop(other)
                else:
                    self.taint.pop(other, None)
        self._cls[target] = cid
        self._members[cid].add(target)

    def mark_sent(self, name: str, line: int) -> None:
        cid = self._class_of(name)
        if cid not in self.taint or line < self.taint[cid][0]:
            self.taint[cid] = (line, name)

    def sent_info(self, name: str) -> Optional[tuple[int, str]]:
        cid = self._cls.get(name)
        if cid is None:
            return None
        return self.taint.get(cid)


class MutateAfterSendRule(Rule):
    code = "SIM005"
    name = "mutate-after-send"
    rationale = (
        "an object captured into a sent message is shared with every "
        "receiver; mutating it after send rewrites in-flight metadata"
    )
    hint = (
        "copy before sending (tuple(...)/frozenset(...)/clock.copy()) or "
        "build the message from an immutable snapshot"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for m in analyze_function(node):
                    alias_note = (
                        "" if m.ref == m.captured_as
                        else f" (aliases {m.captured_as!r})"
                    )
                    yield self.finding(
                        src, m.node,
                        f"{m.what} {m.ref!r}{alias_note} after it was "
                        f"captured into a message sent at line {m.send_line}",
                    )


def analyze_function(fn: ast.AST) -> list[PayloadMutation]:
    """Replay ``fn``'s statements in source order, tracking aliasing.

    Returns every mutation of (data aliased into) an already-sent
    payload.  Nested function scopes are skipped — they are analyzed on
    their own by the caller.
    """
    events = sorted(
        _iter_events(fn),
        key=lambda e: (getattr(e[1], "lineno", 0),
                       getattr(e[1], "col_offset", 0)),
    )
    state = _AliasState()
    out: list[PayloadMutation] = []
    for kind, node in events:
        if kind == "assign":
            _apply_assign(state, node)
        elif kind == "send":
            for ref in _captured_refs(node):
                state.mark_sent(ref, node.lineno)
        else:  # mutation
            ref, what = _mutation_target(node)
            if ref is None:
                continue
            info = state.sent_info(ref)
            if info is not None and node.lineno > info[0]:
                out.append(PayloadMutation(
                    node=node, ref=ref, captured_as=info[1],
                    send_line=info[0], what=what,
                ))
    return out


def _iter_events(fn: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    """(kind, node) pairs for every statement of interest in ``fn``."""
    for node in ast.walk(fn):
        if isinstance(node, ScopeNode) and node is not fn:
            continue  # nested scopes are checked on their own
        if isinstance(node, ast.Call) and _is_send_call(node):
            yield ("send", node)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            yield ("assign", node)
            # attribute/subscript targets are also mutations
            yield ("mutation", node)
        elif isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Attribute) and f.attr in _MUTATORS:
                yield ("mutation", node)


def _apply_assign(state: _AliasState, node: ast.AST) -> None:
    if isinstance(node, ast.AugAssign):
        return  # `x += y` keeps x's identity for lists; leave classes alone
    if isinstance(node, ast.AnnAssign):
        targets = [node.target]
        value = node.value
    else:
        assert isinstance(node, ast.Assign)
        targets = list(node.targets)
        value = node.value
    if value is None:
        return
    sources, fresh = _escaping_refs(value)
    for tgt in targets:
        if isinstance(tgt, ast.Name):
            if fresh and not sources:
                state.fresh(tgt.id)
            else:
                state.join(tgt.id, sources)
        elif isinstance(tgt, ast.Tuple):
            # a, b = x, y  — pair positionally when shapes match
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(tgt.elts):
                for t, v in zip(tgt.elts, value.elts):
                    if isinstance(t, ast.Name):
                        s, f = _escaping_refs(v)
                        if f and not s:
                            state.fresh(t.id)
                        else:
                            state.join(t.id, s)
            else:
                for t in tgt.elts:
                    if isinstance(t, ast.Name):
                        state.join(t.id, sources)


def _escaping_refs(value: ast.AST) -> tuple[list[str], bool]:
    """(names the value's object graph may share, value-is-fresh flag).

    ``fresh`` means the *top-level* object is newly created, so a plain
    rebind to it detaches the target from its old alias class even when
    no source names escape into it.
    """
    if isinstance(value, ast.Name):
        return [value.id], False
    root = _root_ref(value, whole=True)
    if root is not None:
        return [root], False
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        refs: list[str] = []
        for elt in value.elts:
            refs.extend(_escaping_refs(elt)[0])
        return refs, True
    if isinstance(value, ast.Dict):
        refs = []
        for v in list(value.keys) + list(value.values):
            if v is not None:
                refs.extend(_escaping_refs(v)[0])
        return refs, True
    if isinstance(value, (ast.ListComp, ast.SetComp, ast.DictComp,
                          ast.GeneratorExp)):
        # elements of the fresh container may alias the iterated source
        refs = [
            r
            for name in ast.walk(value)
            if isinstance(name, ast.Name)
            and not isinstance(name.ctx, ast.Store)
            for r in [_comp_ref(name, value)]
            if r is not None
        ]
        return refs, True
    if isinstance(value, ast.Call):
        callee = _callee_name(value)
        if callee in _COPY_BREAKERS:
            return [], True  # fresh copy: breaks aliasing
        if callee in _SCALAR_BUILTINS:
            return [], True  # scalar result: no aliasing either
        # unknown helper: assume its result may capture any argument
        refs = []
        for arg in list(value.args) + [kw.value for kw in value.keywords]:
            refs.extend(_escaping_refs(arg)[0])
        return refs, True
    if isinstance(value, (ast.Constant, ast.BinOp, ast.UnaryOp,
                          ast.Compare, ast.Lambda)):
        return [], True
    if isinstance(value, ast.IfExp):
        a, _ = _escaping_refs(value.body)
        b, _ = _escaping_refs(value.orelse)
        return a + b, False
    if isinstance(value, (ast.Attribute, ast.Subscript)):
        root = _root_ref(value)
        return ([root], False) if root is not None else ([], False)
    return [], False


def _comp_ref(name: ast.Name, comp: ast.AST) -> Optional[str]:
    """A load-context name inside a comprehension, skipping its own
    loop variables (they are comprehension-local)."""
    bound = {
        t.id
        for gen in getattr(comp, "generators", [])
        for t in ast.walk(gen.target)
        if isinstance(t, ast.Name)
    }
    return None if name.id in bound else name.id


def _mutation_target(node: ast.AST) -> tuple[Optional[str], str]:
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for tgt in targets:
            if isinstance(tgt, (ast.Attribute, ast.Subscript)):
                return _root_ref(tgt.value), "assignment into"
        return None, ""
    if isinstance(node, ast.Call):
        f = node.func
        if isinstance(f, ast.Attribute) and f.attr in _MUTATORS:
            return _root_ref(f.value), f".{f.attr}() on"
    return None, ""


def _is_send_call(node: ast.Call) -> bool:
    f = node.func
    name = f.attr if isinstance(f, ast.Attribute) else (
        f.id if isinstance(f, ast.Name) else None
    )
    return name in _SEND_NAMES


def _callee_name(node: ast.Call) -> Optional[str]:
    f = node.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        if isinstance(f.value, ast.Name):
            dotted = f"{f.value.id}.{f.attr}"
            if dotted in _COPY_BREAKERS:
                return dotted
        return f.attr
    return None


def _captured_refs(send_call: ast.Call) -> Iterator[str]:
    """Names aliased into the sent message by this call.

    The message argument itself (when it is a plain name), any name
    captured into a message constructed *inline* in the send call
    (``self._send(dst, SomeSM(log=entries))`` captures ``entries``),
    and names escaping through displays or comprehensions in either
    position (``self._send(dst, (hdr, log))``).
    """
    values = list(send_call.args) + [kw.value for kw in send_call.keywords]
    for value in values:
        ref = _root_ref(value, whole=True)
        if ref is not None:
            yield ref
            continue
        if isinstance(value, ast.Call) and not _is_send_call(value):
            callee = _callee_name(value)
            if callee in _COPY_BREAKERS or callee in _SCALAR_BUILTINS:
                continue  # a snapshot/scalar does not alias its source
            inner = list(value.args) + [kw.value for kw in value.keywords]
            for arg in inner:
                yield from _escaping_refs(arg)[0]
        else:
            yield from _escaping_refs(value)[0]


def _root_ref(node: ast.AST, *, whole: bool = False) -> Optional[str]:
    """Symbolic key for a name or a ``self.x`` attribute.

    For mutation targets the *root* container is what matters
    (``msg.log.append`` mutates ``msg``); with ``whole=True`` an exact
    one-level attribute (``self.x``) keys as ``"self.x"`` so that
    capturing ``self.log`` and later mutating ``self.log`` match.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name):
            base = node.value.id
            if base == "self":
                return f"self.{node.attr}"
            return base if not whole else None
        return _root_ref(node.value)
    if isinstance(node, ast.Subscript):
        return _root_ref(node.value)
    return None
