"""SIM005: mutating a message (or metadata captured into one) after send.

Messages are frozen dataclasses, but the tuples/frozensets *inside*
them — Dests lists, piggyback logs, clock rows — are captured by
reference at construction.  Mutating such an object after the message
entered the network mutates in-flight (and possibly already-delivered)
state at other sites: silent cross-site aliasing that invalidates the
metadata-size accounting the paper's comparisons rest on.

The rule is an intra-function, best-effort dataflow check: it records
names passed to ``send``/``multicast`` helpers (and names captured into
a message constructed inline in the send call), then flags any mutation
of those names on a later line of the same function.  The runtime
sanitizer (:mod:`repro.check.sanitizer`) catches what this static
approximation cannot prove.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..lint import Finding, Rule, SourceFile
from ._util import ScopeNode

__all__ = ["MutateAfterSendRule"]

_SEND_NAMES = frozenset({"send", "multicast", "_send", "_multicast", "_transmit_raw"})
_MUTATORS = frozenset(
    {"append", "add", "update", "extend", "insert", "pop", "remove",
     "discard", "clear", "sort", "reverse", "setdefault", "popitem",
     "increment", "merge",
     # OptTrackLog / TupleLog in-place pruning API: these rewrite
     # destination sets that may be aliased into in-flight piggybacks
     "remove_dests", "purge", "reset"}
)


class MutateAfterSendRule(Rule):
    code = "SIM005"
    name = "mutate-after-send"
    rationale = (
        "an object captured into a sent message is shared with every "
        "receiver; mutating it after send rewrites in-flight metadata"
    )
    hint = (
        "copy before sending (tuple(...)/frozenset(...)/clock.copy()) or "
        "build the message from an immutable snapshot"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(src, node)

    # ------------------------------------------------------------------
    def _check_function(
        self, src: SourceFile, fn: ast.AST
    ) -> Iterator[Finding]:
        #: name -> line of the earliest send that captured it
        sent: dict[str, int] = {}
        for node in ast.walk(fn):
            if isinstance(node, ScopeNode) and node is not fn:
                continue  # nested scopes are checked on their own
            if isinstance(node, ast.Call) and _is_send_call(node):
                for ref in _captured_refs(node):
                    line = sent.get(ref)
                    if line is None or node.lineno < line:
                        sent[ref] = node.lineno
        if not sent:
            return
        for node in ast.walk(fn):
            ref: Optional[str] = None
            what = ""
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for tgt in targets:
                    if isinstance(tgt, (ast.Attribute, ast.Subscript)):
                        ref = _root_ref(tgt.value)
                        what = "assignment into"
                        break
            elif isinstance(node, ast.Call):
                f = node.func
                if isinstance(f, ast.Attribute) and f.attr in _MUTATORS:
                    ref = _root_ref(f.value)
                    what = f".{f.attr}() on"
            if ref is None:
                continue
            line = sent.get(ref)
            if line is not None and node.lineno > line:
                yield self.finding(
                    src, node,
                    f"{what} {ref!r} after it was captured into a message "
                    f"sent at line {line}",
                )


def _is_send_call(node: ast.Call) -> bool:
    f = node.func
    name = f.attr if isinstance(f, ast.Attribute) else (
        f.id if isinstance(f, ast.Name) else None
    )
    return name in _SEND_NAMES


def _captured_refs(send_call: ast.Call) -> Iterator[str]:
    """Names aliased into the sent message by this call.

    Both the message argument itself (when it is a plain name) and any
    name captured into a message constructed *inline* in the send call
    (``self._send(dst, SomeSM(log=entries))`` captures ``entries``).
    """
    values = list(send_call.args) + [kw.value for kw in send_call.keywords]
    for value in values:
        ref = _root_ref(value, whole=True)
        if ref is not None:
            yield ref
        if isinstance(value, ast.Call) and not _is_send_call(value):
            inner = list(value.args) + [kw.value for kw in value.keywords]
            for arg in inner:
                ref = _root_ref(arg, whole=True)
                if ref is not None:
                    yield ref


def _root_ref(node: ast.AST, *, whole: bool = False) -> Optional[str]:
    """Symbolic key for a name or a ``self.x`` attribute.

    For mutation targets the *root* container is what matters
    (``msg.log.append`` mutates ``msg``); with ``whole=True`` an exact
    one-level attribute (``self.x``) keys as ``"self.x"`` so that
    capturing ``self.log`` and later mutating ``self.log`` match.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name):
            base = node.value.id
            if base == "self":
                return f"self.{node.attr}"
            return base if not whole else None
        return _root_ref(node.value)
    if isinstance(node, ast.Subscript):
        return _root_ref(node.value)
    return None
