"""Trace analysis: tail statistics, causal chains, summaries, diffs.

Works on any :class:`~repro.obs.tracer.Trace` — live from a
:class:`~repro.obs.tracer.Tracer` or loaded from a JSONL file written by
:func:`repro.obs.sinks.write_jsonl`.  The headline question it answers
is the one end-of-run aggregates cannot: *why was this particular update
late?* — by walking the parent links back through the exact message hops
(send → attempts → retransmits → deliver → activate) and the messages a
buffered update waited on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..metrics.stats import percentile
from .tracer import Trace, TraceEvent

__all__ = [
    "TraceIndex",
    "MessageChain",
    "visibility_stats",
    "slowest_activations",
    "causal_chain",
    "format_chain",
    "summarize_trace",
    "diff_traces",
]


@dataclass
class MessageChain:
    """Everything that happened to one message copy, in hop order."""

    send: TraceEvent
    attempts: list[TraceEvent] = field(default_factory=list)
    retransmits: list[TraceEvent] = field(default_factory=list)
    deliver: Optional[TraceEvent] = None
    activate: Optional[TraceEvent] = None


class TraceIndex:
    """Secondary indexes over a trace (build once, query many)."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.by_id: dict[int, TraceEvent] = trace.by_id()
        self.children: dict[int, list[TraceEvent]] = {}
        for ev in trace.events:
            if ev.parent is not None:
                self.children.setdefault(ev.parent, []).append(ev)
        self.chains: dict[int, MessageChain] = {}
        for ev in trace.events:
            if ev.kind == "msg.send":
                self.chains[ev.id] = MessageChain(send=ev)
        for ev in trace.events:
            if ev.parent is None:
                continue
            chain = self.chains.get(ev.parent)
            if chain is not None:
                if ev.kind == "msg.attempt":
                    chain.attempts.append(ev)
                elif ev.kind == "msg.retransmit":
                    chain.retransmits.append(ev)
                elif ev.kind == "msg.deliver" and chain.deliver is None:
                    chain.deliver = ev
            elif ev.kind in ("sm.activate", "fm.serve", "rm.complete"):
                deliver = self.by_id.get(ev.parent)
                if deliver is not None and deliver.parent in self.chains:
                    self.chains[deliver.parent].activate = ev

    def chain_of_send(self, send_id: int) -> Optional[MessageChain]:
        return self.chains.get(send_id)


# ----------------------------------------------------------------------
# tail statistics
# ----------------------------------------------------------------------
def visibility_stats(trace: Trace) -> dict:
    """Exact visibility-lag distribution from every ``sm.activate``."""
    lags = sorted(
        ev.attrs["visibility_ms"]
        for ev in trace.of_kind("sm.activate")
        if "visibility_ms" in ev.attrs
    )
    if not lags:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                "p99": 0.0, "max": 0.0}
    return {
        "count": len(lags),
        "mean": sum(lags) / len(lags),
        "p50": percentile(lags, 50),
        "p95": percentile(lags, 95),
        "p99": percentile(lags, 99),
        "max": lags[-1],
    }


def activation_wait_stats(trace: Trace) -> dict:
    """Distribution of the time buffered updates spent waiting."""
    waits = sorted(
        ev.attrs["waited_ms"]
        for ev in trace.of_kind("sm.activate")
        if ev.attrs.get("waited_ms", 0.0) > 0.0
    )
    if not waits:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                "p99": 0.0, "max": 0.0}
    return {
        "count": len(waits),
        "mean": sum(waits) / len(waits),
        "p50": percentile(waits, 50),
        "p95": percentile(waits, 95),
        "p99": percentile(waits, 99),
        "max": waits[-1],
    }


def slowest_activations(trace: Trace, k: int = 3) -> list[TraceEvent]:
    """Top-k ``sm.activate`` events by buffered wait time (descending)."""
    acts = [ev for ev in trace.of_kind("sm.activate")
            if ev.attrs.get("waited_ms", 0.0) > 0.0]
    acts.sort(key=lambda ev: (-ev.attrs["waited_ms"], ev.id))
    return acts[:k]


# ----------------------------------------------------------------------
# causal chains
# ----------------------------------------------------------------------
def _describe_write(attrs: dict) -> str:
    if "writer" in attrs:
        return f"w{attrs['writer']}.{attrs['clock']}(x{attrs.get('var', '?')})"
    return f"x{attrs.get('var', '?')}"


def causal_chain(index: TraceIndex, activate: TraceEvent) -> list[str]:
    """Human-readable chain: the message's hops, then (recursively one
    level) the messages the activation waited on."""
    lines: list[str] = []
    lines.extend(_message_hops(index, activate, prefix=""))
    waited = activate.attrs.get("waited_on", [])
    if waited:
        lines.append(f"  waited on {len(waited)} message(s) applied "
                     "during the buffering window:")
        for send_id in waited:
            chain = index.chain_of_send(send_id)
            if chain is None:
                continue
            lines.extend(_message_hops(index, chain.activate or chain.send,
                                       prefix="    ", chain=chain))
    truncated = activate.attrs.get("waited_on_truncated")
    if truncated:
        lines.append(f"    ... and {truncated} more")
    return lines


def _message_hops(index: TraceIndex, terminal: Optional[TraceEvent], *,
                  prefix: str, chain: Optional[MessageChain] = None) -> list[str]:
    """Describe one message's journey ending at ``terminal``."""
    if terminal is None:
        return []
    if chain is None:
        deliver = (index.by_id.get(terminal.parent)
                   if terminal.parent is not None else None)
        send_id = deliver.parent if deliver is not None else None
        chain = index.chain_of_send(send_id) if send_id is not None else None
    if chain is None:
        return [f"{prefix}- {terminal.kind} @ site {terminal.site} "
                f"t={terminal.ts:.1f}ms (no message correlation)"]
    send = chain.send
    hops = [f"send {send.attrs.get('msg', '?')} site {send.site}"
            f"→{send.attrs.get('dst')} @ {send.ts:.1f}ms"]
    for att in chain.attempts:
        out = att.attrs.get("outcome")
        if out == "dropped":
            hops.append(f"attempt#{att.attrs.get('attempt')} DROPPED"
                        + (" (partition)" if att.attrs.get("partition") else "")
                        + f" @ {att.ts:.1f}ms")
        elif att.attrs.get("spike_ms"):
            hops.append(f"attempt#{att.attrs.get('attempt')} "
                        f"+{att.attrs['spike_ms']:.0f}ms spike @ {att.ts:.1f}ms")
    for rt in chain.retransmits:
        hops.append(f"retransmit#{rt.attrs.get('n')} @ {rt.ts:.1f}ms")
    if chain.deliver is not None:
        hops.append(f"deliver @ {chain.deliver.ts:.1f}ms")
    act = chain.activate if chain.activate is not None else terminal
    if act is not None and act.kind == "sm.activate":
        waited = act.attrs.get("waited_ms", 0.0)
        if waited > 0:
            hops.append(f"buffered {waited:.1f}ms")
        hops.append(f"applied @ {act.ts:.1f}ms")
    name = _describe_write(act.attrs if act is not None else send.attrs)
    return [f"{prefix}- {name}: " + " → ".join(hops)]


def format_chain(index: TraceIndex, activate: TraceEvent) -> str:
    head = (f"{_describe_write(activate.attrs)} applied at site "
            f"{activate.site} @ {activate.ts:.1f}ms — waited "
            f"{activate.attrs.get('waited_ms', 0.0):.1f}ms buffered, "
            f"visibility {activate.attrs.get('visibility_ms', 0.0):.1f}ms")
    return "\n".join([head] + causal_chain(index, activate))


# ----------------------------------------------------------------------
# summaries and diffs
# ----------------------------------------------------------------------
def kind_counts(trace: Trace) -> dict[str, int]:
    counts: dict[str, int] = {}
    for ev in trace.events:
        counts[ev.kind] = counts.get(ev.kind, 0) + 1
    return dict(sorted(counts.items()))


def summarize_trace(trace: Trace, top: int = 3) -> str:
    """The ``repro trace summarize`` report body."""
    lines: list[str] = []
    meta = trace.meta
    desc = ", ".join(f"{k}={meta[k]}" for k in
                     ("protocol", "n_sites", "ops_per_process", "seed")
                     if k in meta)
    lines.append(f"trace: {desc or '(no metadata)'} — {len(trace.events)} events")
    counts = kind_counts(trace)
    lines.append("events by kind: "
                 + ", ".join(f"{k}={v}" for k, v in counts.items()))
    vis = visibility_stats(trace)
    lines.append(
        f"visibility lag ms ({vis['count']} applies): "
        f"p50={vis['p50']:.1f} p95={vis['p95']:.1f} "
        f"p99={vis['p99']:.1f} max={vis['max']:.1f}"
    )
    wait = activation_wait_stats(trace)
    lines.append(
        f"activation waits ms ({wait['count']} buffered): "
        f"p50={wait['p50']:.1f} p95={wait['p95']:.1f} "
        f"p99={wait['p99']:.1f} max={wait['max']:.1f}"
    )
    slow = slowest_activations(trace, top)
    if slow:
        index = TraceIndex(trace)
        lines.append(f"\ntop {len(slow)} slowest activations:")
        for rank, ev in enumerate(slow, 1):
            lines.append(f"\n#{rank} " + format_chain(index, ev))
    else:
        lines.append("no update ever buffered — every SM was immediately "
                     "applicable")
    return "\n".join(lines)


def diff_traces(a: Trace, b: Trace) -> str:
    """Compare two traces: event populations and tail latencies."""
    lines = ["metric                          trace A      trace B        delta"]

    def row(name: str, va: float, vb: float, fmt: str = "{:.1f}") -> None:
        lines.append(f"{name:28s} {fmt.format(va):>12s} {fmt.format(vb):>12s} "
                     f"{fmt.format(vb - va):>12s}")

    ca, cb = kind_counts(a), kind_counts(b)
    for kind in sorted(set(ca) | set(cb)):
        row(f"events[{kind}]", ca.get(kind, 0), cb.get(kind, 0), "{:.0f}")
    va, vb = visibility_stats(a), visibility_stats(b)
    for q in ("p50", "p95", "p99", "max"):
        row(f"visibility_{q}_ms", va[q], vb[q])
    wa, wb = activation_wait_stats(a), activation_wait_stats(b)
    row("buffered_count", wa["count"], wb["count"], "{:.0f}")
    for q in ("p95", "max"):
        row(f"activation_wait_{q}_ms", wa[q], wb[q])
    return "\n".join(lines)
