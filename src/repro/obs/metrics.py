"""Labeled metrics instruments: registry, counters, gauges, histograms.

A :class:`MetricsRegistry` is the single instrumentation surface for the
whole stack — event kernel, network, ReliableChannel, the four protocol
cores, failure detector, checkpoint/WAL, and membership all emit into
one registry when (and only when) one is wired in.  Design constraints,
in order:

1. **Zero allocation on the disabled path.**  Every producer holds
   ``registry: Optional[MetricsRegistry] = None`` and guards each emit
   with a single ``is None`` branch — the same byte-identical guarantee
   the tracer established.  No instrument objects exist unless a
   registry does.
2. **Deterministic export.**  Label names are sorted at family creation,
   children sort by label values, families sort by name; combined with
   the seeded reservoir inside :class:`Histogram`, a same-seed double
   run dumps byte-identical Prometheus text and JSONL (tested).
3. **Cheap hot-path emits.**  Producers resolve a child once
   (``family.labels(...)``) and then call ``inc/set/observe`` on it —
   a dict-free attribute bump.  The convenience ``registry.inc(name,
   **labels)`` form is for cold paths only.

Naming conventions (see docs/observability.md):

- subsystem prefix: ``kernel_``, ``net_``, ``proto_``, ``detector_``,
  ``wal_``, ``crash_``, ``membership_``;
- counters end in ``_total``; histograms of durations end in ``_ms``;
- label keys come from {``site``, ``protocol``, ``kind``, ``component``}.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, Optional, Sequence, Union

from ..metrics.stats import RunningStat
from .ledger import MetadataLedger

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "DEFAULT_BUCKETS",
]

#: generic log-ish bucket ladder; instruments may override per-family.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

Number = Union[int, float]


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time value that can move both ways."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def set_max(self, value: Number) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed cumulative buckets, optional reservoir for exact quantiles.

    Buckets follow Prometheus semantics: ``bucket_counts[i]`` counts
    observations ``<= buckets[i]``, with an implicit ``+Inf`` bucket at
    the end.  With ``reservoir=True`` an embedded :class:`RunningStat`
    keeps the seeded algorithm-R reservoir, so p50/p95/p99 come from
    real samples; hot-path instruments pass ``reservoir=False`` and get
    bucket-interpolated quantiles instead — Prometheus
    ``histogram_quantile`` semantics at a fraction of the per-observe
    cost (one bisect + three attribute bumps).

    Bucket interpolation assumes non-negative observations (true of
    every instrument here: depths, counts, durations).
    """

    __slots__ = ("buckets", "bucket_counts", "_count", "_sum", "stat")
    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS, *,
                 reservoir: bool = True) -> None:
        self.buckets: tuple[float, ...] = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self.stat: Optional[RunningStat] = RunningStat() if reservoir else None

    def observe(self, value: Number) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self._count += 1
        self._sum += value
        stat = self.stat
        if stat is not None:
            stat.add(float(value))

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantiles(self) -> dict:
        """{"p50", "p95", "p99"} — exact from the reservoir when one is
        attached, bucket-interpolated otherwise (0.0 each when empty)."""
        if self.stat is not None:
            return self.stat.quantiles()
        if self._count == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "p50": self._bucket_percentile(0.50 * self._count),
            "p95": self._bucket_percentile(0.95 * self._count),
            "p99": self._bucket_percentile(0.99 * self._count),
        }

    def _bucket_percentile(self, rank: float) -> float:
        """Linear interpolation inside the bucket holding ``rank``.

        Observations above the last finite bound clamp to that bound —
        the standard Prometheus ``histogram_quantile`` convention.
        """
        cum = 0
        lower = 0.0
        for ub, c in zip(self.buckets, self.bucket_counts):
            if cum + c >= rank:
                if c == 0:
                    return float(ub)
                return lower + (ub - lower) * (rank - cum) / c
            cum += c
            lower = ub
        return float(self.buckets[-1]) if self.buckets else 0.0

    def cumulative_buckets(self) -> list[tuple[str, int]]:
        """[(le_label, cumulative_count)] ending with ``+Inf``."""
        out: list[tuple[str, int]] = []
        running = 0
        for le, c in zip(self.buckets, self.bucket_counts):
            running += c
            out.append((format_value(le), running))
        out.append(("+Inf", running + self.bucket_counts[-1]))
        return out


Child = Union[Counter, Gauge, Histogram]


def format_value(v: Number) -> str:
    """Render a number the same way everywhere (15.0 -> "15")."""
    f = float(v)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


class MetricFamily:
    """One named metric plus its per-label-set children."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets",
                 "reservoir", "_children")

    def __init__(self, name: str, kind: str, help_text: str,
                 label_names: Sequence[str],
                 buckets: Optional[Sequence[float]] = None,
                 reservoir: bool = True) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        # deterministic label ordering: names are sorted once, here
        self.label_names: tuple[str, ...] = tuple(sorted(label_names))
        self.buckets = tuple(sorted(buckets)) if buckets is not None else None
        self.reservoir = reservoir
        self._children: dict[tuple[str, ...], Child] = {}

    def labels(self, **labels: object) -> Child:
        """Resolve (creating on first use) the child for a label set.

        Call once per producer and cache the returned child — the child
        methods are the hot path, not this resolver.
        """
        if tuple(sorted(labels)) != self.label_names:
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[k]) for k in self.label_names)
        child = self._children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self.buckets or DEFAULT_BUCKETS,
                                  reservoir=self.reservoir)
            self._children[key] = child
        return child

    def samples(self) -> Iterator[tuple[tuple[str, ...], Child]]:
        """Children sorted by label values — the deterministic order
        every exporter iterates in."""
        for key in sorted(self._children):
            yield key, self._children[key]

    def __len__(self) -> int:
        return len(self._children)


class MetricsRegistry:
    """Instrument registry + the metadata ledger, one per run.

    Families are created lazily and checked for kind/label consistency;
    iteration is always name-sorted so exports are deterministic.
    """

    def __init__(self, *, base_n: Optional[int] = None) -> None:
        self._families: dict[str, MetricFamily] = {}
        #: metadata-byte ledger fed by CausalProtocol._send
        self.ledger = MetadataLedger(base_n=base_n)

    # -- family creation ----------------------------------------------
    def _family(self, name: str, kind: str, help_text: str,
                labels: Sequence[str],
                buckets: Optional[Sequence[float]] = None,
                reservoir: bool = True) -> MetricFamily:
        fam = self._families.get(name)
        if fam is None:
            fam = self._families[name] = MetricFamily(
                name, kind, help_text, labels, buckets, reservoir)
        else:
            if fam.kind != kind:
                raise ValueError(
                    f"{name}: registered as {fam.kind}, requested {kind}")
            if fam.label_names != tuple(sorted(labels)):
                raise ValueError(
                    f"{name}: registered with labels {fam.label_names}, "
                    f"requested {tuple(sorted(labels))}")
            if help_text and not fam.help:
                fam.help = help_text
        return fam

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None,
                  reservoir: bool = True) -> MetricFamily:
        return self._family(name, "histogram", help_text, labels, buckets,
                            reservoir)

    # -- cold-path convenience ----------------------------------------
    def inc(self, name: str, amount: Number = 1, help_text: str = "",
            **labels: object) -> None:
        self.counter(name, help_text, tuple(labels)).labels(**labels).inc(amount)  # type: ignore[union-attr]

    def set_gauge(self, name: str, value: Number, help_text: str = "",
                  **labels: object) -> None:
        self.gauge(name, help_text, tuple(labels)).labels(**labels).set(value)  # type: ignore[union-attr]

    def observe(self, name: str, value: Number, help_text: str = "",
                **labels: object) -> None:
        self.histogram(name, help_text, tuple(labels)).labels(**labels).observe(value)  # type: ignore[union-attr]

    # -- iteration / introspection ------------------------------------
    def families(self) -> Iterator[MetricFamily]:
        """Families sorted by name (deterministic export order)."""
        for name in sorted(self._families):
            yield self._families[name]

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def __len__(self) -> int:
        return len(self._families)

    def __repr__(self) -> str:
        return (f"<MetricsRegistry families={len(self._families)} "
                f"ledger_keys={len(self.ledger.lifetime)}>")

    # -- kernel hook ---------------------------------------------------
    def install_kernel_hook(self, sim, stride: int = 16) -> None:
        """Wire the batch histograms into a Simulator.

        Sampling lives in the dispatch loop itself
        (``Simulator.batch_observer_stride``): skipped batches cost one
        inline increment, never a Python call into the hook.  Batch-size
        and heap-depth distributions are shape metrics, so a
        deterministic 1-in-``stride`` sample preserves them; exact event
        totals come from ``kernel_events_total`` at end of run.
        """
        sim.batch_observer = self.kernel_batch_hook(stride)
        sim.batch_observer_stride = stride

    def kernel_batch_hook(self, stride: int = 16):
        """Build the Simulator.batch_observer callback (unsampled —
        pair with ``batch_observer_stride`` via
        :meth:`install_kernel_hook`; ``stride`` only labels the help
        text)."""
        batch_h = self.histogram(
            "kernel_batch_size",
            f"events dispatched per same-timestamp batch "
            f"(1-in-{stride} batch sample)",
            buckets=(1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128),
            reservoir=False,
        ).labels()
        heap_h = self.histogram(
            "kernel_heap_depth",
            f"pending-event heap length (1-in-{stride} batch sample)",
            reservoir=False,
        ).labels()

        def hook(now: float, batch_events: int, heap_len: int) -> None:
            batch_h.observe(batch_events)  # type: ignore[union-attr]
            heap_h.observe(heap_len)  # type: ignore[union-attr]

        return hook
