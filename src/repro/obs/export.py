"""Metric exporters: Prometheus text, JSONL snapshots/deltas, console
tables, and the live heartbeat reporter.

Every sink iterates the registry through :meth:`MetricsRegistry.families`
/ :meth:`MetricFamily.samples`, which are name- and label-sorted, and
serializes JSON with ``sort_keys`` — so a same-seed double run produces
byte-identical dumps from every exporter (covered by the double-run diff
test).

The heartbeat writes human-oriented progress lines to a stream
(``sys.stderr`` by default) so long runs can be watched without
polluting machine-readable stdout.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import IO, Optional, Sequence, Union

from .ledger import MetadataLedger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, format_value

__all__ = [
    "METRICS_FORMAT_VERSION",
    "to_prometheus",
    "registry_snapshot",
    "snapshot_delta",
    "write_prometheus",
    "write_snapshot_json",
    "append_snapshot_jsonl",
    "flatten_snapshot",
    "diff_snapshots",
    "console_summary",
    "ledger_table",
    "HeartbeatReporter",
]

METRICS_FORMAT_VERSION = 1

#: namespace prepended to every exposed Prometheus metric name
PROM_PREFIX = "repro_"


def _dumps(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _prom_labels(names: Sequence[str], values: Sequence[str],
                 extra: Sequence[tuple[str, str]] = ()) -> str:
    pairs = [(k, v) for k, v in zip(names, values)]
    pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_prom_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def to_prometheus(registry: MetricsRegistry, *,
                  prefix: str = PROM_PREFIX) -> str:
    """Render the registry (instruments + ledger) as Prometheus text.

    Histograms emit the standard ``_bucket``/``_sum``/``_count`` series
    plus ``_quantile``-labeled gauge lines from the seeded reservoir
    (p50/p95/p99).  The metadata ledger is exposed as
    ``<prefix>metadata_messages_total`` and
    ``<prefix>metadata_bytes_total{component=...}`` from its lifetime
    window (Prometheus counters are lifetime-semantics by definition).
    """
    lines: list[str] = []
    for fam in registry.families():
        name = prefix + fam.name
        if fam.help:
            lines.append(f"# HELP {name} {fam.help}")
        lines.append(f"# TYPE {name} {fam.kind}")
        for values, child in fam.samples():
            if isinstance(child, (Counter, Gauge)):
                label_s = _prom_labels(fam.label_names, values)
                lines.append(f"{name}{label_s} {format_value(child.value)}")
            else:
                assert isinstance(child, Histogram)
                for le, cum in child.cumulative_buckets():
                    label_s = _prom_labels(fam.label_names, values,
                                           extra=(("le", le),))
                    lines.append(f"{name}_bucket{label_s} {cum}")
                label_s = _prom_labels(fam.label_names, values)
                lines.append(f"{name}_sum{label_s} {format_value(child.sum)}")
                lines.append(f"{name}_count{label_s} {child.count}")
                for q, qv in sorted(child.quantiles().items()):
                    qlabel = _prom_labels(fam.label_names, values,
                                          extra=(("quantile", q),))
                    lines.append(f"{name}_quantile{qlabel} {format_value(qv)}")
    lines.extend(_ledger_prometheus(registry.ledger, prefix))
    return "\n".join(lines) + "\n"


def _ledger_prometheus(ledger: MetadataLedger, prefix: str) -> list[str]:
    lines: list[str] = []
    msg_name = prefix + "metadata_messages_total"
    byte_name = prefix + "metadata_bytes_total"
    lines.append(f"# HELP {msg_name} messages recorded by the metadata ledger")
    lines.append(f"# TYPE {msg_name} counter")
    items = sorted(ledger.lifetime.items())
    for (proto, kind, site), cell in items:
        labels = _prom_labels(("kind", "protocol", "site"),
                              (kind, proto, str(site)))
        lines.append(f"{msg_name}{labels} {cell.count}")
    lines.append(f"# HELP {byte_name} piggyback metadata bytes by component")
    lines.append(f"# TYPE {byte_name} counter")
    for (proto, kind, site), cell in items:
        for comp, nbytes in sorted(cell.components.items()):
            labels = _prom_labels(
                ("component", "kind", "protocol", "site"),
                (comp, kind, proto, str(site)))
            lines.append(f"{byte_name}{labels} {nbytes}")
    return lines


def write_prometheus(registry: MetricsRegistry,
                     path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(to_prometheus(registry))
    return path


# ----------------------------------------------------------------------
# JSON snapshots & deltas
# ----------------------------------------------------------------------
def registry_snapshot(registry: MetricsRegistry,
                      meta: Optional[dict] = None) -> dict:
    """Full structured dump: every family, every series, plus the ledger.

    The result is JSON-ready and deterministic (sorted families, sorted
    series, sorted label keys).
    """
    families: dict[str, dict] = {}
    for fam in registry.families():
        series = []
        for values, child in fam.samples():
            labels = dict(zip(fam.label_names, values))
            if isinstance(child, (Counter, Gauge)):
                series.append({"labels": labels,
                               "value": child.value})
            else:
                assert isinstance(child, Histogram)
                series.append({
                    "labels": labels,
                    "count": child.count,
                    "sum": child.sum,
                    "buckets": {le: cum
                                for le, cum in child.cumulative_buckets()},
                    "quantiles": child.quantiles(),
                })
        families[fam.name] = {"kind": fam.kind, "help": fam.help,
                              "series": series}
    snap: dict = {
        "format": METRICS_FORMAT_VERSION,
        "meta": dict(sorted((meta or {}).items())),
        "families": families,
        "ledger": registry.ledger.as_dict(),
    }
    return snap


def write_snapshot_json(registry: MetricsRegistry, path: Union[str, Path],
                        meta: Optional[dict] = None) -> Path:
    path = Path(path)
    path.write_text(_dumps(registry_snapshot(registry, meta)) + "\n")
    return path


def append_snapshot_jsonl(registry: MetricsRegistry, fh: IO[str], *,
                          meta: Optional[dict] = None,
                          previous: Optional[dict] = None) -> dict:
    """Write one snapshot line (plus a delta line when ``previous`` is
    given) to an open JSONL stream; returns the snapshot for chaining."""
    snap = registry_snapshot(registry, meta)
    fh.write(_dumps({"type": "snapshot", **snap}) + "\n")
    if previous is not None:
        delta = snapshot_delta(previous, snap)
        fh.write(_dumps({"type": "delta", "delta": delta}) + "\n")
    return snap


# ----------------------------------------------------------------------
# flatten / diff (repro metrics diff)
# ----------------------------------------------------------------------
def flatten_snapshot(snap: dict) -> dict[str, float]:
    """Flatten a snapshot to ``{dotted.key: number}`` for diffing."""
    flat: dict[str, float] = {}
    for name, fam in sorted(snap.get("families", {}).items()):
        for entry in fam["series"]:
            label_s = ",".join(f"{k}={v}"
                               for k, v in sorted(entry["labels"].items()))
            base = f"{name}{{{label_s}}}" if label_s else name
            if "value" in entry:
                flat[base] = entry["value"]
            else:
                flat[f"{base}.count"] = entry["count"]
                flat[f"{base}.sum"] = entry["sum"]
    ledger = snap.get("ledger", {})
    for window in ("lifetime", "measured"):
        for row in ledger.get(window, ()):
            base = (f"ledger.{window}.{row['protocol']}"
                    f".{row['kind']}.site{row['site']}")
            flat[f"{base}.count"] = row["count"]
            flat[f"{base}.bytes"] = row["bytes"]
            for comp, nbytes in sorted(row["components"].items()):
                flat[f"{base}.{comp}"] = nbytes
    return flat


def snapshot_delta(old: dict, new: dict) -> dict[str, float]:
    """Numeric change per flattened key between two snapshots."""
    a, b = flatten_snapshot(old), flatten_snapshot(new)
    out: dict[str, float] = {}
    for key in sorted(set(a) | set(b)):
        change = b.get(key, 0) - a.get(key, 0)
        if change:
            out[key] = change
    return out


def diff_snapshots(old: dict, new: dict) -> list[str]:
    """Human-readable per-key diff lines (sorted, deterministic)."""
    a, b = flatten_snapshot(old), flatten_snapshot(new)
    lines: list[str] = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va == vb:
            continue
        left = "-" if va is None else format_value(va)
        right = "-" if vb is None else format_value(vb)
        lines.append(f"{key}: {left} -> {right}")
    return lines


# ----------------------------------------------------------------------
# console tables
# ----------------------------------------------------------------------
def ledger_table(ledger: MetadataLedger, *, window: str = "measured") -> str:
    """Per protocol x message kind table of metadata bytes by component.

    This is the ``repro metrics summarize`` centerpiece: the rightmost
    column re-derives the collector's Table-II/III byte totals, the
    component columns show where those bytes come from.
    """
    grouped = ledger.by_protocol_kind(window)
    if not grouped:
        return f"(ledger {window} window is empty)"
    components = sorted({c for cell in grouped.values()
                         for c in cell.components})
    header = ["protocol", "kind", "msgs"] + components + ["total_bytes"]
    rows: list[list[str]] = []
    for (proto, kind), cell in grouped.items():
        row = [proto, kind, str(cell.count)]
        row.extend(str(cell.components.get(c, 0)) for c in components)
        row.append(str(cell.bytes))
        rows.append(row)
    totals = ["(all)", "", str(sum(c.count for c in grouped.values()))]
    for comp in components:
        totals.append(str(sum(c.components.get(comp, 0)
                              for c in grouped.values())))
    totals.append(str(sum(c.bytes for c in grouped.values())))
    rows.append(totals)
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]

    def fmt_row(r: list[str]) -> str:
        return "  ".join(val.ljust(w) if i < 2 else val.rjust(w)
                         for i, (val, w) in enumerate(zip(r, widths)))

    sep = "  ".join("-" * w for w in widths)
    out = [fmt_row(header), sep]
    out.extend(fmt_row(r) for r in rows[:-1])
    out.append(sep)
    out.append(fmt_row(rows[-1]))
    return "\n".join(out)


def console_summary(registry: MetricsRegistry, *,
                    window: str = "measured") -> str:
    """Compact run summary: scalar instruments + histogram digests +
    the metadata-byte table."""
    lines: list[str] = ["== metrics =="]
    for fam in registry.families():
        for values, child in fam.samples():
            label_s = ",".join(f"{k}={v}" for k, v
                               in zip(fam.label_names, values))
            key = f"{fam.name}{{{label_s}}}" if label_s else fam.name
            if isinstance(child, (Counter, Gauge)):
                lines.append(f"  {key} = {format_value(child.value)}")
            else:
                assert isinstance(child, Histogram)
                q = child.quantiles()
                lines.append(
                    f"  {key}: n={child.count} sum={format_value(child.sum)}"
                    f" p50={q.get('p50', 0):.3g} p95={q.get('p95', 0):.3g}"
                    f" p99={q.get('p99', 0):.3g}")
    lines.append("")
    lines.append(f"== metadata bytes by component ({window} window) ==")
    lines.append(ledger_table(registry.ledger, window=window))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# heartbeat
# ----------------------------------------------------------------------
class HeartbeatReporter:
    """Periodic progress lines for a live run.

    Installed as (part of) ``Simulator.observer``; emits every
    ``every_ms`` simulated milliseconds *or* every ``every_events``
    events, whichever fires first.  Lines carry simulated-time
    throughput, queue depth, app messages in flight, and the deepest
    per-site activation backlog — enough to see a stuck or lagging run
    at a glance.  Output goes to ``stream`` (default ``sys.stderr``), so
    stdout stays machine-readable.
    """

    def __init__(self, *, every_ms: float = 1000.0,
                 every_events: Optional[int] = None,
                 stream: Optional[IO[str]] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if every_ms <= 0:
            raise ValueError("every_ms must be positive")
        self.every_ms = every_ms
        self.every_events = every_events
        self.stream = stream if stream is not None else sys.stderr
        self.registry = registry
        self.network = None  # bound by the runner when available
        self.protocols: Sequence = ()
        self._events = 0
        self._next_ms = every_ms
        self._next_events = every_events
        self.beats = 0

    def bind(self, *, network=None, protocols=None) -> None:
        """Attach live data sources (called by the runner after wiring)."""
        if network is not None:
            self.network = network
        if protocols is not None:
            self.protocols = protocols

    # observer-compatible: called per event with (time, pending)
    def on_sim_event(self, ts: float, pending: int) -> None:
        self._events += 1
        if ts >= self._next_ms or (
                self._next_events is not None
                and self._events >= self._next_events):
            self._emit(ts, pending)
            while self._next_ms <= ts:
                self._next_ms += self.every_ms
            if self.every_events is not None:
                self._next_events = self._events + self.every_events

    def _emit(self, ts: float, pending: int) -> None:
        self.beats += 1
        rate = self._events / (ts / 1000.0) if ts > 0 else 0.0
        parts = [f"[heartbeat] t={ts:.0f}ms", f"events={self._events}",
                 f"ev/s={rate:.0f}", f"queue={pending}"]
        in_flight = None
        if self.network is not None:
            in_flight = self.network.app_messages_in_flight
            parts.append(f"in-flight={in_flight}")
        backlog = None
        if self.protocols:
            backlog = max(p.buffered_count for p in self.protocols)
            parts.append(f"max-site-backlog={backlog}")
        self.stream.write(" ".join(parts) + "\n")
        reg = self.registry
        if reg is not None:
            reg.set_gauge("heartbeat_events_per_sec", round(rate, 3),
                          "simulated-time event throughput at last beat")
            reg.set_gauge("heartbeat_queue_depth", pending,
                          "kernel queue depth at last beat")
            if in_flight is not None:
                reg.set_gauge("net_messages_in_flight", in_flight,
                              "application messages in flight at last beat")
            if backlog is not None:
                reg.set_gauge("proto_max_site_backlog", backlog,
                              "deepest per-site activation backlog at last beat")
