"""Trace sinks: JSONL files and Chrome ``trace_event`` JSON.

Three ways to consume a trace:

* **in-memory** — a live :class:`~repro.obs.tracer.Tracer` (or the
  :class:`~repro.obs.tracer.Trace` from ``to_trace()``) is itself the
  in-memory sink; the analysis helpers operate on it directly;
* **JSONL** — :func:`write_jsonl` / :func:`load_trace` round-trip the
  full structured trace (meta line, one event per line, time-series
  trailer).  Output is byte-deterministic: same seed, same file;
* **Chrome trace_event JSON** — :func:`write_chrome` emits the subset
  Perfetto / ``chrome://tracing`` renders: one track (tid) per site,
  operation and buffered-update slices, message-flow arrows from sender
  to receiver, instants for drops and retransmits.

Format reference: the Trace Event Format is stable and documented by
the Chromium project; timestamps are microseconds, so simulated
milliseconds are scaled by 1000.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .timeseries import TimeSeries
from .tracer import Trace, TraceEvent, Tracer

__all__ = ["write_jsonl", "load_trace", "to_chrome", "write_chrome"]

TRACE_FORMAT_VERSION = 1

_TraceLike = Union[Tracer, Trace]


def _as_trace(trace: _TraceLike) -> Trace:
    return trace.to_trace() if isinstance(trace, Tracer) else trace


def _dumps(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(trace: _TraceLike, path: Union[str, Path]) -> Path:
    """Write the full structured trace to ``path`` (deterministic bytes)."""
    trace = _as_trace(trace)
    path = Path(path)
    with path.open("w") as fh:
        meta = {"type": "meta", "version": TRACE_FORMAT_VERSION}
        meta.update(trace.meta)
        fh.write(_dumps(meta) + "\n")
        for ev in trace.events:
            row = {"type": "event"}
            row.update(ev.to_json())
            fh.write(_dumps(row) + "\n")
        trailer = {"type": "timeseries"}
        trailer.update(trace.timeseries.as_dict())
        fh.write(_dumps(trailer) + "\n")
    return path


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a trace written by :func:`write_jsonl`."""
    meta: dict = {}
    events: list[TraceEvent] = []
    timeseries = TimeSeries()
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            kind = row.pop("type", "event")
            if kind == "meta":
                row.pop("version", None)
                meta = row
            elif kind == "timeseries":
                timeseries = TimeSeries.from_dict(row)
            else:
                events.append(TraceEvent.from_json(row))
    return Trace(meta=meta, events=events, timeseries=timeseries)


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def _us(ts_ms: float) -> float:
    return round(ts_ms * 1000.0, 3)


def _sites_of(trace: Trace) -> list[int]:
    n = trace.meta.get("n_sites")
    if n:
        return list(range(int(n)))
    return sorted({ev.site for ev in trace.events})


def _name_of_write(attrs: dict) -> str:
    if "writer" in attrs:
        return f"w{attrs['writer']}.{attrs['clock']}(x{attrs.get('var', '?')})"
    return f"x{attrs.get('var', '?')}"


def to_chrome(trace: _TraceLike) -> dict:
    """Build a Chrome trace_event JSON object (one track per site)."""
    trace = _as_trace(trace)
    out: list[dict] = []
    pid = 0
    proto = trace.meta.get("protocol", "simulation")
    out.append({"ph": "M", "pid": pid, "name": "process_name",
                "args": {"name": f"repro {proto}"}})
    for site in _sites_of(trace):
        out.append({"ph": "M", "pid": pid, "tid": site, "name": "thread_name",
                    "args": {"name": f"site {site}"}})
        out.append({"ph": "M", "pid": pid, "tid": site, "name": "thread_sort_index",
                    "args": {"sort_index": site}})

    for ev in trace.events:
        a = ev.attrs
        if ev.kind in ("op.write", "op.read"):
            end = a.get("end_ts", ev.ts)
            name = ("write" if ev.kind == "op.write" else
                    "remote read" if a.get("remote") else "read")
            out.append({
                "ph": "X", "pid": pid, "tid": ev.site, "ts": _us(ev.ts),
                "dur": max(_us(end) - _us(ev.ts), 1.0),
                "name": f"{name} x{a.get('var', '?')}",
                "cat": "op", "args": {"index": a.get("index")},
            })
        elif ev.kind == "msg.send":
            out.append({
                "ph": "X", "pid": pid, "tid": ev.site, "ts": _us(ev.ts),
                "dur": 1.0, "name": f"send {a.get('msg', '?')}→{a.get('dst')}",
                "cat": "net", "args": {"size": a.get("size")},
            })
            out.append({"ph": "s", "pid": pid, "tid": ev.site, "ts": _us(ev.ts),
                        "id": ev.id, "name": a.get("msg", "msg"), "cat": "net"})
        elif ev.kind == "msg.deliver":
            out.append({
                "ph": "X", "pid": pid, "tid": ev.site, "ts": _us(ev.ts),
                "dur": 1.0, "name": f"recv←{a.get('src')}",
                "cat": "net", "args": {"latency_ms": a.get("latency_ms")},
            })
            if ev.parent is not None:
                out.append({"ph": "f", "bp": "e", "pid": pid, "tid": ev.site,
                            "ts": _us(ev.ts), "id": ev.parent,
                            "name": "msg", "cat": "net"})
        elif ev.kind == "sm.activate":
            waited = a.get("waited_ms", 0.0)
            if waited > 0:
                out.append({
                    "ph": "X", "pid": pid, "tid": ev.site,
                    "ts": _us(a["arrived"]),
                    "dur": max(_us(ev.ts) - _us(a["arrived"]), 1.0),
                    "name": f"buffered {_name_of_write(a)}", "cat": "causal",
                    "args": {"waited_ms": waited,
                             "waited_on": a.get("waited_on", [])},
                })
            out.append({
                "ph": "i", "pid": pid, "tid": ev.site, "ts": _us(ev.ts),
                "s": "t", "name": f"apply {_name_of_write(a)}", "cat": "causal",
                "args": {"visibility_ms": a.get("visibility_ms")},
            })
        elif ev.kind == "msg.retransmit":
            out.append({"ph": "i", "pid": pid, "tid": ev.site, "ts": _us(ev.ts),
                        "s": "t", "name": "retransmit", "cat": "chaos"})
        elif ev.kind == "msg.attempt" and a.get("outcome") == "dropped":
            out.append({"ph": "i", "pid": pid, "tid": ev.site, "ts": _us(ev.ts),
                        "s": "t",
                        "name": ("partition drop" if a.get("partition")
                                 else "drop"),
                        "cat": "chaos"})

    # counter track: in-flight messages over time
    for t, stat in trace.timeseries.series("net.in_flight"):
        out.append({"ph": "C", "pid": pid, "tid": 0, "ts": _us(t),
                    "name": "in_flight", "args": {"messages": stat.mean}})

    return {"traceEvents": out, "displayTimeUnit": "ms",
            "otherData": dict(trace.meta)}


def write_chrome(trace: _TraceLike, path: Union[str, Path]) -> Path:
    """Write the Perfetto-loadable Chrome trace JSON to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome(trace), sort_keys=True))
    return path
