"""Metadata-byte ledger: per-component accounting of piggyback bytes.

The paper's Tables II/III report one number per protocol — total metadata
bytes — and the :class:`~repro.metrics.collector.MetricsCollector`
reproduces exactly that.  The ledger decomposes the same bytes, at the
same recording point (:meth:`~repro.core.base.CausalProtocol._send`),
into the *components* the size model prices:

========================  =====================================================
component                 meaning
========================  =====================================================
``envelope``              per-message framing / serialization headers
``var_id``                the variable id field
``value``                 the payload value slot
``site_id``               the writer-site field (Opt-Track family)
``clock``                 the writer-clock field (Opt-Track family)
``clock_entries``         matrix (Full-Track) / vector (optP) clock cells
``epoch_padding``         clock cells beyond the run's initial n — metadata
                          growth purchased by membership epochs (churn runs)
``log_records``           Opt-Track KS-log per-record overhead
``dest_ids``              Opt-Track per-destination ids inside log records
``tuple_entries``         Opt-Track-CRP (site, clock) 2-tuples
``fm_base``               the constant fetch-request body
``fm_requirements``       (writer, threshold) gating pairs on a fetch
``opaque``                any message type the ledger has no decomposer for
========================  =====================================================

Every decomposition **sums exactly** to ``message.metadata_size(model)``
— that identity is what lets a cross-check test pin the ledger to the
collector's Table-II/III totals byte-for-byte (see
:meth:`MetadataLedger.crosscheck`).  Entries are keyed by
protocol x message kind x site and kept in two windows mirroring the
collector: ``lifetime`` (every send) and ``measured`` (after the warm-up
gate opens).

Zero-overhead contract: the ledger only exists inside a
:class:`~repro.obs.metrics.MetricsRegistry`; with ``registry=None`` (the
default everywhere) no ledger code runs at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.messages import (
    CRPSM,
    FetchMessage,
    FullTrackRM,
    FullTrackSM,
    OptPSM,
    OptTrackRM,
    OptTrackSM,
)
from ..metrics.sizing import SizeModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..metrics.collector import MetricsCollector

__all__ = ["MetadataLedger", "LedgerCell", "decompose_message", "COMPONENTS"]

#: every component name the decomposers can emit (documentation + tests)
COMPONENTS = (
    "envelope",
    "var_id",
    "value",
    "site_id",
    "clock",
    "clock_entries",
    "epoch_padding",
    "log_records",
    "dest_ids",
    "tuple_entries",
    "fm_base",
    "fm_requirements",
    "opaque",
)

Breakdown = tuple[tuple[str, int], ...]


def _split_growth(label: str, per_cell_bytes: int, cells: int,
                  base_cells: int, mult: int = 1) -> Breakdown:
    """Split ``mult`` clock structures into base cells vs growth."""
    if cells <= base_cells:
        return ((label, per_cell_bytes * cells * mult),)
    return (
        (label, per_cell_bytes * base_cells * mult),
        ("epoch_padding", per_cell_bytes * (cells - base_cells) * mult),
    )


def _sum_breakdown(t: type, n: int, count: int, d1: int, d2: int,
                   model: SizeModel, base_n: int) -> Breakdown:
    """Component bytes for ``count`` messages of type ``t`` at once.

    Every decomposition is *linear* in three per-type accumulators —
    message count, summed log/requirement length ``d1``, and summed
    priced size ``d2`` — except the clock split, which depends on the
    clock dimension ``n`` (constant between view changes, so it rides
    in the accumulator key instead).  Mirrors ``core/messages.py``
    ``metadata_size`` formulas exactly; the sum-to-size identity is
    asserted by tests over every message type.
    """
    if t is OptTrackSM or t is OptTrackRM:
        # d2 carries the priced sizes, so the per-destination ids are
        # the remainder after the fixed fields and per-record overhead
        # — dest_id * total_dests by the metadata_size formula, without
        # ever walking a piggybacked log
        fixed = (model.envelope_opt_track + model.value
                 + model.site_id + model.clock)
        parts: Breakdown = (
            ("envelope", model.envelope_opt_track * count),
            ("value", model.value * count),
            ("site_id", model.site_id * count),
            ("clock", model.clock * count),
        )
        if t is OptTrackSM:
            fixed += model.var_id
            parts += (("var_id", model.var_id * count),)
        log_bytes = model.log_entry_overhead * d1
        return parts + (
            ("log_records", log_bytes),
            ("dest_ids", d2 - fixed * count - log_bytes),
        )
    if t is FullTrackSM:
        return (
            ("envelope", model.envelope_full_track * count),
            ("var_id", model.var_id * count),
            ("value", model.value * count),
        ) + _split_growth("clock_entries", model.matrix_entry, n * n,
                          base_n * base_n, count)
    if t is FullTrackRM:
        return (
            ("envelope", model.envelope_full_track * count),
            ("value", model.value * count),
        ) + _split_growth("clock_entries", model.matrix_entry, n * n,
                          base_n * base_n, count)
    if t is OptPSM:
        return (
            ("envelope", model.envelope_optp * count),
            ("var_id", model.var_id * count),
            ("value", model.value * count),
        ) + _split_growth("clock_entries", model.vector_entry, n,
                          base_n, count)
    if t is CRPSM:
        return (
            ("envelope", model.envelope_crp * count),
            ("var_id", model.var_id * count),
            ("value", model.value * count),
            ("site_id", model.site_id * count),
            ("clock", model.clock * count),
            ("tuple_entries", model.tuple_entry * d1),
        )
    if t is FetchMessage:
        return (
            ("fm_base", model.fm_size * count),
            ("fm_requirements", model.fm_requirement * d1),
        )
    return (("opaque", d2),)


def _message_dims(message: object, model: SizeModel,
                  size: Optional[int] = None) -> tuple[type, int, int, int]:
    """(type, clock_n, d1, d2) accumulator dimensions for one message."""
    t = type(message)
    if t is OptTrackSM or t is OptTrackRM:
        if size is None:
            size = message.metadata_size(model)  # type: ignore[attr-defined]
        return t, 0, len(message.log), size  # type: ignore[attr-defined]
    if t is FullTrackSM or t is FullTrackRM:
        return t, message.matrix.n, 0, 0  # type: ignore[attr-defined]
    if t is OptPSM:
        return t, message.vector.n, 0, 0  # type: ignore[attr-defined]
    if t is CRPSM:
        return t, 0, len(message.log), 0  # type: ignore[attr-defined]
    if t is FetchMessage:
        return t, 0, len(message.requirements), 0  # type: ignore[attr-defined]
    if size is None:
        size = message.metadata_size(model)  # type: ignore[attr-defined]
    return t, 0, 0, size


def decompose_message(message: object, model: SizeModel,
                      base_n: Optional[int] = None) -> Breakdown:
    """Per-component byte breakdown of one message.

    Invariant: the component bytes sum to ``message.metadata_size(model)``
    exactly.  Unknown message types fall back to a single ``opaque``
    component priced by their own ``metadata_size``, preserving the
    invariant for protocols added later.

    ``base_n`` (the run's initial site count) splits clock structures
    that grew past it into ``clock_entries`` + ``epoch_padding``; with
    ``None`` nothing is attributed to padding.
    """
    t, n, d1, d2 = _message_dims(message, model)
    return _sum_breakdown(t, n, 1, d1, d2, model,
                          0 if base_n is None else base_n)


class LedgerCell:
    """Counts + per-component bytes for one (protocol, kind, site) key."""

    __slots__ = ("count", "bytes", "components")

    def __init__(self) -> None:
        self.count = 0
        self.bytes = 0
        self.components: dict[str, int] = {}

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "bytes": self.bytes,
            "components": dict(sorted(self.components.items())),
        }


class MetadataLedger:
    """Decomposed metadata-byte accounting, windowed like the collector.

    Accounting is bumped from :meth:`CausalProtocol._send` right next to
    ``collector.record_message``.  The measured window is *derived*:
    :meth:`mark_measuring` snapshots the lifetime cells when the
    collector's warm-up gate opens (the gate opens once and never
    closes), and ``measured`` reads lifetime-minus-snapshot — so the
    per-message hot path never branches on a measuring flag, yet both
    windows describe exactly the same message sets as the collector's.
    """

    __slots__ = ("base_n", "_lifetime", "_mark", "_marked", "_pending",
                 "_model", "_transport")

    def __init__(self, base_n: Optional[int] = None) -> None:
        #: initial site count; clock growth beyond it is epoch padding
        self.base_n = base_n
        self._lifetime: dict[tuple[str, str, int], LedgerCell] = {}
        #: lifetime snapshot taken when the measurement window opened
        self._mark: dict[tuple[str, str, int], LedgerCell] = {}
        self._marked = False
        #: hot-path accumulator: (proto, kind, site, type[, clock_n]) ->
        #: [count, d1, d2]; every decomposition is linear in those sums
        #: (see _sum_breakdown), so the buffer stays at a handful of
        #: cache-hot keys per run and _flush expands it without
        #: per-message work
        self._pending: dict[tuple, list] = {}
        self._model: Optional[SizeModel] = None
        #: transport-layer bytes (chaos path): ("ack"|"retransmit",
        #: site) -> [count, bytes].  These are wire infrastructure, not
        #: piggyback metadata, so they live beside the component cells —
        #: but they make soak-run byte tallies sum exactly (the
        #: crosscheck pins them to the collector's ack/retransmission
        #: counters).  Lifetime-only, like the collector's chaos side.
        self._transport: dict[tuple[str, int], list] = {}

    # -- hot path ------------------------------------------------------
    #: dim-extraction modes returned by :meth:`resolve` — how a hot
    #: caller turns one message into the (d1, d2) accumulator deltas
    #: (0: none, size fixed by the key's clock_n; 1: (len(log), size);
    #: 2: (len(requirements), 0); 3: (len(log), 0); 4: (0, size))
    MODE_CLOCK = 0
    MODE_LOG_SIZE = 1
    MODE_REQUIREMENTS = 2
    MODE_LOG = 3
    MODE_OPAQUE = 4

    def resolve(self, protocol: str, kind: object, site: int,
                message: object, model: SizeModel) -> tuple[list, int]:
        """Pre-bind the accumulator for one (protocol, kind, site, type).

        Returns ``(entry, mode)``: a stable three-slot counter list
        ``[count, d1, d2]`` plus the dim mode.  ``_flush`` zeroes
        entries in place instead of dropping them, so callers may cache
        the list and bump it inline — a kind's message type (and the
        clock width baked into the key) is fixed within a membership
        epoch, which is why :meth:`CausalProtocol.on_view_change` drops
        its cache.

        ``kind`` may be the plain string ("sm"/"fm"/"rm") or the
        :class:`MessageKind` enum member itself — the enum's ``.value``
        descriptor costs more than a whole inline bump, so hot callers
        pass the member and ``_flush`` normalizes.
        """
        self._model = model
        t = type(message)
        if t is OptTrackSM or t is OptTrackRM:
            key = (protocol, kind, site, t)
            mode = self.MODE_LOG_SIZE
        elif t is FullTrackSM or t is FullTrackRM:
            key = (protocol, kind, site, t, message.matrix.n)  # type: ignore[attr-defined]
            mode = self.MODE_CLOCK
        elif t is OptPSM:
            key = (protocol, kind, site, t, message.vector.n)  # type: ignore[attr-defined]
            mode = self.MODE_CLOCK
        elif t is CRPSM:
            key = (protocol, kind, site, t)
            mode = self.MODE_LOG
        elif t is FetchMessage:
            key = (protocol, kind, site, t)
            mode = self.MODE_REQUIREMENTS
        else:
            key = (protocol, kind, site, t)
            mode = self.MODE_OPAQUE
        pending = self._pending
        entry = pending.get(key)
        if entry is None:
            pending[key] = entry = [0, 0, 0]
        return entry, mode

    def record(self, protocol: str, kind: object, site: int, message: object,
               model: SizeModel, size: Optional[int] = None) -> None:
        """Account one sent message (generic path).

        The protocol hot path bypasses this method entirely: it caches
        :meth:`resolve`'s entry per kind and bumps it inline in
        ``CausalProtocol._send``.  The expensive part — expanding
        accumulated sums into component bytes — happens once per
        accumulator key at the first aggregation call (:meth:`_flush`),
        not per message.  One size model per run is assumed (changing it
        mid-run re-prices nothing already flushed).  ``size`` is the
        already-priced ``message.metadata_size(model)`` when the caller
        has it — it spares the Opt-Track path a walk over the
        piggybacked log.
        """
        entry, mode = self.resolve(protocol, kind, site, message, model)
        if mode == self.MODE_LOG_SIZE:
            if size is None:
                size = message.metadata_size(model)  # type: ignore[attr-defined]
            d1 = len(message.log)  # type: ignore[attr-defined]
            d2 = size
        elif mode == self.MODE_REQUIREMENTS:
            d1 = len(message.requirements)  # type: ignore[attr-defined]
            d2 = 0
        elif mode == self.MODE_LOG:
            d1 = len(message.log)  # type: ignore[attr-defined]
            d2 = 0
        elif mode == self.MODE_OPAQUE:
            d1 = 0
            d2 = (size if size is not None
                  else message.metadata_size(model))  # type: ignore[attr-defined]
        else:
            d1 = d2 = 0
        entry[0] += 1
        entry[1] += d1
        entry[2] += d2

    def record_transport(self, kind: str, site: int, nbytes: float) -> None:
        """Account one transport-layer packet (ack or retransmission)
        originated by ``site``; called from the reliable layer next to
        the collector bumps so both always agree exactly."""
        entry = self._transport.get((kind, site))
        if entry is None:
            entry = self._transport[(kind, site)] = [0, 0.0]
        entry[0] += 1
        entry[1] += nbytes

    def transport_totals(self) -> dict[str, tuple[int, float]]:
        """{kind: (count, bytes)} summed over sites, sorted by kind."""
        out: dict[str, tuple[int, float]] = {}
        for (kind, _site), (count, nbytes) in sorted(self._transport.items()):
            prev = out.get(kind, (0, 0.0))
            out[kind] = (prev[0] + count, prev[1] + nbytes)
        return out

    def mark_measuring(self) -> None:
        """Open the measured window (call where the collector's
        ``start_measuring`` fires, so both describe the same messages).

        Snapshots the lifetime cells; ``measured`` then reads
        lifetime-minus-snapshot.  Calling again re-opens the window from
        the new instant.
        """
        self._flush()
        mark = self._mark = {}
        for key, cell in self._lifetime.items():
            m = mark[key] = LedgerCell()
            m.count = cell.count
            m.bytes = cell.bytes
            m.components = dict(cell.components)
        self._marked = True

    # -- lazy expansion ------------------------------------------------
    def _flush(self) -> None:
        """Expand the pending accumulators into the lifetime cells.

        Entries are zeroed in place (never dropped) so the lists handed
        out by :meth:`resolve` stay live across flushes — aggregation
        mid-run (heartbeats, exports) sees consistent deltas.
        """
        pending = self._pending
        if not pending:
            return
        model = self._model
        assert model is not None
        base_n = 0 if self.base_n is None else self.base_n
        lifetime = self._lifetime
        for flat, entry in pending.items():
            if not entry[0]:
                continue
            kind = flat[1]
            if not isinstance(kind, str):  # MessageKind member from _send
                kind = kind.value
            key = (flat[0], kind, flat[2])
            t = flat[3]
            n = flat[4] if len(flat) > 4 else 0
            self._bump(lifetime, key, entry[0],
                       _sum_breakdown(t, n, entry[0], entry[1], entry[2],
                                      model, base_n))
            entry[0] = entry[1] = entry[2] = 0

    @staticmethod
    def _bump(window: dict[tuple[str, str, int], LedgerCell],
              key: tuple[str, str, int],
              count: int, comps: Breakdown) -> None:
        cell = window.get(key)
        if cell is None:
            cell = window[key] = LedgerCell()
        cell.count += count
        parts = cell.components
        total = 0
        for name, b in comps:
            if b:
                total += b
                parts[name] = parts.get(name, 0) + b
        cell.bytes += total

    # -- aggregation ---------------------------------------------------
    @property
    def lifetime(self) -> dict[tuple[str, str, int], LedgerCell]:
        self._flush()
        return self._lifetime

    @property
    def measured(self) -> dict[tuple[str, str, int], LedgerCell]:
        """Lifetime-minus-mark cells (fresh copies; {} before the mark)."""
        self._flush()
        if not self._marked:
            return {}
        mark = self._mark
        out: dict[tuple[str, str, int], LedgerCell] = {}
        for key, cell in self._lifetime.items():
            m = mark.get(key)
            d = LedgerCell()
            if m is None:
                d.count = cell.count
                d.bytes = cell.bytes
                d.components = dict(cell.components)
            else:
                d.count = cell.count - m.count
                d.bytes = cell.bytes - m.bytes
                marked_comps = m.components
                for name, b in cell.components.items():
                    delta = b - marked_comps.get(name, 0)
                    if delta:
                        d.components[name] = delta
                if not d.count and not d.bytes and not d.components:
                    continue
            out[key] = d
        return out

    def _window(self, window: str) -> dict[tuple[str, str, int], LedgerCell]:
        if window == "lifetime":
            return self.lifetime
        if window == "measured":
            return self.measured
        raise ValueError(f"unknown window {window!r}")

    def total_bytes(self, kind: Optional[str] = None,
                    window: str = "measured") -> int:
        cells = self._window(window)
        return sum(c.bytes for (_, k, _), c in cells.items()
                   if kind is None or k == kind)

    def total_count(self, kind: Optional[str] = None,
                    window: str = "measured") -> int:
        cells = self._window(window)
        return sum(c.count for (_, k, _), c in cells.items()
                   if kind is None or k == kind)

    def by_protocol_kind(self, window: str = "measured") -> dict:
        """{(protocol, kind): {"count", "bytes", "components"}} summed
        over sites, keys sorted for deterministic iteration."""
        out: dict[tuple[str, str], LedgerCell] = {}
        for (proto, kind, _site), cell in sorted(self._window(window).items()):
            agg = out.get((proto, kind))
            if agg is None:
                agg = out[(proto, kind)] = LedgerCell()
            agg.count += cell.count
            agg.bytes += cell.bytes
            for name, b in cell.components.items():
                agg.components[name] = agg.components.get(name, 0) + b
        return {k: out[k] for k in sorted(out)}

    def component_totals(self, window: str = "measured") -> dict[str, int]:
        """Bytes per component summed over every key, sorted by name."""
        totals: dict[str, int] = {}
        for cell in self._window(window).values():
            for name, b in cell.components.items():
                totals[name] = totals.get(name, 0) + b
        return dict(sorted(totals.items()))

    def as_dict(self) -> dict:
        """Deterministic JSON-ready dump of both windows."""
        out: dict = {"base_n": self.base_n}
        for window in ("lifetime", "measured"):
            rows = []
            for (proto, kind, site), cell in sorted(self._window(window).items()):
                row = {"protocol": proto, "kind": kind, "site": site}
                row.update(cell.as_dict())
                rows.append(row)
            out[window] = rows
        out["transport"] = [
            {"kind": kind, "site": site, "count": entry[0],
             "bytes": entry[1]}
            for (kind, site), entry in sorted(self._transport.items())
        ]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MetadataLedger":
        ledger = cls(base_n=data.get("base_n"))
        windows: dict[str, dict[tuple[str, str, int], LedgerCell]] = {
            "lifetime": {}, "measured": {},
        }
        for window_name, window in windows.items():
            for row in data.get(window_name, ()):
                cell = LedgerCell()
                cell.count = int(row["count"])
                cell.bytes = int(row["bytes"])
                cell.components = {str(k): int(v)
                                   for k, v in row["components"].items()}
                window[(row["protocol"], row["kind"], int(row["site"]))] = cell
        ledger._lifetime = windows["lifetime"]
        # the measured window is stored derived (lifetime - mark), so
        # reconstruct the mark as lifetime - measured
        measured = windows["measured"]
        mark: dict[tuple[str, str, int], LedgerCell] = {}
        for key, cell in ledger._lifetime.items():
            m = measured.get(key)
            d = mark[key] = LedgerCell()
            if m is None:
                d.count = cell.count
                d.bytes = cell.bytes
                d.components = dict(cell.components)
            else:
                d.count = cell.count - m.count
                d.bytes = cell.bytes - m.bytes
                d.components = {
                    name: b - m.components.get(name, 0)
                    for name, b in cell.components.items()
                    if b - m.components.get(name, 0)
                }
        ledger._mark = mark
        ledger._marked = True
        for row in data.get("transport", ()):
            ledger._transport[(str(row["kind"]), int(row["site"]))] = [
                int(row["count"]), float(row["bytes"]),
            ]
        return ledger

    # -- the satellite-1 invariant -------------------------------------
    def crosscheck(self, collector: "MetricsCollector") -> list[str]:
        """Exact-agreement check against the collector's SM/FM/RM tallies.

        Returns discrepancy messages (empty list = the ledger's
        per-component byte totals sum exactly to the collector's
        Table-II/III message totals, in both windows).
        """
        problems: list[str] = []
        for kind, tally in collector.tallies.items():
            k = kind.value
            lt_bytes = self.total_bytes(k, window="lifetime")
            lt_count = self.total_count(k, window="lifetime")
            if lt_count != tally.lifetime_count:
                problems.append(
                    f"{k}: ledger lifetime count {lt_count} != "
                    f"collector {tally.lifetime_count}"
                )
            if lt_bytes != tally.lifetime_bytes:
                problems.append(
                    f"{k}: ledger lifetime bytes {lt_bytes} != "
                    f"collector {tally.lifetime_bytes}"
                )
            m_bytes = self.total_bytes(k, window="measured")
            m_count = self.total_count(k, window="measured")
            if m_count != tally.measured.count:
                problems.append(
                    f"{k}: ledger measured count {m_count} != "
                    f"collector {tally.measured.count}"
                )
            if m_bytes != int(tally.measured.total):
                problems.append(
                    f"{k}: ledger measured bytes {m_bytes} != "
                    f"collector {tally.measured.total}"
                )
        # transport-layer packets (ack + retransmission wire bytes): the
        # ledger and collector bump in the same code path with identical
        # float addition sequences, so exact equality is the invariant —
        # this is what makes soak-run byte tallies sum exactly
        totals = self.transport_totals()
        ack_count, ack_bytes = totals.get("ack", (0, 0.0))
        if ack_count != collector.acks_sent:
            problems.append(
                f"ack: ledger count {ack_count} != "
                f"collector {collector.acks_sent}"
            )
        if ack_bytes != collector.ack_bytes:
            problems.append(
                f"ack: ledger bytes {ack_bytes} != "
                f"collector {collector.ack_bytes}"
            )
        rtx_count, rtx_bytes = totals.get("retransmit", (0, 0.0))
        if rtx_count != collector.retransmissions:
            problems.append(
                f"retransmit: ledger count {rtx_count} != "
                f"collector {collector.retransmissions}"
            )
        if rtx_bytes != collector.retransmission_bytes:
            problems.append(
                f"retransmit: ledger bytes {rtx_bytes} != "
                f"collector {collector.retransmission_bytes}"
            )
        return problems

    def __repr__(self) -> str:
        return (f"<MetadataLedger keys={len(self.lifetime)} "
                f"bytes={self.total_bytes(window='lifetime')}>")
