"""Causally-linked structured tracing for simulation runs.

The tracer records one event per interesting moment of a run — operation
start/finish, write issue, each message hop (send → fault-injected
transmission attempt → retransmit → deliver), and each buffered-update
activation — with parent links that follow *causality*, not wall order:

* a ``msg.send`` is parented to the operation (or activation) that was
  executing when the protocol sent it;
* ``msg.attempt`` / ``msg.retransmit`` / ``msg.deliver`` events are
  parented to their message's ``msg.send``;
* an ``sm.activate`` is parented to its message's ``msg.deliver`` and —
  when the update sat buffered — carries ``waited_on``: the send-event
  ids of the messages applied at that site while it waited, i.e. the
  exact messages its activation predicate was waiting for.

Walking those links backwards reconstructs the full causal chain of any
late activation (see :mod:`repro.obs.analyze`).

The tracer is *passive*: it never schedules events, samples an RNG, or
mutates protocol state, so a traced run is bit-for-bit the same
simulation as an untraced one — the ``tracer=None`` fast path in the
instrumented subsystems costs one ``is None`` test per hook and keeps
metrics byte-identical to the un-instrumented code (the same contract
``fault_plan=None`` gives the chaos transport).

Correlation is by payload identity *per destination*: protocols with
shared metadata snapshots (optP, Full-Track) multicast one message
object to many destinations, so the key is ``(id(payload), dst)``.  The
tracer holds a strong reference to every payload it has seen, which both
pins ``id`` uniqueness and keeps traced runs safe from id reuse.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Optional

from .timeseries import DEFAULT_BUCKET_MS, TimeSeries

__all__ = ["Tracer", "TraceEvent", "Trace"]

#: cap on the ``waited_on`` list of one activation (the rest is counted)
MAX_WAITED_ON = 32


@dataclass(slots=True)
class TraceEvent:
    """One structured trace record."""

    id: int
    ts: float
    kind: str
    site: int
    parent: Optional[int] = None
    attrs: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        out: dict = {"id": self.id, "ts": self.ts, "kind": self.kind,
                     "site": self.site}
        if self.parent is not None:
            out["parent"] = self.parent
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_json(cls, data: dict) -> "TraceEvent":
        return cls(
            id=data["id"], ts=data["ts"], kind=data["kind"], site=data["site"],
            parent=data.get("parent"), attrs=data.get("attrs", {}),
        )


@dataclass
class Trace:
    """A finished (or loaded) trace: metadata + events + time series."""

    meta: dict
    events: list[TraceEvent]
    timeseries: TimeSeries

    def __len__(self) -> int:
        return len(self.events)

    def by_id(self) -> dict[int, TraceEvent]:
        return {ev.id: ev for ev in self.events}

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [ev for ev in self.events if ev.kind == kind]


@dataclass(slots=True)
class _MsgState:
    """Correlation state for one in-flight message copy (src -> dst).

    Slotted: one per traced message copy, created on every send under
    tracing — no per-instance ``__dict__``.
    """

    payload: object  # strong ref: pins id(payload) for the run
    send_id: int
    src: int
    dst: int
    deliver_id: Optional[int] = None
    attempts: int = 0
    retransmits: int = 0


class Tracer:
    """Collects :class:`TraceEvent` records and a :class:`TimeSeries`.

    Thread through ``run_simulation(..., tracer=...)`` or
    ``CausalCluster(..., tracer=...)``; export with
    :func:`repro.obs.sinks.write_jsonl` /
    :func:`repro.obs.sinks.write_chrome`.
    """

    def __init__(self, *, bucket_ms: float = DEFAULT_BUCKET_MS,
                 meta: Optional[dict] = None) -> None:
        self.events: list[TraceEvent] = []
        self.timeseries = TimeSeries(bucket_ms=bucket_ms)
        self.meta: dict = dict(meta or {})
        self._next_id = 0
        self._ctx: list[int] = []  # event-id stack of the executing context
        self._msgs: dict[tuple[int, int], _MsgState] = {}
        self._in_flight = 0
        # per-site apply history for waited_on reconstruction
        self._apply_times: dict[int, list[float]] = {}
        self._apply_sends: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------
    def _emit(self, kind: str, site: int, ts: float,
              parent: Optional[int] = None, **attrs: Any) -> TraceEvent:
        ev = TraceEvent(id=self._next_id, ts=ts, kind=kind, site=site,
                        parent=parent, attrs=attrs)
        self._next_id += 1
        self.events.append(ev)
        return ev

    def push(self, event_id: int) -> None:
        """Enter a causal context (subsequent sends parent to it)."""
        self._ctx.append(event_id)

    def pop(self) -> None:
        self._ctx.pop()

    def current(self) -> Optional[int]:
        return self._ctx[-1] if self._ctx else None

    def to_trace(self) -> Trace:
        return Trace(meta=dict(self.meta), events=self.events,
                     timeseries=self.timeseries)

    # ------------------------------------------------------------------
    # operation spans (driven by sim.process.Site)
    # ------------------------------------------------------------------
    def op_start(self, site: int, ts: float, *, write: bool, var: int,
                 index: int) -> int:
        """An application operation begins; enters its causal context."""
        ev = self._emit("op.write" if write else "op.read", site, ts,
                        parent=self.current(), var=var, index=index)
        self.push(ev.id)
        return ev.id

    def op_detach(self) -> None:
        """The synchronous part of the operation returned; leave its
        context (an async remote read completes later via op_finish)."""
        self.pop()

    def op_finish(self, event_id: int, ts: float,
                  remote: Optional[bool] = None) -> None:
        """The operation completed (possibly long after op_detach)."""
        ev = self.events[event_id]
        ev.attrs["end_ts"] = ts
        if remote is not None:
            ev.attrs["remote"] = remote

    # ------------------------------------------------------------------
    # protocol-core hooks
    # ------------------------------------------------------------------
    def write_issued(self, site: int, ts: float, *, writer: int, clock: int,
                     var: int, log_size: Optional[int] = None) -> int:
        """A write was assigned its id (before the SM multicast)."""
        attrs: dict = {"writer": writer, "clock": clock, "var": var}
        if log_size is not None:
            attrs["log_size"] = log_size
            self.timeseries.observe(f"log_size.site{site}", ts, log_size)
        ev = self._emit("write.issue", site, ts, parent=self.current(), **attrs)
        return ev.id

    # ------------------------------------------------------------------
    # message hops
    # ------------------------------------------------------------------
    def msg_send(self, src: int, dst: int, payload: object, *, ts: float,
                 kind: str, size: float) -> int:
        """A protocol message enters the network (called before send)."""
        attrs: dict = {"src": src, "dst": dst, "msg": kind, "size": size}
        wid = getattr(payload, "write_id", None)
        if wid is not None:
            attrs["writer"] = wid.site
            attrs["clock"] = wid.clock
        var = getattr(payload, "var", None)
        if var is not None:
            attrs["var"] = var
        ev = self._emit("msg.send", src, ts, parent=self.current(), **attrs)
        self._msgs[(id(payload), dst)] = _MsgState(
            payload=payload, send_id=ev.id, src=src, dst=dst
        )
        self._in_flight += 1
        self.timeseries.observe("net.in_flight", ts, self._in_flight)
        return ev.id

    def _state(self, payload: object, dst: int) -> Optional[_MsgState]:
        return self._msgs.get((id(payload), dst))

    def msg_attempt(self, src: int, dst: int, payload: object, *, ts: float,
                    dropped: bool, partition: bool = False,
                    spike_ms: float = 0.0, duplicates: int = 0) -> None:
        """One physical transmission attempt on the lossy chaos path."""
        state = self._state(payload, dst)
        if state is None:
            return  # transport-internal packet (e.g. an ack): series only
        state.attempts += 1
        attrs: dict = {"attempt": state.attempts,
                       "outcome": "dropped" if dropped else "sent"}
        if partition:
            attrs["partition"] = True
        if spike_ms:
            attrs["spike_ms"] = spike_ms
        if duplicates:
            attrs["duplicates"] = duplicates
        self._emit("msg.attempt", src, ts, parent=state.send_id, **attrs)
        if dropped:
            self.timeseries.incr("net.drops", ts)

    def msg_retransmit(self, src: int, dst: int, payload: object, *,
                       ts: float) -> None:
        """The reliable layer's timer (or heal flush) resent a packet."""
        state = self._state(payload, dst)
        self.timeseries.incr("net.retransmits", ts)
        if state is None:
            return
        state.retransmits += 1
        self._emit("msg.retransmit", src, ts, parent=state.send_id,
                   n=state.retransmits)

    def msg_deliver(self, src: int, dst: int, payload: object, *,
                    ts: float) -> Optional[int]:
        """The message reached the application at ``dst``.

        Returns the deliver event id (the causal context for whatever
        the receiving protocol does next), or None for an unknown
        payload (nothing sent through a traced ``_send``).
        """
        state = self._state(payload, dst)
        if state is None:
            return None
        ev = self._emit("msg.deliver", dst, ts, parent=state.send_id,
                        src=src, latency_ms=ts - self.events[state.send_id].ts)
        if state.deliver_id is None:
            state.deliver_id = ev.id
            self._in_flight -= 1
            self.timeseries.observe("net.in_flight", ts, self._in_flight)
        return ev.id

    def deliver_id_of(self, payload: object, dst: int) -> Optional[int]:
        state = self._state(payload, dst)
        return state.deliver_id if state is not None else None

    # ------------------------------------------------------------------
    # buffered-message resolution (driven by core.base._drain)
    # ------------------------------------------------------------------
    def sm_activate(self, site: int, payload: object, *, ts: float,
                    arrived: float) -> int:
        """A (possibly buffered) update passed its activation predicate.

        Emits ``sm.activate`` parented to the update's deliver event and
        enters its causal context; close with :meth:`pop`.
        """
        waited = ts - arrived
        attrs: dict = {"arrived": arrived, "waited_ms": waited}
        wid = getattr(payload, "write_id", None)
        if wid is not None:
            attrs["writer"] = wid.site
            attrs["clock"] = wid.clock
        var = getattr(payload, "var", None)
        if var is not None:
            attrs["var"] = var
        issued = getattr(payload, "issued_at", None)
        if issued is not None:
            attrs["visibility_ms"] = ts - issued
            self.timeseries.observe("visibility_ms", ts, ts - issued)
        if waited > 0:
            waited_on = self._applied_since(site, arrived)
            attrs["waited_on"] = waited_on[:MAX_WAITED_ON]
            if len(waited_on) > MAX_WAITED_ON:
                attrs["waited_on_truncated"] = len(waited_on) - MAX_WAITED_ON
            self.timeseries.observe("activation_wait_ms", ts, waited)
        ev = self._emit("sm.activate", site, ts,
                        parent=self.deliver_id_of(payload, site), **attrs)
        self._note_applied(site, ts, self._send_id_of(payload, site))
        self.push(ev.id)
        return ev.id

    def gated_resolved(self, kind: str, site: int, payload: object, *,
                       ts: float, arrived: float) -> int:
        """An FM was served or an RM completed after its gate opened.

        ``kind`` is ``"fm.serve"`` or ``"rm.complete"``; enters the
        event's causal context (close with :meth:`pop`).
        """
        ev = self._emit(kind, site, ts,
                        parent=self.deliver_id_of(payload, site),
                        waited_ms=ts - arrived)
        self.push(ev.id)
        return ev.id

    def _send_id_of(self, payload: object, dst: int) -> Optional[int]:
        state = self._state(payload, dst)
        return state.send_id if state is not None else None

    def _note_applied(self, site: int, ts: float,
                      send_id: Optional[int]) -> None:
        if send_id is None:
            return
        self._apply_times.setdefault(site, []).append(ts)
        self._apply_sends.setdefault(site, []).append(send_id)

    def _applied_since(self, site: int, t0: float) -> list[int]:
        times = self._apply_times.get(site)
        if not times:
            return []
        i = bisect_left(times, t0)
        return self._apply_sends[site][i:]

    # ------------------------------------------------------------------
    # crash-recovery lifecycle (driven by repro.sim.crash)
    # ------------------------------------------------------------------
    def site_crash(self, site: int, ts: float) -> int:
        """``site`` lost its volatile state (process crash)."""
        self.timeseries.incr("crash.crashes", ts)
        return self._emit("site.crash", site, ts).id

    def site_restore(self, site: int, ts: float, *, downtime_ms: float,
                     wal_replayed: int) -> int:
        """``site`` reinstalled its checkpoint and replayed its WAL."""
        self.timeseries.observe("crash.downtime_ms", ts, downtime_ms)
        return self._emit("site.restore", site, ts,
                          downtime_ms=downtime_ms,
                          wal_replayed=wal_replayed).id

    def site_catchup(self, site: int, ts: float, *, duration_ms: float,
                     rounds: int, forced: bool = False) -> int:
        """``site`` finished anti-entropy catch-up and resumed serving."""
        self.timeseries.observe("crash.catchup_ms", ts, duration_ms)
        attrs: dict = {"duration_ms": duration_ms, "rounds": rounds}
        if forced:
            attrs["forced"] = True
        return self._emit("site.catchup", site, ts, **attrs).id

    def detector_suspect(self, observer: int, subject: int, ts: float, *,
                         false_positive: bool = False) -> int:
        """``observer``'s failure detector started suspecting ``subject``."""
        self.timeseries.incr("fd.suspects", ts)
        attrs: dict = {"subject": subject}
        if false_positive:
            attrs["false_positive"] = True
        return self._emit("fd.suspect", observer, ts, **attrs).id

    def detector_alive(self, observer: int, subject: int, ts: float) -> int:
        """``observer`` heard from a suspected ``subject`` again."""
        self.timeseries.incr("fd.unsuspects", ts)
        return self._emit("fd.alive", observer, ts, subject=subject).id

    # ------------------------------------------------------------------
    # simulation-kernel observer (installed on Simulator.observer)
    # ------------------------------------------------------------------
    def on_sim_event(self, ts: float, pending: int) -> None:
        """Per-kernel-event sample: throughput and queue depth series."""
        self.timeseries.incr("sim.events", ts)
        self.timeseries.observe("sim.queue", ts, pending)

    def __repr__(self) -> str:
        return (f"<Tracer events={len(self.events)} "
                f"in_flight={self._in_flight} series={len(self.timeseries)}>")
