"""Time-series sampling against the simulated clock.

The paper reports only end-of-run aggregates; protocol *dynamics* —
when activation delays spike, how the in-flight population breathes
around a partition heal, how fast a site's log grows — need quantities
bucketed against simulated time.  :class:`TimeSeries` keeps one
:class:`~repro.metrics.stats.RunningStat` per (series, bucket), so every
bucket carries count/mean/min/max/percentiles at O(1) memory per bucket.

Series are written by the tracer's instrumentation hooks; nothing here
touches the simulation RNGs, so sampling never perturbs a run.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..metrics.stats import RunningStat

__all__ = ["TimeSeries", "DEFAULT_BUCKET_MS"]

#: default bucket width; ~20 points across the paper's 2 s mean op gap
DEFAULT_BUCKET_MS = 100.0


class TimeSeries:
    """Named series of per-bucket statistics over simulated time (ms)."""

    def __init__(self, bucket_ms: float = DEFAULT_BUCKET_MS) -> None:
        if bucket_ms <= 0:
            raise ValueError("bucket width must be positive")
        self.bucket_ms = float(bucket_ms)
        # series name -> bucket index -> stat of samples in that bucket
        self._series: dict[str, dict[int, RunningStat]] = {}

    def _bucket(self, name: str, t: float) -> RunningStat:
        buckets = self._series.setdefault(name, {})
        idx = int(t // self.bucket_ms)
        stat = buckets.get(idx)
        if stat is None:
            stat = buckets[idx] = RunningStat()
        return stat

    # ------------------------------------------------------------------
    def observe(self, name: str, t: float, value: float) -> None:
        """Record one sample of a gauge-like quantity at time ``t``."""
        self._bucket(name, t).add(value)

    def incr(self, name: str, t: float, n: float = 1.0) -> None:
        """Count one occurrence of an event-like quantity at time ``t``.

        The bucket's ``total`` is the per-bucket event count, so the
        series doubles as a rate (events per ``bucket_ms``).
        """
        self._bucket(name, t).add(n)

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._series)

    def series(self, name: str) -> list[tuple[float, RunningStat]]:
        """(bucket start time, stat) pairs in time order."""
        buckets = self._series.get(name, {})
        return [(idx * self.bucket_ms, buckets[idx]) for idx in sorted(buckets)]

    def points(self, name: str, field: str = "mean") -> list[tuple[float, float]]:
        """(bucket start, value) pairs, with ``field`` one of
        mean/total/count/maximum/minimum — chart-ready."""
        return [(t, getattr(stat, field)) for t, stat in self.series(name)]

    def rate(self, name: str) -> list[tuple[float, float]]:
        """(bucket start, events per ms) pairs for a counter series."""
        return [(t, stat.total / self.bucket_ms) for t, stat in self.series(name)]

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._series)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-ready snapshot: {name: [{t, count, mean, min, max, total}]}."""
        out: dict = {"bucket_ms": self.bucket_ms, "series": {}}
        for name in self.names():
            out["series"][name] = [
                {
                    "t": t,
                    "count": stat.count,
                    "mean": stat.mean,
                    "min": stat.minimum,
                    "max": stat.maximum,
                    "total": stat.total,
                }
                for t, stat in self.series(name)
            ]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TimeSeries":
        """Rebuild (approximately: per-bucket moments only) from a dump."""
        ts = cls(bucket_ms=data.get("bucket_ms", DEFAULT_BUCKET_MS))
        for name, rows in data.get("series", {}).items():
            buckets = ts._series.setdefault(name, {})
            for row in rows:
                stat = RunningStat(
                    count=int(row["count"]),
                    mean=float(row["mean"]),
                    minimum=float(row["min"]),
                    maximum=float(row["max"]),
                    total=float(row["total"]),
                )
                buckets[int(row["t"] // ts.bucket_ms)] = stat
        return ts

    def __repr__(self) -> str:
        return f"<TimeSeries bucket={self.bucket_ms}ms series={self.names()}>"
