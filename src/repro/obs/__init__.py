"""Observability: causal tracing, time-series telemetry, trace analysis.

The subsystem has four parts (see ``docs/observability.md``):

* :class:`Tracer` — structured, causally-linked span events for every
  operation, message hop, and buffered-update activation;
* :class:`TimeSeries` — simulated-clock bucketed samplers for dynamic
  quantities (in-flight messages, log sizes, visibility lag, ...);
* sinks — in-memory, JSONL (:func:`write_jsonl` / :func:`load_trace`),
  and Chrome ``trace_event`` JSON (:func:`write_chrome`) loadable in
  Perfetto with one track per site;
* analysis — :func:`summarize_trace`, :func:`slowest_activations` and
  causal-chain reconstruction, :func:`diff_traces`;
* metrics — :class:`MetricsRegistry` (labeled counters/gauges/
  histograms), the :class:`MetadataLedger` per-component byte
  accounting, Prometheus/JSONL/console exporters, and the
  :class:`HeartbeatReporter` live progress lines.

Everything is opt-in: with ``tracer=None`` / ``registry=None`` (the
defaults everywhere) the instrumented subsystems run byte-identical to
the un-instrumented code.
"""

from .analyze import (
    MessageChain,
    TraceIndex,
    activation_wait_stats,
    causal_chain,
    diff_traces,
    format_chain,
    slowest_activations,
    summarize_trace,
    visibility_stats,
)
from .export import (
    HeartbeatReporter,
    console_summary,
    diff_snapshots,
    ledger_table,
    registry_snapshot,
    to_prometheus,
    write_prometheus,
    write_snapshot_json,
)
from .ledger import MetadataLedger, decompose_message
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .sinks import load_trace, to_chrome, write_chrome, write_jsonl
from .timeseries import TimeSeries
from .tracer import Trace, TraceEvent, Tracer

__all__ = [
    "Tracer",
    "Trace",
    "TraceEvent",
    "TimeSeries",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetadataLedger",
    "decompose_message",
    "HeartbeatReporter",
    "to_prometheus",
    "write_prometheus",
    "registry_snapshot",
    "write_snapshot_json",
    "console_summary",
    "ledger_table",
    "diff_snapshots",
    "write_jsonl",
    "load_trace",
    "to_chrome",
    "write_chrome",
    "TraceIndex",
    "MessageChain",
    "summarize_trace",
    "visibility_stats",
    "activation_wait_stats",
    "slowest_activations",
    "causal_chain",
    "format_chain",
    "diff_traces",
]
