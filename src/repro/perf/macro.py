"""Macro benchmarks: whole seeded simulation runs, one per protocol.

Each config is a fixed :class:`~repro.experiments.runner.SimulationConfig`
(seeded workload, seeded latency), so the simulation itself is
byte-deterministic — only wall time varies between machines and between
refactors.  The reference run is ``opt_track_n10`` (the acceptance
criterion's "10-site Opt-Track macro run"); the other three protocols
ride along as the per-protocol breakdown.

Reported per run:

* ``events_per_sec``   — kernel events processed / wall second (headline);
* ``deliveries_per_sec`` — protocol messages delivered / wall second;
* ``peak_pending_sms`` — high-water mark of buffered (not-yet-activated)
  SMs across all sites (0 on builds that predate the tracking hook);
* ``sim_events`` / ``messages`` / ``wall_s`` raw ingredients.
"""

from __future__ import annotations

import time
from dataclasses import replace

from ..experiments.runner import SimulationConfig, run_simulation

__all__ = ["MACRO_CONFIGS", "run_macro"]

#: label -> full-mode config.  ops_per_process is scaled down in --quick.
MACRO_CONFIGS: dict[str, SimulationConfig] = {
    "opt_track_n10": SimulationConfig(
        protocol="opt-track", n_sites=10, n_vars=100,
        write_rate=0.5, ops_per_process=400, seed=1,
    ),
    "full_track_n10": SimulationConfig(
        protocol="full-track", n_sites=10, n_vars=100,
        write_rate=0.5, ops_per_process=400, seed=1,
    ),
    "opt_track_crp_n10": SimulationConfig(
        protocol="opt-track-crp", n_sites=10, n_vars=100,
        write_rate=0.5, ops_per_process=400, seed=1,
    ),
    "optp_n10": SimulationConfig(
        protocol="optp", n_sites=10, n_vars=100,
        write_rate=0.5, ops_per_process=400, seed=1,
    ),
}

#: quick mode shrinks every run to this many ops per process
QUICK_OPS = 150


def _run_one(config: SimulationConfig, repeats: int) -> dict:
    best_wall = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()  # simcheck: ignore[SIM001] -- benchmark harness
        result = run_simulation(config)
        wall = time.perf_counter() - t0  # simcheck: ignore[SIM001] -- benchmark harness
        if wall < best_wall:
            best_wall = wall
    assert result is not None
    events = result.total_sim_events
    messages = result.collector.lifetime_message_count
    # high-water mark of buffered SMs; 0 on pre-refactor builds that do
    # not track it (the baseline entry is recorded against such a build)
    peak = max(
        (int(getattr(p, "pending_sm_peak", 0)) for p in result.protocols),
        default=0,
    )
    return {
        "protocol": config.protocol,
        "n_sites": config.n_sites,
        "ops_per_process": config.ops_per_process,
        "seed": config.seed,
        "sim_events": events,
        "messages": messages,
        "wall_s": round(best_wall, 6),
        "events_per_sec": round(events / best_wall, 1) if best_wall > 0 else 0.0,
        "deliveries_per_sec": (
            round(messages / best_wall, 1) if best_wall > 0 else 0.0
        ),
        "peak_pending_sms": peak,
    }


def run_macro(*, quick: bool = False, repeats: int = 3) -> dict:
    """Run every macro config; best-of-``repeats`` wall time per run.

    Best-of, not mean-of: scheduler noise only adds time, and three
    repeats per config keeps the estimate usable on contended runners.

    Returns a JSON-ready dict keyed by config label, plus headline
    aliases for the reference Opt-Track run.
    """
    if quick:
        repeats = 1
    runs: dict[str, dict] = {}
    for label, config in MACRO_CONFIGS.items():
        if quick:
            config = replace(config, ops_per_process=QUICK_OPS)
        runs[label] = _run_one(config, repeats)
    ref = runs["opt_track_n10"]
    return {
        "reference": "opt_track_n10",
        "events_per_sec": ref["events_per_sec"],
        "deliveries_per_sec": ref["deliveries_per_sec"],
        "peak_pending_sms": ref["peak_pending_sms"],
        "runs": runs,
    }
