"""``python -m repro.perf`` — run, record, and gate the hot-path benches.

Modes (composable):

* default            — run the suite and print a table;
* ``--record LABEL`` — also append the measurement as a new entry in
  ``--file`` (default ``BENCH_hotpath.json``), preserving history;
* ``--compare PATH`` — after running, compare against the *last* entry
  in ``PATH`` that has this mode's numbers and exit 1 if any headline
  metric regressed by more than ``--threshold`` (default 25%);
* ``--overhead``     — run the metrics-registry overhead bench instead
  (enabled-vs-disabled A/B of the reference macro run) and exit 1 if the
  enabled side costs more than ``--overhead-threshold`` (default 5%);
  ``--record`` then appends to ``--overhead-file``
  (default ``BENCH_overhead.json``).

The JSON file is append-only history: ``entries[0]`` is the pre-refactor
baseline, later entries are labelled measurements, so speedups versus
the original baseline stay computable forever.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .macro import run_macro
from .micro import run_micro
from .overhead import DEFAULT_OVERHEAD_THRESHOLD, run_overhead

__all__ = ["main", "load_bench_file", "compare_results"]

SCHEMA_VERSION = 1
DEFAULT_FILE = "BENCH_hotpath.json"
DEFAULT_THRESHOLD = 0.25
DEFAULT_OVERHEAD_FILE = "BENCH_overhead.json"

#: (section, key) pairs gated by --compare.  Micro structure benches are
#: informational; the gate watches the headline throughput numbers so a
#: noisy sub-bench cannot flake CI.
HEADLINE_METRICS: tuple[tuple[str, str], ...] = (
    ("micro", "events_per_sec"),
    ("macro", "events_per_sec"),
    ("macro", "deliveries_per_sec"),
)


def load_bench_file(path: Path) -> dict:
    """Load and schema-check a BENCH_hotpath.json file."""
    data = json.loads(path.read_text())
    if data.get("schema") != SCHEMA_VERSION or data.get("bench") != "hotpath":
        raise ValueError(f"{path}: not a schema-{SCHEMA_VERSION} hotpath bench file")
    if not isinstance(data.get("entries"), list):
        raise ValueError(f"{path}: missing entries list")
    return data


def _empty_file() -> dict:
    return {"schema": SCHEMA_VERSION, "bench": "hotpath", "entries": []}


def compare_results(
    current: dict, baseline_modes: dict, mode: str, threshold: float
) -> list[str]:
    """Return regression messages (empty = pass) for one mode's results.

    ``current`` is ``{"micro": ..., "macro": ...}`` from a fresh run;
    ``baseline_modes`` is an entry's ``modes`` dict from the bench file.
    """
    base = baseline_modes.get(mode)
    if base is None:
        return [f"baseline entry has no {mode!r} mode results"]
    failures: list[str] = []
    for section, key in HEADLINE_METRICS:
        base_val = base.get(section, {}).get(key)
        cur_val = current.get(section, {}).get(key)
        if not base_val or cur_val is None:
            continue  # metric absent in baseline: nothing to gate against
        ratio = cur_val / base_val
        if ratio < 1.0 - threshold:
            failures.append(
                f"{section}.{key}: {cur_val:,.0f} vs baseline {base_val:,.0f} "
                f"({ratio:.2f}x, allowed >= {1.0 - threshold:.2f}x)"
            )
    return failures


def _speedups(entries: list[dict], current: dict, mode: str) -> dict[str, str]:
    """Current / first-entry ratio per headline metric (vs the baseline)."""
    if not entries:
        return {}
    first = entries[0].get("modes", {}).get(mode)
    if not first:
        return {}
    out: dict[str, str] = {}
    for section, key in HEADLINE_METRICS:
        base_val = first.get(section, {}).get(key)
        cur_val = current.get(section, {}).get(key)
        if base_val and cur_val is not None:
            out[f"{section}.{key}"] = f"{cur_val / base_val:.2f}x"
    return out


def _print_report(current: dict, mode: str) -> None:
    micro = current.get("micro")
    if micro:
        print(f"micro ({mode}): headline {micro['events_per_sec']:,.0f} events/sec")
        for name, b in micro["benches"].items():
            print(f"  {name:<24} {b['ops_per_sec']:>14,.0f} ops/s"
                  f"  ({b['ops']} ops in {b['wall_s']:.3f}s)")
    macro = current.get("macro")
    if macro:
        print(f"macro ({mode}): reference {macro['reference']}"
              f" {macro['events_per_sec']:,.0f} events/sec,"
              f" {macro['deliveries_per_sec']:,.0f} deliveries/sec,"
              f" peak buffered SMs {macro['peak_pending_sms']}")
        for label, r in macro["runs"].items():
            print(f"  {label:<20} {r['events_per_sec']:>12,.0f} ev/s"
                  f" {r['deliveries_per_sec']:>12,.0f} msg/s"
                  f"  peak SMs {r['peak_pending_sms']:>4}"
                  f"  ({r['sim_events']} events in {r['wall_s']:.3f}s)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Hot-path benchmark runner and regression gate.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small iteration counts (CI smoke; ~seconds)")
    parser.add_argument("--micro-only", action="store_true",
                        help="skip the macro simulation runs")
    parser.add_argument("--macro-only", action="store_true",
                        help="skip the micro structure benches")
    parser.add_argument("--record", metavar="LABEL",
                        help="append this run as a labelled entry in --file")
    parser.add_argument("--file", default=DEFAULT_FILE,
                        help=f"bench history file (default {DEFAULT_FILE})")
    parser.add_argument("--compare", metavar="PATH",
                        help="fail if headline metrics regress vs the last "
                             "entry in PATH")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional regression for --compare "
                             f"(default {DEFAULT_THRESHOLD})")
    parser.add_argument("--json", metavar="PATH", dest="json_out",
                        help="also dump this run's raw results to PATH")
    parser.add_argument("--overhead", action="store_true",
                        help="run the metrics-registry overhead A/B bench "
                             "instead of the micro/macro suite")
    parser.add_argument("--overhead-file", default=DEFAULT_OVERHEAD_FILE,
                        help="overhead bench history file for --record "
                             f"(default {DEFAULT_OVERHEAD_FILE})")
    parser.add_argument("--overhead-threshold", type=float,
                        default=DEFAULT_OVERHEAD_THRESHOLD,
                        help="allowed fractional registry overhead "
                             f"(default {DEFAULT_OVERHEAD_THRESHOLD})")
    return parser


def _load_overhead_file(path: Path) -> dict:
    data = json.loads(path.read_text())
    if data.get("schema") != SCHEMA_VERSION or data.get("bench") != "overhead":
        raise ValueError(
            f"{path}: not a schema-{SCHEMA_VERSION} overhead bench file")
    if not isinstance(data.get("entries"), list):
        raise ValueError(f"{path}: missing entries list")
    return data


def _cmd_overhead(args: argparse.Namespace, mode: str) -> int:
    """The --overhead mode: self-gating A/B, optional history append."""
    result = run_overhead(quick=args.quick,
                          threshold=args.overhead_threshold)
    escalated = (" [escalated from "
                 f"{result['first_ratio']:.3f}x]" if result.get("escalated")
                 else "")
    print(f"overhead ({mode}): {result['reference']}"
          f" off {result['wall_off_s']:.3f}s vs on {result['wall_on_s']:.3f}s"
          f" -> ratio {result['overhead_ratio']:.3f}x"
          f" (gate <= {1.0 + args.overhead_threshold:.2f}x){escalated}")

    if args.json_out:
        Path(args.json_out).write_text(json.dumps(result, indent=2) + "\n")

    if args.record:
        path = Path(args.overhead_file)
        if path.exists():
            data = _load_overhead_file(path)
        else:
            data = {"schema": SCHEMA_VERSION, "bench": "overhead",
                    "entries": []}
        entries = data["entries"]
        entry = next((e for e in entries if e.get("label") == args.record),
                     None)
        if entry is None:
            entry = {"label": args.record, "modes": {}}
            entries.append(entry)
        entry["modes"][mode] = result
        path.write_text(json.dumps(data, indent=2) + "\n")
        print(f"recorded entry {args.record!r} ({mode}) in {path}")

    if result["overhead_ratio"] > 1.0 + args.overhead_threshold:
        print(f"METRICS OVERHEAD REGRESSION: enabled registry costs "
              f"{(result['overhead_ratio'] - 1.0):.1%} "
              f"(allowed <= {args.overhead_threshold:.0%})")
        return 1
    print(f"overhead gate OK (threshold {args.overhead_threshold:.0%})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.micro_only and args.macro_only:
        print("--micro-only and --macro-only are mutually exclusive",
              file=sys.stderr)
        return 2

    mode = "quick" if args.quick else "full"
    if args.overhead:
        return _cmd_overhead(args, mode)
    current: dict = {}
    if not args.macro_only:
        current["micro"] = run_micro(quick=args.quick)
    if not args.micro_only:
        current["macro"] = run_macro(quick=args.quick)

    _print_report(current, mode)

    if args.json_out:
        Path(args.json_out).write_text(json.dumps(current, indent=2) + "\n")

    exit_code = 0

    if args.record:
        path = Path(args.file)
        data = load_bench_file(path) if path.exists() else _empty_file()
        entries = data["entries"]
        # one entry per label; re-recording a label refreshes that
        # entry's mode results instead of duplicating history
        entry = next((e for e in entries if e.get("label") == args.record), None)
        if entry is None:
            entry = {"label": args.record, "modes": {}}
            entries.append(entry)
        entry["modes"][mode] = current
        speed = _speedups(entries, current, mode)
        if speed and entry is not entries[0]:
            entry["modes"][mode]["speedup_vs_baseline"] = speed
        path.write_text(json.dumps(data, indent=2) + "\n")
        print(f"recorded entry {args.record!r} ({mode}) in {path}")
        if speed and entry is not entries[0]:
            print("speedup vs baseline:",
                  ", ".join(f"{k} {v}" for k, v in sorted(speed.items())))

    if args.compare:
        path = Path(args.compare)
        try:
            data = load_bench_file(path)
        except (OSError, ValueError) as exc:
            print(f"--compare: {exc}", file=sys.stderr)
            return 2
        candidates = [e for e in data["entries"] if mode in e.get("modes", {})]
        if not candidates:
            print(f"--compare: {path} has no entry with {mode!r} results",
                  file=sys.stderr)
            return 2
        last = candidates[-1]
        failures = compare_results(current, last["modes"], mode, args.threshold)
        if failures:
            print(f"PERF REGRESSION vs entry {last['label']!r} in {path}:")
            for f in failures:
                print(f"  {f}")
            exit_code = 1
        else:
            print(f"perf gate OK vs entry {last['label']!r} "
                  f"(threshold {args.threshold:.0%})")

    return exit_code
