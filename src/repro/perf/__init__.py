"""Performance regression harness for the simulator's hot paths.

The paper's headline claim is about *metadata overhead*; this package
guards the reproduction's own overhead — the wall-clock cost of the
event kernel, the activation machinery, and the Opt-Track log — so that
the hot-path trajectory stays visible PR over PR.

Two benchmark tiers:

* **micro** (:mod:`repro.perf.micro`) — timing loops over the hot data
  structures (the same reference configuration as
  ``benchmarks/bench_micro_structures.py``: n = 40, 80-record logs) plus
  the event kernel's raw dispatch throughput;
* **macro** (:mod:`repro.perf.macro`) — whole seeded simulation runs per
  protocol (the 10-site Opt-Track run is the reference), reporting
  events/sec, deliveries/sec, and peak buffered SMs.

Results accumulate in ``BENCH_hotpath.json`` at the repo root: every
entry is one labelled measurement (both ``full`` and ``quick`` modes),
so future PRs can ``--compare`` a fresh run against the committed
trajectory and fail CI on a regression::

    python -m repro.perf                         # run + print the full suite
    python -m repro.perf --record "my change"    # append to BENCH_hotpath.json
    python -m repro.perf --quick --compare BENCH_hotpath.json   # CI gate

Wall-clock reads live here by design — this package *is* the benchmark
harness; simulation code must keep using ``Simulator.now`` (SIM001
exempts ``repro/perf/`` the same way it exempts ``benchmarks/``).
"""

from __future__ import annotations

from .cli import main
from .macro import MACRO_CONFIGS, run_macro
from .micro import MICRO_BENCHES, run_micro

__all__ = ["main", "run_micro", "run_macro", "MICRO_BENCHES", "MACRO_CONFIGS"]
