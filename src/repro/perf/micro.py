"""Micro benchmarks of the hot data structures and the event kernel.

Each bench times a tight loop over one operation the profiler identified
as hot (docs/architecture.md, "Hot path & performance model").  The
reference configuration matches ``benchmarks/bench_micro_structures.py``:
a 40-site system and 80-record Opt-Track logs.

The headline number is ``events_per_sec`` — the event kernel's dispatch
throughput (schedule + pop + callback for no-op events), because every
other cost in a simulation is paid *per kernel event*.  The structure
benches ride along as per-op throughput so a regression can be localized
without a profiler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.activation import full_track_sm_ready, opt_track_entries_ready
from ..core.clocks import MatrixClock, VectorClock
from ..core.log import OptTrackLog, PiggybackEntry
from ..core.messages import OptTrackSM
from ..memory.store import WriteId
from ..metrics.sizing import DEFAULT_SIZE_MODEL
from ..sim.engine import Simulator

__all__ = ["MICRO_BENCHES", "run_micro", "MicroResult"]

#: paper-scale system size (matches bench_micro_structures)
N = 40


@dataclass(frozen=True, slots=True)
class MicroResult:
    """One micro bench's outcome."""

    name: str
    ops: int
    wall_s: float

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.wall_s if self.wall_s > 0 else 0.0


def _build_log(n_entries: int = 80, n_sites: int = N, seed: int = 0) -> OptTrackLog:
    rng = np.random.default_rng(seed)
    log = OptTrackLog()
    for k in range(n_entries):
        writer = int(rng.integers(0, n_sites))
        dests = sorted(
            map(int, rng.choice(n_sites, size=rng.integers(0, 4), replace=False))
        )
        log.insert(writer, k + 1, dests)
    return log


# ----------------------------------------------------------------------
# bench bodies: each takes an iteration count and returns ops executed
# ----------------------------------------------------------------------
def _bench_engine_dispatch(iters: int) -> int:
    """Kernel schedule + pop + no-op callback — the per-event floor."""
    sim = Simulator()

    def noop() -> None:
        return None

    for i in range(iters):
        sim.schedule(float(i % 97), noop)
    sim.run()
    return iters


def _bench_engine_cancel_churn(iters: int) -> int:
    """Schedule/cancel churn (retransmit-timer style tombstone load)."""
    sim = Simulator()

    def noop() -> None:
        return None

    survivors = 0
    for i in range(iters):
        ev = sim.schedule(float(i % 53), noop)
        if i % 8:  # 7 of 8 events are cancelled before firing
            ev.cancel()
        else:
            survivors += 1
    sim.run()
    return iters


def _bench_piggyback_views(iters: int) -> int:
    """One write's per-destination piggyback views (p = 12 at n = 40)."""
    log = _build_log()
    dests = frozenset(range(0, 12))
    for _ in range(iters):
        log.piggyback_views(dests)
    return iters


def _bench_log_merge(iters: int) -> int:
    """Read-time MERGE of a typical piggybacked log into a fresh log."""
    incoming = tuple(
        PiggybackEntry(int(j % N), int(100 + j), frozenset({int(j % 7)}))
        for j in range(40)
    )
    applied = np.zeros(N, dtype=np.int64)
    for _ in range(iters):
        log = _build_log()
        log.merge(incoming, self_site=3, applied=applied)
    return iters


def _bench_activation_opt_track(iters: int) -> int:
    """A_OPT over a 40-record piggybacked log (the per-delivery check)."""
    entries = [
        PiggybackEntry(j % N, j + 1, frozenset({j % 5, (j + 1) % 5}))
        for j in range(40)
    ]
    applied = np.full(N, 1000, dtype=np.int64)
    for _ in range(iters):
        opt_track_entries_ready(entries, 3, applied)
    return iters


def _bench_activation_full_track(iters: int) -> int:
    """A_OPT over an n = 40 matrix column."""
    m = MatrixClock(N)
    m.increment(0, range(N))
    applied = np.ones(N, dtype=np.int64)
    for _ in range(iters):
        full_track_sm_ready(m, 0, 3, applied)
    return iters


def _bench_matrix_merge(iters: int) -> int:
    rng = np.random.default_rng(0)
    a = MatrixClock(N, rng.integers(0, 100, (N, N)))
    b = MatrixClock(N, rng.integers(0, 100, (N, N)))
    for _ in range(iters):
        a.merge(b)
    return iters


def _bench_vector_merge(iters: int) -> int:
    rng = np.random.default_rng(0)
    a = VectorClock(N, rng.integers(0, 100, N))
    b = VectorClock(N, rng.integers(0, 100, N))
    for _ in range(iters):
        a.merge(b)
    return iters


def _bench_message_sizing(iters: int) -> int:
    """Per-send metadata pricing of an 80-record Opt-Track SM."""
    log = tuple(_build_log().entries())
    sm = OptTrackSM(var=0, value=1, write_id=WriteId(0, 1), log=log)
    for _ in range(iters):
        sm.metadata_size(DEFAULT_SIZE_MODEL)
    return iters


def _bench_matrix_snapshot(iters: int) -> int:
    """Per-write matrix snapshot (Full-Track's dominant allocation)."""
    m = MatrixClock(N)
    m.increment(0, range(N))
    for _ in range(iters):
        m.copy()
    return iters


#: name -> (bench body, full-mode iterations, quick-mode iterations)
MICRO_BENCHES: dict[str, tuple[Callable[[int], int], int, int]] = {
    "engine_dispatch": (_bench_engine_dispatch, 120_000, 20_000),
    "engine_cancel_churn": (_bench_engine_cancel_churn, 120_000, 20_000),
    "piggyback_views": (_bench_piggyback_views, 2_000, 300),
    "log_merge": (_bench_log_merge, 500, 80),
    "activation_opt_track": (_bench_activation_opt_track, 20_000, 3_000),
    "activation_full_track": (_bench_activation_full_track, 50_000, 8_000),
    "matrix_merge": (_bench_matrix_merge, 50_000, 8_000),
    "vector_merge": (_bench_vector_merge, 100_000, 15_000),
    "message_sizing": (_bench_message_sizing, 20_000, 3_000),
    "matrix_snapshot": (_bench_matrix_snapshot, 100_000, 15_000),
}


def run_micro(*, quick: bool = False, repeats: int = 5) -> dict:
    """Run the micro suite; best-of-``repeats`` wall time per bench.

    Best-of (not mean-of) because scheduler noise only ever *adds* time;
    five repeats keeps the estimate stable on contended CI runners.

    Returns a JSON-ready dict: per-bench ``{ops, wall_s, ops_per_sec}``
    plus the headline ``events_per_sec`` (the kernel dispatch bench).
    """
    if quick:
        repeats = min(repeats, 2)
    benches: dict[str, dict] = {}
    for name, (body, full_iters, quick_iters) in MICRO_BENCHES.items():
        iters = quick_iters if quick else full_iters
        best = float("inf")
        ops = iters
        for _ in range(repeats):
            t0 = time.perf_counter()  # simcheck: ignore[SIM001] -- benchmark harness
            ops = body(iters)
            wall = time.perf_counter() - t0  # simcheck: ignore[SIM001] -- benchmark harness
            if wall < best:
                best = wall
        benches[name] = {
            "ops": ops,
            "wall_s": round(best, 6),
            "ops_per_sec": round(ops / best, 1) if best > 0 else 0.0,
        }
    return {
        "reference": "bench_micro_structures",
        "events_per_sec": benches["engine_dispatch"]["ops_per_sec"],
        "benches": benches,
    }
