"""Registry-overhead bench: metrics-on vs metrics-off reference run.

The observability layer's contract has two halves: with
``registry=None`` the instrumented paths are *byte-identical* to the
seed (covered by equivalence tests), and with a live registry the cost
must stay small.  This bench measures the second half: the reference
macro config (``opt_track_n10``) runs with and without a full
:class:`~repro.obs.metrics.MetricsRegistry` — ledger, kernel batch hook,
pre-bound protocol instruments, network counters — and reports the
wall-time ratio, gated at :data:`DEFAULT_OVERHEAD_THRESHOLD`.

Each repeat times one *pair* of runs back-to-back (alternating which
side goes first to cancel position effects) and the gate reads the
**ratio of the two sides' trimmed means** (each side's samples sorted,
one dropped from each end).  A best-of-each-side quotient — the macro
bench's estimator — is wrong for a ratio: the two minima are
independent draws, so one lucky reference run inflates the quotient by
the full per-run noise.  Interleaved pairs tax both sides equally under
machine drift, and trimming discards the outlier runs a contended
container produces while still averaging the rest.

Unlike the macro bench, ``quick`` mode keeps the *full* reference
workload and only trims the repeat count: the ratio is a quotient of
two wall times, and shrinking the run shrinks the per-event baseline
(smaller heap, shorter opt-track logs) while the per-message instrument
cost stays constant — a 100-op run reports roughly 4x the overhead of
the 400-op reference for the same instruments, with far worse noise.

The timed region runs with the garbage collector paused (collected
clean before, re-enabled after): the registry's surviving accounting
structures otherwise shift *when* a full collection lands, and a gen-2
pass costing ~10ms against a ~400ms run would dominate the ratio with
scheduling luck rather than instrumentation cost.  The clock is CPU
time, not wall time (see ``_timed_run``), for the same reason: the gate
measures the per-event cost the instruments add, not the machine's
mood during the run.
"""

from __future__ import annotations

import gc
import time

from ..experiments.runner import run_simulation
from ..obs.metrics import MetricsRegistry
from .macro import MACRO_CONFIGS

__all__ = ["DEFAULT_OVERHEAD_THRESHOLD", "run_overhead"]

#: allowed fractional wall-time overhead of an enabled registry (5%)
DEFAULT_OVERHEAD_THRESHOLD = 0.05

#: the acceptance criterion's reference run
REFERENCE_CONFIG = "opt_track_n10"


def _trimmed_mean(samples: list[float]) -> float:
    """Mean with the smallest and largest sample dropped (when n >= 3)."""
    ordered = sorted(samples)
    if len(ordered) >= 3:
        ordered = ordered[1:-1]
    return sum(ordered) / len(ordered)


def _timed_run(config, registry=None) -> float:
    """One timed run with the collector held off the clock.

    Times CPU (``process_time``), not wall: the run is single-threaded
    and compute-bound, so the two agree on an idle machine, but on a
    shared runner a scheduler preemption landing inside one side's run
    charges it a wall-time slice it never executed.
    """
    gc.collect()
    gc.disable()
    try:
        t0 = time.process_time()  # simcheck: ignore[SIM001] -- benchmark harness
        run_simulation(config, registry=registry)
        return time.process_time() - t0  # simcheck: ignore[SIM001] -- benchmark harness
    finally:
        gc.enable()


def _measure(config, repeats: int) -> tuple[float, float]:
    """``repeats`` interleaved off/on pairs -> trimmed-mean walls."""
    # one untimed pair: a fresh process's first runs carry import and
    # allocator cold-start that trimming alone doesn't reliably drop
    _timed_run(config)
    _timed_run(config, registry=MetricsRegistry())
    offs: list[float] = []
    ons: list[float] = []
    for pair in range(repeats):
        if pair % 2 == 0:
            offs.append(_timed_run(config))
            ons.append(_timed_run(config, registry=MetricsRegistry()))
        else:
            ons.append(_timed_run(config, registry=MetricsRegistry()))
            offs.append(_timed_run(config))
    return _trimmed_mean(offs), _trimmed_mean(ons)


def run_overhead(
    *,
    quick: bool = False,
    repeats: int = 5,
    threshold: float = DEFAULT_OVERHEAD_THRESHOLD,
) -> dict:
    """Measure registry-enabled vs registry-off wall time; JSON-ready.

    ``overhead_ratio`` is the ratio of the two sides' trimmed-mean wall
    times over ``repeats`` interleaved pairs — 1.0 means free, 1.05 is
    the default gate ceiling.  ``wall_off_s``/``wall_on_s`` report the
    trimmed means themselves.

    A reading above ``threshold`` triggers one escalation: the bench
    re-measures with doubled repeats and keeps the second reading
    (``escalated``/``first_ratio`` record that it happened).  A real
    regression reads high both times; a contention spike on a shared
    runner rarely survives two independent measurements, so the gate
    keeps its teeth without flapping on machine noise.

    ``quick`` lowers the repeat count but keeps the reference workload
    at full size (see the module docstring for why the ratio must be
    measured at reference scale).
    """
    config = MACRO_CONFIGS[REFERENCE_CONFIG]
    if quick:
        repeats = min(repeats, 5)
    wall_off, wall_on = _measure(config, repeats)
    ratio = wall_on / wall_off if wall_off > 0 else 1.0
    escalated = False
    first_ratio = ratio
    if ratio > 1.0 + threshold:
        escalated = True
        wall_off, wall_on = _measure(config, repeats * 2)
        ratio = wall_on / wall_off if wall_off > 0 else 1.0
    result = {
        "reference": REFERENCE_CONFIG,
        "protocol": config.protocol,
        "n_sites": config.n_sites,
        "ops_per_process": config.ops_per_process,
        "seed": config.seed,
        "repeats": repeats,
        "wall_off_s": round(wall_off, 6),
        "wall_on_s": round(wall_on, 6),
        "overhead_ratio": round(ratio, 4),
    }
    if escalated:
        result["escalated"] = True
        result["first_ratio"] = round(first_ratio, 4)
    return result
