"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands:

* ``run``        — one simulation, printing the metric summary;
* ``experiment`` — regenerate a paper table/figure (fig1..fig8, table2,
  table3, table4, eq2) at a chosen scale;
* ``analytic``   — print the closed-form cost models for given params;
* ``crossover``  — the eq. (2) partial-vs-full threshold table;
* ``reproduce``  — regenerate every exhibit into CSVs + a Markdown report;
* ``advise``     — replication recommendation for a workload profile;
* ``check``      — run a simulation with history recording and verify
  causal consistency;
* ``metrics``    — run with the metrics registry on (Prometheus/JSON
  exports + metadata-byte ledger), summarize a dump, or diff two dumps;
* ``soak``       — chaos-soak matrix: sustained drops+spikes+partitions+
  flash crowds over the protocol matrix, with liveness invariants;
* ``list``       — protocols and experiments available.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis.model import (
    full_replication_message_count,
    full_track_total_size,
    opt_track_crp_total_size,
    opt_track_total_size,
    optp_total_size,
    partial_replication_message_count,
)
from .analysis.tradeoff import crossover_write_rate
from .core.base import protocol_names
from .experiments import paper
from .experiments.configs import EXPERIMENTS
from .experiments.report import format_kv, format_table, write_csv
from .experiments.runner import SimulationConfig, run_simulation
from .sim.faults import (
    ChannelFaults,
    CrashEvent,
    FaultPlan,
    OverloadEvent,
    Partition,
    seeded_churn,
)
from .sim.reliable import RetransmitPolicy
from .sim.network import (
    AdversarialLatency,
    ConstantLatency,
    LogNormalLatency,
    UniformLatency,
)
from .verify.causal_checker import check_causal_consistency

__all__ = ["main", "build_parser"]

_LATENCIES = {
    "uniform": UniformLatency,
    "constant": ConstantLatency,
    "lognormal": LogNormalLatency,
    "adversarial": AdversarialLatency,
}

_EXPERIMENT_FNS = {
    "fig1": lambda **kw: paper.fig1_rows(**kw),
    "fig2": lambda **kw: paper.partial_avg_size_rows(0.2, **kw),
    "fig3": lambda **kw: paper.partial_avg_size_rows(0.5, **kw),
    "fig4": lambda **kw: paper.partial_avg_size_rows(0.8, **kw),
    "table2": lambda **kw: paper.table2_rows(**kw),
    "fig5": lambda **kw: paper.fig5_rows(**kw),
    "fig6": lambda **kw: paper.full_avg_size_rows(0.2, **kw),
    "fig7": lambda **kw: paper.full_avg_size_rows(0.5, **kw),
    "fig8": lambda **kw: paper.full_avg_size_rows(0.8, **kw),
    "table3": lambda **kw: paper.table3_rows(**kw),
    "table4": lambda **kw: paper.table4_rows(**kw),
    "eq2": lambda **kw: paper.eq2_rows(**kw),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Causal consistency protocols for partially replicated "
                    "DSM (Hsu & Kshemkalyani 2016 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one simulation")
    run_p.add_argument("--protocol", default="opt-track", choices=protocol_names())
    run_p.add_argument("-n", "--sites", type=int, default=10)
    run_p.add_argument("-q", "--vars", type=int, default=100)
    run_p.add_argument("-p", "--replicas", type=int, default=None,
                       help="replication factor (default: protocol natural)")
    run_p.add_argument("-w", "--write-rate", type=float, default=0.5)
    run_p.add_argument("--ops", type=int, default=600,
                       help="operations per process (paper: 600)")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--latency", default="uniform", choices=sorted(_LATENCIES))
    run_p.add_argument("--check", action="store_true",
                       help="record history and verify causal consistency")
    run_p.add_argument("--metrics-dir", default=None, metavar="DIR",
                       help="enable the metrics registry and write "
                            "metrics.prom/.json/.jsonl into DIR")
    _add_fault_args(run_p)

    exp_p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp_p.add_argument("id", choices=sorted(_EXPERIMENT_FNS))
    exp_p.add_argument("--ops", type=int, default=150,
                       help="operations per process (paper scale: 600)")
    exp_p.add_argument("--seeds", type=int, default=1,
                       help="independent runs averaged per cell")
    exp_p.add_argument("--csv", metavar="PATH", default=None,
                       help="also write the rows to a CSV file")

    rep_p = sub.add_parser("reproduce",
                           help="regenerate all exhibits into an output dir")
    rep_p.add_argument("--outdir", default="results", metavar="DIR")
    rep_p.add_argument("--ops", type=int, default=600,
                       help="operations per process (paper scale: 600)")
    rep_p.add_argument("--seeds", type=int, default=1)
    rep_p.add_argument("--only", nargs="*", default=None, metavar="EXHIBIT",
                       help="restrict to specific exhibits (e.g. fig1 table4)")

    adv_p = sub.add_parser("advise", help="replication recommendation")
    adv_p.add_argument("-n", "--sites", type=int, required=True)
    adv_p.add_argument("-w", "--write-rate", type=float, required=True)
    adv_p.add_argument("--payload", type=float, default=0.0,
                       help="mean payload bytes per update")
    adv_p.add_argument("-p", "--replicas", type=int, default=None)

    ana_p = sub.add_parser("analytic", help="closed-form cost models")
    ana_p.add_argument("-n", "--sites", type=int, default=10)
    ana_p.add_argument("-p", "--replicas", type=int, default=None)
    ana_p.add_argument("-w", "--write-rate", type=float, default=0.5)
    ana_p.add_argument("--ops", type=int, default=600)

    cross_p = sub.add_parser("crossover", help="eq. (2) thresholds")
    cross_p.add_argument("--max-n", type=int, default=40)

    trace_p = sub.add_parser(
        "trace", help="record, summarize, or diff causal execution traces")
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    trace_run_p = trace_sub.add_parser(
        "run", help="run a traced simulation, exporting JSONL + Chrome traces")
    trace_run_p.add_argument("outdir", metavar="DIR")
    trace_run_p.add_argument("--protocol", default="opt-track",
                             choices=protocol_names())
    trace_run_p.add_argument("-n", "--sites", type=int, default=6)
    trace_run_p.add_argument("-w", "--write-rate", type=float, default=0.5)
    trace_run_p.add_argument("--ops", type=int, default=100)
    trace_run_p.add_argument("--seed", type=int, default=0)
    trace_run_p.add_argument("--latency", default="uniform",
                             choices=sorted(_LATENCIES))
    trace_run_p.add_argument("--top", type=int, default=3,
                             help="slowest activations to explain in the summary")
    _add_fault_args(trace_run_p)

    trace_sum_p = trace_sub.add_parser(
        "summarize", help="tail latencies + slowest causal chains of a trace")
    trace_sum_p.add_argument("trace", metavar="TRACE_JSONL",
                             help="trace file written by `repro trace run`")
    trace_sum_p.add_argument("--top", type=int, default=3,
                             help="slowest activations to explain")

    trace_diff_p = trace_sub.add_parser(
        "diff", help="compare event counts and tail latencies of two traces")
    trace_diff_p.add_argument("trace_a", metavar="TRACE_A")
    trace_diff_p.add_argument("trace_b", metavar="TRACE_B")

    verify_p = sub.add_parser("verify-trace",
                              help="re-check a saved history offline")
    verify_p.add_argument("outdir", metavar="DIR",
                          help="directory written by `repro trace`")

    check_p = sub.add_parser("check", help="simulate + verify causal consistency")
    check_p.add_argument("--protocol", default="opt-track", choices=protocol_names())
    check_p.add_argument("-n", "--sites", type=int, default=8)
    check_p.add_argument("-w", "--write-rate", type=float, default=0.5)
    check_p.add_argument("--ops", type=int, default=100)
    check_p.add_argument("--seed", type=int, default=0)
    check_p.add_argument("--latency", default="adversarial", choices=sorted(_LATENCIES))
    check_p.add_argument("--metrics-dir", default=None, metavar="DIR",
                         help="enable the metrics registry and write "
                              "metrics.prom/.json/.jsonl into DIR")
    static = check_p.add_argument_group(
        "static analysis",
        "run the whole-program analyzers instead of a simulation "
        "(delegates to `python -m repro.check`)")
    static.add_argument("--effects", action="store_true",
                        help="effect inference (EFF001..EFF003) + baseline")
    static.add_argument("--layers", action="store_true",
                        help="layer-contract check (LAY001..LAY003)")
    static.add_argument("--write-baseline", action="store_true",
                        help="regenerate EFFECTS_BASELINE.json")
    static.add_argument("--format", choices=("human", "json", "sarif"),
                        default="human", dest="static_format",
                        help="finding output format (default: human)")
    static.add_argument("--report", default=None, metavar="PATH",
                        dest="static_report",
                        help="write the JSON/SARIF report to PATH")
    _add_fault_args(check_p)

    met_p = sub.add_parser(
        "metrics", help="run with metrics on, summarize or diff metric dumps")
    met_sub = met_p.add_subparsers(dest="metrics_command", required=True)

    met_run_p = met_sub.add_parser(
        "run", help="run one simulation with the full metrics registry, "
                    "exporting Prometheus text + JSON snapshots")
    met_run_p.add_argument("outdir", metavar="DIR")
    met_run_p.add_argument("--protocol", default="opt-track",
                           choices=protocol_names())
    met_run_p.add_argument("-n", "--sites", type=int, default=6)
    met_run_p.add_argument("-q", "--vars", type=int, default=20)
    met_run_p.add_argument("-w", "--write-rate", type=float, default=0.5)
    met_run_p.add_argument("--ops", type=int, default=100)
    met_run_p.add_argument("--seed", type=int, default=0)
    met_run_p.add_argument("--latency", default="uniform",
                           choices=sorted(_LATENCIES))
    met_run_p.add_argument("--heartbeat-ms", type=float, default=1000.0,
                           metavar="MS",
                           help="live heartbeat period on stderr (0 = off)")
    _add_fault_args(met_run_p)

    met_sum_p = met_sub.add_parser(
        "summarize", help="render a metrics dump's metadata-byte ledger")
    met_sum_p.add_argument("metrics", metavar="METRICS_JSON",
                           help="metrics.json (or .jsonl) written by "
                                "`repro metrics run`")
    met_sum_p.add_argument("--window", default="measured",
                           choices=("measured", "lifetime"))

    met_diff_p = met_sub.add_parser(
        "diff", help="numeric per-series diff of two metrics dumps")
    met_diff_p.add_argument("metrics_a", metavar="METRICS_A")
    met_diff_p.add_argument("metrics_b", metavar="METRICS_B")

    soak_p = sub.add_parser(
        "soak",
        help="chaos-soak matrix: sustained faults + flash crowds over the "
             "protocol matrix, holding liveness invariants",
    )
    soak_p.add_argument("--protocols", default=None, metavar="P1,P2",
                        help="comma-separated protocol subset "
                             "(default: all four)")
    soak_p.add_argument("--seeds", default="1,2,3", metavar="S1,S2",
                        help="comma-separated seed list (default: 1,2,3)")
    soak_p.add_argument("-n", "--sites", type=int, default=5)
    soak_p.add_argument("--ops", type=int, default=40,
                        help="operations per process (short horizon)")
    soak_p.add_argument("--out", default=None, metavar="DIR",
                        help="write soak_report.json + per-run metrics "
                             "artifacts into DIR")
    soak_p.add_argument("--no-determinism", action="store_true",
                        help="skip the same-seed double-run check")
    soak_p.add_argument("--no-rto-compare", action="store_true",
                        help="skip the adaptive-vs-fixed RTO comparison")

    serve_p = sub.add_parser(
        "serve",
        help="boot a live TCP cluster: one OS process per site, HTTP "
             "GET/PUT per node (the service substrate)",
    )
    serve_p.add_argument("--topology", default=None, metavar="PATH",
                         help="existing topology JSON (overrides --nodes)")
    serve_p.add_argument("-n", "--nodes", type=int, default=3,
                         help="generate a local loopback topology of N sites")
    serve_p.add_argument("-p", "--protocol", default="opt-track")
    serve_p.add_argument("-q", "--variables", type=int, default=16)
    serve_p.add_argument("--replication-factor", type=int, default=None,
                         help="replicas per variable (default: paper's "
                              "30%% rule)")
    serve_p.add_argument("--placement", default="round-robin",
                         choices=["round-robin", "hash", "random"])
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument("--base-port", type=int, default=7400)
    serve_p.add_argument("--dir", default="live-cluster", metavar="DIR",
                         help="run directory: topology.json + per-node "
                              "histories and logs (default: ./live-cluster)")
    serve_p.add_argument("--duration", type=float, default=None, metavar="S",
                         help="exit after S seconds (CI); default: run until "
                              "interrupted")

    load_p = sub.add_parser(
        "loadgen",
        help="drive a live cluster with a seeded concurrent workload, "
             "then verify the merged history causally",
    )
    load_p.add_argument("--topology", required=True, metavar="PATH",
                        help="topology JSON of the target cluster "
                             "(serve writes DIR/topology.json)")
    load_p.add_argument("--ops", type=int, default=50,
                        help="operations per site (default 50)")
    load_p.add_argument("--seed", type=int, default=1)
    load_p.add_argument("--write-fraction", type=float, default=0.5)

    node_p = sub.add_parser("_node")  # internal: one live node process
    node_p.add_argument("--topology", required=True)
    node_p.add_argument("--site", type=int, required=True)

    sub.add_parser("list", help="list protocols and experiments")
    return parser


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    """Chaos-transport knobs shared by ``run`` and ``check``."""
    grp = parser.add_argument_group("fault injection")
    grp.add_argument("--drop-rate", type=float, default=0.0, metavar="P",
                     help="per-packet drop probability on every channel")
    grp.add_argument("--dup-rate", type=float, default=0.0, metavar="P",
                     help="per-packet duplication probability")
    grp.add_argument("--partition", default=None, metavar="START:HEAL:SITES",
                     help="cut SITES (comma-separated) off from the rest "
                          "between START and HEAL ms, e.g. 500:2000:0,1")
    grp.add_argument("--fault-seed", type=int, default=0,
                     help="seed of the dedicated fault RNG stream")
    grp.add_argument("--crash-plan", default=None,
                     metavar="AT:RECOVER:SITE[,AT:RECOVER:SITE...]",
                     help="crash SITE at AT ms and restore it at RECOVER ms "
                          "('-' = crash-stop, never recovers), e.g. "
                          "800:1600:2,1200:-:4")
    grp.add_argument("--checkpoint-interval", type=float, default=None,
                     metavar="MS",
                     help="durable checkpoint period (default: 250 ms when "
                          "a crash plan is given, off otherwise)")
    grp.add_argument("--churn-joins", type=int, default=0, metavar="N",
                     help="number of seeded site joins (elastic membership)")
    grp.add_argument("--churn-leaves", type=int, default=0, metavar="N",
                     help="number of seeded graceful site leaves")
    grp.add_argument("--churn-seed", type=int, default=0,
                     help="seed of the membership-churn schedule")
    grp.add_argument("--churn-window", default=None, metavar="START:END",
                     help="ms window churn events fall in (default 500:3000)")
    grp.add_argument("--auto-evict", type=float, default=None, metavar="MS",
                     help="evict a crash-stopped site MS after the failure "
                          "detector first suspects it")
    grp.add_argument("--overload-plan", action="append", default=None,
                     metavar="START:END:INTERVAL:SITES",
                     help="flash-crowd event: inject one extra write at each "
                          "of SITES (comma-separated) every INTERVAL ms "
                          "between START and END ms, e.g. 900:2600:25:0,2; "
                          "repeat the flag for multiple events")
    grp.add_argument("--send-window", type=int, default=None, metavar="N",
                     help="bound in-flight packets per channel to N "
                          "(flow control; excess queues in a send backlog)")
    rto = grp.add_mutually_exclusive_group()
    rto.add_argument("--adaptive-rto", dest="adaptive_rto",
                     action="store_true", default=None,
                     help="Jacobson/Karels per-channel RTT-estimated "
                          "retransmission timeout (the default)")
    rto.add_argument("--fixed-rto", dest="adaptive_rto", action="store_false",
                     help="fixed base-RTO retransmission policy (the "
                          "pre-adaptive behaviour)")
    grp.add_argument("--fault-plan-json", default=None, metavar="PATH",
                     help="load the complete fault plan from a JSON file "
                          "(overrides the individual chaos flags)")
    grp.add_argument("--dump-fault-plan", default=None, metavar="PATH",
                     help="write the effective fault plan as JSON and continue")


def _parse_partition(spec: str) -> Partition:
    try:
        start, heal, sites = spec.split(":")
        group = [int(s) for s in sites.split(",") if s]
        return Partition(group, float(start), float(heal))
    except (ValueError, TypeError) as exc:
        raise SystemExit(
            f"invalid --partition {spec!r} (want START:HEAL:SITES, "
            f"e.g. 500:2000:0,1): {exc}"
        )


def _parse_crash_plan(spec: str) -> tuple[CrashEvent, ...]:
    """``AT:RECOVER:SITE`` triples, comma-separated; RECOVER '-' = never."""
    events = []
    for part in spec.split(","):
        if not part:
            continue
        try:
            at, recover, site = part.split(":")
            if recover.strip() == "-":
                events.append(CrashEvent(int(site), float(at)))
            else:
                events.append(CrashEvent(int(site), float(at), float(recover)))
        except (ValueError, TypeError) as exc:
            raise SystemExit(
                f"invalid --crash-plan entry {part!r} (want AT:RECOVER:SITE, "
                f"e.g. 800:1600:2 or 1200:-:4): {exc}"
            )
    return tuple(events)


def _parse_overload(spec: str) -> OverloadEvent:
    try:
        start, end, interval, sites = spec.split(":")
        group = [int(s) for s in sites.split(",") if s]
        return OverloadEvent(group, float(start), float(end), float(interval))
    except (ValueError, TypeError) as exc:
        raise SystemExit(
            f"invalid --overload-plan {spec!r} (want START:END:INTERVAL:SITES,"
            f" e.g. 900:2600:25:0,2): {exc}"
        )


def _retransmit_from_args(args: argparse.Namespace) -> Optional[RetransmitPolicy]:
    """None unless a transport knob was set (keeps the default policy)."""
    send_window = getattr(args, "send_window", None)
    adaptive = getattr(args, "adaptive_rto", None)
    if send_window is None and adaptive is None:
        return None
    kwargs: dict = {}
    if send_window is not None:
        kwargs["send_window"] = send_window
    if adaptive is not None:
        kwargs["adaptive"] = adaptive
    try:
        return RetransmitPolicy(**kwargs)
    except ValueError as exc:
        raise SystemExit(f"invalid retransmit policy: {exc}")


def _parse_churn_window(spec: Optional[str]) -> tuple[float, float]:
    if spec is None:
        return (500.0, 3000.0)
    try:
        start, end = spec.split(":")
        return (float(start), float(end))
    except (ValueError, TypeError) as exc:
        raise SystemExit(
            f"invalid --churn-window {spec!r} (want START:END ms): {exc}"
        )


def _fault_plan_from_args(args: argparse.Namespace) -> Optional[FaultPlan]:
    """None unless some chaos knob was set (keeps the zero-overhead path)."""
    plan: Optional[FaultPlan]
    if args.fault_plan_json:
        from pathlib import Path

        try:
            plan = FaultPlan.from_json(Path(args.fault_plan_json).read_text())
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise SystemExit(f"cannot load --fault-plan-json: {exc}")
    else:
        partitions = (_parse_partition(args.partition),) if args.partition else ()
        crashes = _parse_crash_plan(args.crash_plan) if args.crash_plan else ()
        overloads = tuple(
            _parse_overload(spec) for spec in (args.overload_plan or ())
        )
        membership = ()
        if args.churn_joins or args.churn_leaves:
            try:
                membership = seeded_churn(
                    args.sites,
                    n_joins=args.churn_joins,
                    n_leaves=args.churn_leaves,
                    window_ms=_parse_churn_window(args.churn_window),
                    seed=args.churn_seed,
                    # a site cannot both crash and gracefully leave
                    avoid={c.site for c in crashes},
                )
            except ValueError as exc:
                raise SystemExit(f"invalid churn plan: {exc}")
        if not (args.drop_rate or args.dup_rate or partitions or crashes
                or membership or overloads):
            plan = None
        else:
            try:
                plan = FaultPlan.build(
                    default=ChannelFaults(drop_rate=args.drop_rate,
                                          dup_rate=args.dup_rate),
                    partitions=partitions,
                    crashes=crashes,
                    membership=membership,
                    overloads=overloads,
                )
            except ValueError as exc:
                raise SystemExit(f"invalid fault plan: {exc}")
    if args.dump_fault_plan:
        from pathlib import Path

        dumped = plan if plan is not None else FaultPlan.build()
        Path(args.dump_fault_plan).write_text(dumped.to_json(indent=2))
        print(f"fault plan written to {args.dump_fault_plan}")
    return plan


def _cmd_run(args: argparse.Namespace) -> int:
    cfg = SimulationConfig(
        protocol=args.protocol,
        n_sites=args.sites,
        n_vars=args.vars,
        replication_factor=args.replicas,
        write_rate=args.write_rate,
        ops_per_process=args.ops,
        seed=args.seed,
        latency=_LATENCIES[args.latency](),
        record_history=args.check,
        fault_plan=_fault_plan_from_args(args),
        fault_seed=args.fault_seed,
        retransmit=_retransmit_from_args(args),
        checkpoint_interval_ms=args.checkpoint_interval,
        auto_evict_after_ms=args.auto_evict,
    )
    registry = _registry_from_args(args)
    result = run_simulation(cfg, registry=registry)
    print(format_kv(result.summary()))
    _print_crash_stats(result)
    _print_membership_stats(result)
    if registry is not None:
        _write_metrics_outputs(registry, args.metrics_dir, cfg)
    if args.check:
        report = check_causal_consistency(result.history, result.placement)
        print(f"\ncausal consistency: {'OK' if report.ok else 'VIOLATED'} "
              f"({report.n_operations} operations, {report.n_applies} applies)")
        if not report.ok:
            for v in report.violations[:20]:
                print(f"  {v}")
            return 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    fn = _EXPERIMENT_FNS[args.id]
    rows = fn(ops_per_process=args.ops, seeds=tuple(range(args.seeds)))
    spec = EXPERIMENTS.get(args.id)
    title = f"{args.id}: {spec.title}" if spec else args.id
    print(format_table(rows, title=title))
    if args.csv:
        write_csv(rows, args.csv)
        print(f"\nwrote {len(rows)} rows to {args.csv}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .experiments.figures import reproduce_all

    report = reproduce_all(
        args.outdir,
        ops_per_process=args.ops,
        seeds=tuple(range(args.seeds)),
        exhibits=args.only,
        progress=lambda line: print(line, flush=True),
    )
    print(f"\nreport written to {report}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .analysis.advisor import WorkloadProfile, recommend_replication

    rec = recommend_replication(WorkloadProfile(
        n_sites=args.sites,
        write_rate=args.write_rate,
        payload_bytes=args.payload,
        replication_factor=args.replicas,
    ))
    print(f"recommendation: {rec.replication} replication, "
          f"protocol {rec.protocol}")
    print(f"  messages   : partial {rec.partial_messages:.0f} vs "
          f"full {rec.full_messages:.0f} (ratio {rec.message_ratio:.2f})")
    print(f"  transfer   : partial {rec.partial_transfer_bytes/1e6:.2f} MB vs "
          f"full {rec.full_transfer_bytes/1e6:.2f} MB")
    print(f"  storage    : {rec.storage_copies_partial} vs "
          f"{rec.storage_copies_full} copies per object")
    print(f"  remote read: {rec.remote_read_fraction:.0%} of reads "
          "(partial replication)")
    print("rationale:")
    for line in rec.rationale:
        print(f"  - {line}")
    return 0


def _cmd_analytic(args: argparse.Namespace) -> int:
    n = args.sites
    p = args.replicas
    if p is None:
        from .memory.replication import paper_replication_factor

        p = paper_replication_factor(n)
    w = args.write_rate * args.ops
    r = (1 - args.write_rate) * args.ops
    print(f"n={n} p={p} writes={w:.0f} reads={r:.0f}")
    print(f"partial message count : {partial_replication_message_count(n, p, w, r):.1f}")
    print(f"full message count    : {full_replication_message_count(n, w):.1f}")
    for name, cb in [
        ("full-track", full_track_total_size(n, p, w, r)),
        ("opt-track", opt_track_total_size(n, p, w, r)),
        ("opt-track-crp", opt_track_crp_total_size(n, w)),
        ("optp", optp_total_size(n, w)),
    ]:
        print(f"{name:14s}: {cb.total_count:10.1f} msgs  {cb.total_bytes/1000:12.1f} KB")
    return 0


def _cmd_crossover(args: argparse.Namespace) -> int:
    rows = [
        {"n": n, "threshold_write_rate": crossover_write_rate(n)}
        for n in range(2, args.max_n + 1)
        if n in (2, 3, 4, 5, 8, 10, 15, 20, 30, args.max_n)
    ]
    print(format_table(rows, title="eq. (2): partial wins iff w_rate > 2/(n+1)"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    handlers = {
        "run": _cmd_trace_run,
        "summarize": _cmd_trace_summarize,
        "diff": _cmd_trace_diff,
    }
    return handlers[args.trace_command](args)


def _cmd_trace_run(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .obs import Tracer, summarize_trace, write_chrome, write_jsonl
    from .workload.traces import save_history, save_workload

    cfg = SimulationConfig(
        protocol=args.protocol, n_sites=args.sites, n_vars=20,
        write_rate=args.write_rate, ops_per_process=args.ops,
        seed=args.seed, latency=_LATENCIES[args.latency](),
        record_history=True,
        fault_plan=_fault_plan_from_args(args),
        fault_seed=args.fault_seed,
        retransmit=_retransmit_from_args(args),
        checkpoint_interval_ms=args.checkpoint_interval,
        auto_evict_after_ms=args.auto_evict,
    )
    tracer = Tracer()
    result = run_simulation(cfg, tracer=tracer)
    out = Path(args.outdir)
    out.mkdir(parents=True, exist_ok=True)
    save_workload(result.workload, out / "workload.json")
    save_history(result.history, out / "history.jsonl")
    (out / "config.json").write_text(json.dumps({
        "protocol": cfg.protocol,
        "n_sites": cfg.n_sites,
        "n_vars": cfg.n_vars,
        "replication_factor": result.placement.replication_factor,
        "placement": cfg.placement,
        "write_rate": cfg.write_rate,
        "ops_per_process": cfg.ops_per_process,
        "seed": cfg.seed,
    }))
    trace = tracer.to_trace()
    write_jsonl(trace, out / "trace.jsonl")
    write_chrome(trace, out / "trace_chrome.json")
    print(f"saved workload, history ({len(result.history)} events), trace "
          f"({len(trace.events)} spans), and config to {out}")
    print(f"open {out / 'trace_chrome.json'} in https://ui.perfetto.dev "
          "to browse the per-site timeline")
    if args.protocol in ("opt-track", "opt-track-noprune"):
        from .analysis.logstats import format_log_report, snapshot_logs

        print()
        print(format_log_report(snapshot_logs(result.protocols)))
    print()
    print(summarize_trace(trace, top=args.top))
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from .obs import load_trace, summarize_trace

    print(summarize_trace(load_trace(args.trace), top=args.top))
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from .obs import diff_traces, load_trace

    print(diff_traces(load_trace(args.trace_a), load_trace(args.trace_b)))
    return 0


def _registry_from_args(args: argparse.Namespace):
    """A fresh registry when ``--metrics-dir`` was given, else ``None``
    (the zero-overhead path)."""
    if getattr(args, "metrics_dir", None) is None:
        return None
    from .obs.metrics import MetricsRegistry

    return MetricsRegistry()


def _write_metrics_outputs(registry, outdir, cfg: SimulationConfig) -> None:
    """Export ``metrics.prom`` / ``metrics.json`` / ``metrics.jsonl``."""
    from pathlib import Path

    from .obs.export import (
        append_snapshot_jsonl,
        write_prometheus,
        write_snapshot_json,
    )

    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    meta = {
        "protocol": cfg.protocol,
        "n_sites": cfg.n_sites,
        "ops_per_process": cfg.ops_per_process,
        "seed": cfg.seed,
    }
    write_prometheus(registry, out / "metrics.prom")
    write_snapshot_json(registry, out / "metrics.json", meta=meta)
    with open(out / "metrics.jsonl", "w") as fh:
        append_snapshot_jsonl(registry, fh, meta=meta)
    print(f"metrics written to {out} (metrics.prom, metrics.json, "
          f"metrics.jsonl)")


def _load_metrics_snapshot(path: str) -> dict:
    """Load a metrics dump: a plain snapshot JSON or the last snapshot
    line of a JSONL stream."""
    import json
    from pathlib import Path

    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise SystemExit(f"cannot read metrics dump {path!r}: {exc}")
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict):
        return data
    snap = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(obj, dict) and obj.get("type", "snapshot") == "snapshot":
            snap = obj
    if snap is None:
        raise SystemExit(f"no metrics snapshot found in {path!r}")
    return snap


def _cmd_metrics(args: argparse.Namespace) -> int:
    handlers = {
        "run": _cmd_metrics_run,
        "summarize": _cmd_metrics_summarize,
        "diff": _cmd_metrics_diff,
    }
    return handlers[args.metrics_command](args)


def _cmd_metrics_run(args: argparse.Namespace) -> int:
    from .obs.export import HeartbeatReporter, ledger_table
    from .obs.metrics import MetricsRegistry

    cfg = SimulationConfig(
        protocol=args.protocol, n_sites=args.sites, n_vars=args.vars,
        write_rate=args.write_rate, ops_per_process=args.ops,
        seed=args.seed, latency=_LATENCIES[args.latency](),
        fault_plan=_fault_plan_from_args(args),
        fault_seed=args.fault_seed,
        retransmit=_retransmit_from_args(args),
        checkpoint_interval_ms=args.checkpoint_interval,
        auto_evict_after_ms=args.auto_evict,
    )
    registry = MetricsRegistry()
    heartbeat = None
    if args.heartbeat_ms > 0:
        heartbeat = HeartbeatReporter(every_ms=args.heartbeat_ms,
                                      registry=registry)
    result = run_simulation(cfg, registry=registry, heartbeat=heartbeat)
    _write_metrics_outputs(registry, args.outdir, cfg)
    problems = registry.ledger.crosscheck(result.collector)
    print("ledger crosscheck vs collector: "
          + ("OK" if not problems else "MISMATCH"))
    for p in problems:
        print(f"  {p}")
    print()
    print("metadata bytes by component (measured window):")
    print(ledger_table(registry.ledger))
    return 1 if problems else 0


def _cmd_metrics_summarize(args: argparse.Namespace) -> int:
    from .obs.export import ledger_table
    from .obs.ledger import MetadataLedger

    snap = _load_metrics_snapshot(args.metrics)
    meta = snap.get("meta", {})
    if meta:
        print("meta: " + ", ".join(f"{k}={v}"
                                   for k, v in sorted(meta.items())))
    ledger = MetadataLedger.from_dict(snap.get("ledger", {}))
    print(f"metadata bytes by component ({args.window} window):")
    print(ledger_table(ledger, window=args.window))
    return 0


def _cmd_metrics_diff(args: argparse.Namespace) -> int:
    from .obs.export import diff_snapshots

    lines = diff_snapshots(_load_metrics_snapshot(args.metrics_a),
                           _load_metrics_snapshot(args.metrics_b))
    if not lines:
        print("metric dumps are identical")
        return 0
    for line in lines:
        print(line)
    return 0


def _cmd_verify_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .experiments.runner import build_placement
    from .workload.traces import load_history

    out = Path(args.outdir)
    config = json.loads((out / "config.json").read_text())
    history = load_history(out / "history.jsonl")
    placement = build_placement(SimulationConfig(
        protocol=config["protocol"], n_sites=config["n_sites"],
        n_vars=config["n_vars"],
        replication_factor=config["replication_factor"],
        placement=config.get("placement", "round-robin"),
        seed=config.get("seed", 0),
    ))
    report = check_causal_consistency(history, placement)
    status = "OK" if report.ok else "VIOLATED"
    print(f"{config['protocol']} trace: causal consistency {status} "
          f"({report.n_writes} writes, {report.n_reads} reads, "
          f"{report.n_applies} applies)")
    for v in report.violations[:20]:
        print(f"  {v}")
    return 0 if report.ok else 1


def _cmd_check(args: argparse.Namespace) -> int:
    if args.effects or args.layers or args.write_baseline:
        from .check.cli import main as static_main

        argv = ["--no-lint", "--no-mypy",
                "--format", args.static_format]
        if args.effects:
            argv.append("--effects")
        if args.layers:
            argv.append("--layers")
        if args.write_baseline:
            argv.append("--write-baseline")
        if args.static_report is not None:
            argv.extend(["--report", args.static_report])
        return static_main(argv)
    cfg = SimulationConfig(
        protocol=args.protocol,
        n_sites=args.sites,
        n_vars=20,
        write_rate=args.write_rate,
        ops_per_process=args.ops,
        seed=args.seed,
        latency=_LATENCIES[args.latency](),
        record_history=True,
        fault_plan=_fault_plan_from_args(args),
        fault_seed=args.fault_seed,
        retransmit=_retransmit_from_args(args),
        checkpoint_interval_ms=args.checkpoint_interval,
        auto_evict_after_ms=args.auto_evict,
    )
    registry = _registry_from_args(args)
    result = run_simulation(cfg, registry=registry)
    if registry is not None:
        _write_metrics_outputs(registry, args.metrics_dir, cfg)
    report = check_causal_consistency(result.history, result.placement)
    status = "OK" if report.ok else "VIOLATED"
    print(f"{args.protocol}: causal consistency {status} "
          f"({report.n_writes} writes, {report.n_reads} reads, "
          f"{report.n_applies} applies)")
    if cfg.fault_plan is not None:
        col = result.collector
        print(f"chaos: {col.injected_drops} drops, {col.injected_dups} dups, "
              f"{col.retransmissions} retransmissions, "
              f"{col.duplicate_drops} duplicates suppressed, "
              f"{col.acks_sent} acks")
    _print_crash_stats(result)
    _print_membership_stats(result)
    for v in report.violations[:20]:
        print(f"  {v}")
    return 0 if report.ok else 1


def _print_crash_stats(result) -> int:
    """One summary line per crash-recovery aspect (silent when inactive)."""
    if result.crash_manager is None:
        return 0
    col = result.collector
    print(f"crash-recovery: {col.crashes} crashes, "
          f"{col.checkpoints_taken} checkpoints, "
          f"mean downtime {col.downtime.mean if col.downtime.count else 0.0:.0f} ms, "
          f"mean detection {col.detection_latency.mean if col.detection_latency.count else 0.0:.0f} ms, "
          f"mean catch-up {col.catchup_latency.mean if col.catchup_latency.count else 0.0:.0f} ms")
    print(f"  wal: mean {col.wal_replays.mean if col.wal_replays.count else 0.0:.0f} records replayed/restore; "
          f"detector: {col.heartbeats_sent} heartbeats, "
          f"{col.false_suspicions} false suspicions; "
          f"{col.sync_messages} sync msgs; "
          f"{col.lost_ops} ops lost (crash-stop)")
    return 0


def _print_membership_stats(result) -> int:
    """One summary line for elastic membership (silent when static)."""
    vm = getattr(result, "view_manager", None)
    if vm is None:
        return 0
    view = vm.view
    st = vm.stats
    print(f"membership: epoch {view.epoch}, members {list(view.members)}; "
          f"{st.joins} joins, {st.leaves} leaves, {st.evictions} evictions, "
          f"{st.handoffs} replica handoffs, "
          f"{st.lost_variables} variables lost to eviction")
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("protocols:")
    for name in protocol_names():
        print(f"  {name}")
    print("\nexperiments:")
    for key in sorted(_EXPERIMENT_FNS):
        spec = EXPERIMENTS.get(key)
        print(f"  {key:8s} {spec.title if spec else ''}")
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .soak import SOAK_PROTOCOLS, soak_matrix

    if args.protocols:
        protocols = tuple(p for p in args.protocols.split(",") if p)
        unknown = [p for p in protocols if p not in protocol_names()]
        if unknown:
            raise SystemExit(f"unknown protocol(s): {', '.join(unknown)}")
    else:
        protocols = SOAK_PROTOCOLS
    try:
        seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    except ValueError as exc:
        raise SystemExit(f"invalid --seeds {args.seeds!r}: {exc}")
    if not seeds:
        raise SystemExit("--seeds must name at least one seed")

    report = soak_matrix(
        protocols, seeds,
        n_sites=args.sites, ops=args.ops,
        check_determinism=not args.no_determinism,
        compare_rto=not args.no_rto_compare,
        out_dir=Path(args.out) if args.out else None,
    )
    for cell in report.cells:
        status = "ok" if cell.ok and cell.deterministic else "FAIL"
        print(f"soak {cell.protocol:14s} seed={cell.seed:<3d} {status}")
        for problem in cell.problems:
            print(f"    {problem}")
    if report.rto_comparison is not None:
        comp = report.rto_comparison
        print(f"rto comparison: fixed spurious="
              f"{comp['fixed']['spurious_retransmissions']:.0f} "
              f"adaptive spurious="
              f"{comp['adaptive']['spurious_retransmissions']:.0f} "
              f"adaptive_fewer={comp['adaptive_fewer_spurious']}")
    if args.out:
        print(f"soak report written to {Path(args.out) / 'soak_report.json'}")
    print(f"soak: {'PASS' if report.ok else 'FAIL'} "
          f"({len(report.cells)} cells)")
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os
    import subprocess
    import time
    from pathlib import Path

    import repro
    from .service.bootstrap import (
        default_topology, load_topology, save_topology,
    )
    from .service.loadgen import http_request

    run_dir = Path(args.dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    if args.topology:
        topology = load_topology(args.topology)
    else:
        if args.protocol not in protocol_names():
            raise SystemExit(f"unknown protocol {args.protocol!r}")
        topology = default_topology(
            args.nodes,
            protocol=args.protocol,
            n_vars=args.variables,
            replication_factor=args.replication_factor,
            placement=args.placement,
            seed=args.seed,
            base_port=args.base_port,
            history_dir=str(run_dir),
        )
    topo_path = run_dir / "topology.json"
    save_topology(topology, topo_path)

    # child processes must find the same `repro` package this process
    # imported, whether it came from an install or a source tree
    env = os.environ.copy()
    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (pkg_root, env.get("PYTHONPATH")) if p
    )
    procs = []
    logs = []
    try:
        for spec in topology.nodes:
            log = (run_dir / f"node-{spec.site}.log").open("w")
            logs.append(log)
            procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "_node",
                 "--topology", str(topo_path), "--site", str(spec.site)],
                stdout=log, stderr=subprocess.STDOUT, env=env,
            ))

        async def _ready() -> bool:
            for spec in topology.nodes:
                try:
                    status, _ = await http_request(
                        spec.host, spec.http_port, "GET", "/status"
                    )
                    if status != 200:
                        return False
                except (ConnectionError, OSError):
                    return False
            return True

        # simcheck: ignore[SIM001] -- supervising real OS processes; never feeds simulated results
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:  # simcheck: ignore[SIM001] -- see above
            if any(p.poll() is not None for p in procs):
                raise SystemExit(
                    f"a node process exited during startup; "
                    f"see {run_dir}/node-*.log"
                )
            if asyncio.run(_ready()):
                break
            time.sleep(0.1)
        else:
            raise SystemExit(f"cluster not ready after 15s; see {run_dir}")

        print(f"cluster up: {topology.n_sites} nodes, "
              f"protocol={topology.protocol}, topology={topo_path}")
        for spec in topology.nodes:
            print(f"  site {spec.site}: "
                  f"http://{spec.host}:{spec.http_port}  "
                  f"(peer port {spec.peer_port})")
        print(f'try: curl -X PUT -d \'{{"value": 41}}\' '
              f"http://{topology.node(0).host}:"
              f"{topology.node(0).http_port}/kv/0")
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            try:
                while all(p.poll() is None for p in procs):
                    time.sleep(0.5)
            except KeyboardInterrupt:
                pass
        return 0
    finally:
        for p in procs:
            if p.poll() is None:
                p.terminate()
        for p in procs:
            try:
                p.wait(timeout=5)
            except subprocess.TimeoutExpired:
                p.kill()
        for log in logs:
            log.close()


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .service.bootstrap import load_topology
    from .service.loadgen import run_loadgen

    topology = load_topology(args.topology)
    report = run_loadgen(
        topology, ops=args.ops, seed=args.seed,
        write_fraction=args.write_fraction,
    )
    print(f"loadgen: {report.ops_attempted} ops "
          f"({report.writes} writes, {report.reads} reads, "
          f"{report.shed} shed) across {topology.n_sites} sites")
    print(f"history: {report.events} events, "
          f"quiesced={report.quiesced}, "
          f"violations={len(report.violations)}")
    for err in report.errors:
        print(f"  error: {err}")
    for violation in report.violations[:10]:
        print(f"  violation: {violation}")
    print(f"loadgen: {'PASS' if report.ok else 'FAIL'}")
    return 0 if report.ok else 1


def _cmd_node(args: argparse.Namespace) -> int:
    from .service.bootstrap import load_topology
    from .service.node import run_node

    run_node(load_topology(args.topology), args.site)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "reproduce": _cmd_reproduce,
        "advise": _cmd_advise,
        "trace": _cmd_trace,
        "verify-trace": _cmd_verify_trace,
        "analytic": _cmd_analytic,
        "crossover": _cmd_crossover,
        "check": _cmd_check,
        "metrics": _cmd_metrics,
        "soak": _cmd_soak,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "_node": _cmd_node,
        "list": _cmd_list,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); exit quietly
        return 0


if __name__ == "__main__":
    sys.exit(main())
