"""Protocol framework: context, base class, pending buffers, registry.

Every protocol implements the paper's process model (Section IV-A): an
*application subsystem* calls :meth:`CausalProtocol.write` and
:meth:`CausalProtocol.read`, while the *message receipt subsystem* is the
:meth:`CausalProtocol.on_message` entry point invoked by the network.

The base class centralizes the machinery all four protocols share:

* the pending-SM buffer with fixpoint re-scanning — whenever any update
  is applied, previously blocked updates may have become applicable, so
  the buffer is re-scanned until no progress is made (this realizes the
  per-message waiting threads of the paper's JDK testbed without
  threads);
* the remote-fetch state machine (issue FM, buffer the RM until its
  gating predicate holds, complete the blocked read);
* metered send/multicast helpers that price each message against the
  size model and feed the metrics collector at send time;
* history recording hooks for the causal-consistency checker.

Concrete protocols override the small, well-named primitive methods
(``_sm_ready``, ``_apply_sm``, ``_rm_ready``, ``_complete_rm`` ...)
rather than the control flow.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..sim.checkpoint import SiteDisk, WalRecord

from ..memory.replication import Placement
from ..memory.store import SiteStore, WriteId
from ..metrics.collector import MessageKind, MetricsCollector
from ..metrics.sizing import SizeModel
from ..obs.tracer import Tracer
from ..sim.engine import Simulator
from ..sim.network import Network
from ..verify.history import HistoryRecorder
from .messages import FetchMessage

__all__ = [
    "ProtocolContext",
    "CausalProtocol",
    "ReadCallback",
    "register_protocol",
    "create_protocol",
    "protocol_names",
    "get_protocol_class",
]

#: Signature of the continuation a read hands to the protocol:
#: ``on_complete(value, write_id_or_None, was_remote)``.
ReadCallback = Callable[[object, Optional[WriteId], bool], None]


@dataclass
class ProtocolContext:
    """Everything a protocol instance needs from its hosting site."""

    site: int
    n_sites: int
    placement: Placement
    store: SiteStore
    network: Network
    sim: Simulator
    collector: MetricsCollector
    size_model: SizeModel
    history: HistoryRecorder = field(default_factory=lambda: HistoryRecorder(enabled=False))
    #: observability hooks; None (the default) is the zero-overhead path
    tracer: Optional[Tracer] = None


@dataclass(eq=False)  # identity equality: buffered entries must be distinct
class _PendingSM:
    """An update buffered until its activation predicate becomes true."""

    src: int
    message: object
    arrived: float


@dataclass(eq=False)
class _PendingRM:
    """A remote return buffered until its gating predicate becomes true."""

    src: int
    message: object
    arrived: float


@dataclass(eq=False)
class _PendingFM:
    """A fetch request buffered until the reader's requirements are met."""

    src: int
    message: object
    arrived: float


@dataclass
class _OutstandingFetch:
    """A read blocked on a RemoteFetch round trip."""

    var: int
    on_complete: ReadCallback
    op_index: Optional[int]
    issued: float
    #: the replica the FM was sent to (crash-recovery liveness analysis)
    target: int = -1


class _NullNetwork:
    """Send sink used while replaying a WAL: the original sends already
    happened and live on in the durable reliable-channel queues."""

    def send(self, src: int, dst: int, message: object, *,
             size_bytes: float = 0.0) -> None:
        return None


class CausalProtocol(abc.ABC):
    """Base class for the four causal-consistency protocols."""

    #: registry key, e.g. ``"opt-track"``
    name: str = "abstract"
    #: True for protocols that require p = n
    full_replication: bool = False

    def __init__(self, ctx: ProtocolContext) -> None:
        if self.full_replication and not ctx.placement.is_full:
            raise ValueError(
                f"{self.name} requires full replication (p = n), got "
                f"p={ctx.placement.replication_factor}, n={ctx.n_sites}"
            )
        self.ctx = ctx
        self.site = ctx.site
        self.n = ctx.n_sites
        self._pending_sm: list[_PendingSM] = []
        self._pending_rm: list[_PendingRM] = []
        self._pending_fm: list[_PendingFM] = []
        self._fetches: dict[int, _OutstandingFetch] = {}
        self._next_request_id = 0
        self._draining = False
        #: durable disk (crash-recovery); ``None`` keeps the seed path
        #: byte-identical — no WAL branch is ever taken
        self._wal: "Optional[SiteDisk]" = None
        #: True while re-executing WAL records during recovery
        self._replaying = False
        #: RMs answering a fetch whose continuation died in a crash
        self.stale_rms_dropped = 0
        #: liveness oracle for fetch-target failover (wired by the
        #: crash-recovery manager; ``None`` = everyone is up)
        self._liveness: Optional[Callable[[int], bool]] = None

    # ------------------------------------------------------------------
    # public API driven by the application subsystem
    # ------------------------------------------------------------------
    def write(self, var: int, value: object, *, op_index: Optional[int] = None) -> WriteId:
        """Perform w(x_var)value locally and multicast it to all replicas."""
        if self._wal is not None and not self._replaying:
            self._wal.log_write(var, value)
        return self._perform_write(var, value, op_index=op_index)

    @abc.abstractmethod
    def _perform_write(
        self, var: int, value: object, *, op_index: Optional[int] = None
    ) -> WriteId:
        """Protocol-specific write path (the pre-WAL ``write`` body)."""

    def read(
        self, var: int, on_complete: ReadCallback, *, op_index: Optional[int] = None
    ) -> None:
        """Perform r(x_var); ``on_complete`` fires when the value is known.

        Local reads complete synchronously (before this method returns);
        remote reads issue an FM to the predesignated replica and
        complete when the gated RM arrives.
        """
        ctx = self.ctx
        if self._wal is not None and not self._replaying:
            self._wal.log_read(var)
        if ctx.placement.is_replicated_at(var, self.site):
            value, write_id = self._local_read(var)
            ctx.collector.record_operation(False, remote=False)
            ctx.history.record_read_op(
                time=ctx.sim.now, site=self.site, var=var, value=value,
                write_id=write_id, op_index=op_index, remote=False,
            )
            on_complete(value, write_id, False)
            return
        ctx.collector.record_operation(False, remote=True)
        target = ctx.placement.fetch_site(var, self.site)
        if self._liveness is not None and not self._liveness(target):
            # designated replica is (believed) down: fail over to the
            # first live replica of the variable, if any
            for alt in ctx.placement.replicas(var):
                if alt != self.site and alt != target and self._liveness(alt):
                    target = alt
                    break
        req_id = self._next_request_id
        self._next_request_id += 1
        self._fetches[req_id] = _OutstandingFetch(
            var=var, on_complete=on_complete, op_index=op_index,
            issued=ctx.sim.now, target=target,
        )
        ctx.history.record_fetch(time=ctx.sim.now, site=self.site, peer=target, var=var)
        self._send(
            target,
            FetchMessage(
                var=var, reader=self.site, request_id=req_id,
                requirements=self._fetch_requirements(var, target),
            ),
            MessageKind.FM,
        )

    # ------------------------------------------------------------------
    # message receipt subsystem
    # ------------------------------------------------------------------
    def on_message(self, src: int, message: object) -> None:
        """Network delivery entry point (dispatch by message class)."""
        if self._wal is not None and not self._replaying:
            # logged before processing: the reliable transport acks only
            # after this returns, so an acked message is always durable
            self._wal.log_recv(src, message)
        if isinstance(message, FetchMessage):
            # Serving is deferred until every write the reader causally
            # requires of this site has been applied here — otherwise the
            # reply could be causally behind the reader's own knowledge
            # (DESIGN.md, "gating fetch service").
            self._pending_fm.append(_PendingFM(src, message, self.ctx.sim.now))
            self._drain()
            return
        if self._is_rm(message):
            self._pending_rm.append(_PendingRM(src, message, self.ctx.sim.now))
            self._drain()
            return
        # anything else is this protocol's SM type
        self._pending_sm.append(_PendingSM(src, message, self.ctx.sim.now))
        self._drain()

    # ------------------------------------------------------------------
    # machinery shared by all protocols
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Fixpoint application of buffered SMs and gated RMs.

        Applying one update can unblock others (and unblock remote-read
        completions, which in turn never block further updates but may
        enlarge the local log), so iterate until a full pass makes no
        progress.  Guarded against reentrancy: completions invoked here
        may issue new operations synchronously.
        """
        if self._draining:
            return
        self._draining = True
        try:
            progress = True
            while progress:
                progress = False
                # index-based sweeps: nested calls may append to these
                # lists (appended items are visited later in the same
                # pass), and in-place deletion keeps the scan O(P) per
                # application instead of O(P^2)
                tracer = self.ctx.tracer
                i = 0
                while i < len(self._pending_sm):
                    pending = self._pending_sm[i]
                    if self._sm_ready(pending.src, pending.message):
                        del self._pending_sm[i]
                        delay = self.ctx.sim.now - pending.arrived
                        if delay > 0:
                            # only genuinely buffered updates count: an
                            # immediately-applicable SM has no gating cost
                            self.ctx.collector.record_activation_delay(delay)
                        if tracer is None:
                            self._apply_sm(pending.src, pending.message)
                        else:
                            # the activation event becomes the causal parent
                            # of anything the apply triggers (e.g. a newly
                            # unblocked fetch reply)
                            tracer.sm_activate(self.site, pending.message,
                                               ts=self.ctx.sim.now,
                                               arrived=pending.arrived)
                            try:
                                self._apply_sm(pending.src, pending.message)
                            finally:
                                tracer.pop()
                        progress = True
                    else:
                        i += 1
                i = 0
                while i < len(self._pending_rm):
                    pending = self._pending_rm[i]
                    if self._rm_ready(pending.src, pending.message):
                        del self._pending_rm[i]
                        if tracer is None:
                            self._complete_rm(pending.src, pending.message)
                        else:
                            tracer.gated_resolved("rm.complete", self.site,
                                                  pending.message,
                                                  ts=self.ctx.sim.now,
                                                  arrived=pending.arrived)
                            try:
                                self._complete_rm(pending.src, pending.message)
                            finally:
                                tracer.pop()
                        progress = True
                    else:
                        i += 1
                i = 0
                while i < len(self._pending_fm):
                    pending = self._pending_fm[i]
                    if self._fm_ready(pending.message):
                        del self._pending_fm[i]
                        if tracer is None:
                            self._serve_fetch(pending.src, pending.message)
                        else:
                            tracer.gated_resolved("fm.serve", self.site,
                                                  pending.message,
                                                  ts=self.ctx.sim.now,
                                                  arrived=pending.arrived)
                            try:
                                self._serve_fetch(pending.src, pending.message)
                            finally:
                                tracer.pop()
                        progress = True
                    else:
                        i += 1
        finally:
            self._draining = False

    def _send(self, dst: int, message: object, kind: MessageKind) -> None:
        """Price, record, and transmit one message.

        The priced metadata size is handed to the network so that, under
        a finite-bandwidth model, bigger metadata costs transmission
        time (size never affects timing in the default infinite-
        bandwidth model, matching the paper).
        """
        size = message.metadata_size(self.ctx.size_model)  # type: ignore[attr-defined]
        self.ctx.collector.record_message(kind, size)
        if self.ctx.tracer is not None:
            self.ctx.tracer.msg_send(self.site, dst, message,
                                     ts=self.ctx.sim.now,
                                     kind=kind.value, size=size)
        self.ctx.history.record_send(
            time=self.ctx.sim.now, site=self.site, peer=dst,
            detail=type(message).__name__,
        )
        self.ctx.network.send(self.site, dst, message, size_bytes=size)

    def _multicast(
        self,
        dests: Sequence[int],
        message_for: Callable[[int], object],
        kind: MessageKind = MessageKind.SM,
    ) -> int:
        """Metered multicast: one (possibly distinct) message per remote dest."""
        sent = 0
        for dst in dests:
            if dst == self.site:
                continue
            self._send(dst, message_for(dst), kind)
            sent += 1
        return sent

    def _fetch_requirements(self, var: int, target: int) -> tuple[tuple[int, int], ...]:
        """(writer, threshold) pairs the fetch target must have applied
        before it may serve this reader (see :class:`FetchMessage`).

        Defaults to none; partial-replication protocols override it with
        the writes in their causal past destined to ``target``.
        """
        return ()

    def _fm_ready(self, message: FetchMessage) -> bool:
        """Fetch-service gate: all of the reader's requirements applied.

        Compares against ``self.applied`` — every concrete protocol keeps
        that array, with requirement thresholds expressed in the same
        unit it uses (apply counts for Full-Track, write clocks for
        Opt-Track).
        """
        applied = self.applied  # type: ignore[attr-defined]
        return all(applied[j] >= c for j, c in message.requirements)

    def _complete_fetch(
        self, request_id: int, value: object, write_id: Optional[WriteId]
    ) -> None:
        """Finish the read blocked on ``request_id`` (RM gating already passed)."""
        fetch = self._fetches.pop(request_id, None)
        if fetch is None:
            # An RM answering a fetch whose continuation died in a crash:
            # the read was re-issued under a fresh request id after
            # recovery, so this late reply is dropped (its causal
            # metadata was already merged by the caller).
            self.stale_rms_dropped += 1
            self.ctx.collector.record_stale_rm()
            return
        ctx = self.ctx
        ctx.collector.record_fetch_rtt(ctx.sim.now - fetch.issued)
        ctx.history.record_read_op(
            time=ctx.sim.now, site=self.site, var=fetch.var, value=value,
            write_id=write_id, op_index=fetch.op_index, remote=True,
        )
        fetch.on_complete(value, write_id, True)

    # ------------------------------------------------------------------
    # state protocol subclasses must provide
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _local_read(self, var: int) -> tuple[object, Optional[WriteId]]:
        """Read the local replica, performing the protocol's merge-on-read."""

    @abc.abstractmethod
    def _serve_fetch(self, src: int, message: FetchMessage) -> None:
        """Answer a remote read with an RM carrying LastWriteOn metadata."""

    @abc.abstractmethod
    def _is_rm(self, message: object) -> bool:
        """True when ``message`` is this protocol's RM type."""

    @abc.abstractmethod
    def _sm_ready(self, src: int, message: object) -> bool:
        """Activation predicate A_OPT for a buffered SM."""

    @abc.abstractmethod
    def _apply_sm(self, src: int, message: object) -> None:
        """Apply an activated SM to the local replica."""

    def _rm_ready(self, src: int, message: object) -> bool:
        """Gating predicate for a buffered RM (overridden by partial-
        replication protocols; full-replication ones never see RMs)."""
        raise NotImplementedError

    def _complete_rm(self, src: int, message: object) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # crash-recovery: durable snapshots and deterministic WAL replay
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the complete logical state of this protocol instance.

        The blob must be sufficient for :meth:`restore` to rebuild an
        instance indistinguishable from this one to every peer: pending
        buffers, the fetch-request counter, the local replica slots, and
        whatever clocks/logs the concrete protocol adds via
        :meth:`_snapshot_extra`.  Messages inside pending buffers are
        shared, not copied — they are immutable by protocol convention.
        """
        return {
            "pending_sm": [(p.src, p.message, p.arrived) for p in self._pending_sm],
            "pending_rm": [(p.src, p.message, p.arrived) for p in self._pending_rm],
            "pending_fm": [(p.src, p.message, p.arrived) for p in self._pending_fm],
            "next_request_id": self._next_request_id,
            "slots": {
                var: (slot.value, slot.write_id, slot.applied_at)
                for var, slot in self.ctx.store._slots.items()
            },
            "extra": self._snapshot_extra(),
        }

    def restore(self, state: dict) -> None:
        """Overwrite volatile state from a :meth:`snapshot` blob."""
        self._pending_sm = [_PendingSM(s, m, t) for s, m, t in state["pending_sm"]]
        self._pending_rm = [_PendingRM(s, m, t) for s, m, t in state["pending_rm"]]
        self._pending_fm = [_PendingFM(s, m, t) for s, m, t in state["pending_fm"]]
        self._next_request_id = state["next_request_id"]
        self._fetches.clear()
        self._draining = False
        slots = self.ctx.store._slots
        for var, (value, write_id, applied_at) in state["slots"].items():
            slot = slots[var]
            slot.value = value
            slot.write_id = write_id
            slot.applied_at = applied_at
        self._restore_extra(state["extra"])

    def replay(self, records: "Sequence[WalRecord]") -> int:
        """Re-execute WAL records through the normal protocol code paths.

        Every protocol here is a deterministic state machine over its
        inputs, so replay reconstructs the exact pre-crash logical
        state.  Side effects that already happened must not happen
        again: sends go to a null network (the originals are durable in
        the reliable-channel queues), metrics to a throwaway collector,
        and nothing is traced or WAL-logged.  Reads outstanding at the
        crash are cleared afterwards — their continuations died with
        the process and the scheduler re-issues the interrupted
        operation.
        """
        real_ctx = self.ctx
        self.ctx = replace(
            real_ctx,
            network=_NullNetwork(),  # type: ignore[arg-type]
            collector=MetricsCollector(),
            history=HistoryRecorder(enabled=False),
            tracer=None,
        )
        self._replaying = True
        try:
            for rec in records:
                if rec.kind == "recv":
                    self.on_message(rec.src, rec.message)
                elif rec.kind == "write":
                    self._perform_write(rec.var, rec.value)
                elif rec.kind == "read":
                    self.read(rec.var, lambda value, wid, remote: None)
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unknown WAL record kind {rec.kind!r}")
        finally:
            self._replaying = False
            self.ctx = real_ctx
        self._fetches.clear()
        return len(records)

    def knows_write(self, wid: WriteId) -> Optional[bool]:
        """Whether this site has applied ``wid`` (anti-entropy digests).

        ``None`` means the protocol's ``applied`` bookkeeping cannot
        answer (Full-Track counts applications rather than writer
        clocks); the catch-up loop then relies on transport drain alone.
        """
        return None

    def _snapshot_extra(self) -> dict:
        """Protocol-specific clocks/logs for :meth:`snapshot`."""
        return {}

    def _restore_extra(self, extra: dict) -> None:
        """Inverse of :meth:`_snapshot_extra`."""

    # ------------------------------------------------------------------
    # introspection used by tests and the runner
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Buffered messages + outstanding fetches (0 at quiescence)."""
        return (len(self._pending_sm) + len(self._pending_rm)
                + len(self._pending_fm) + len(self._fetches))

    def log_size(self) -> int:
        """Current causality-metadata size (entries); protocol-specific."""
        return 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} site={self.site} pending={self.pending_count}>"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[CausalProtocol]] = {}


def register_protocol(cls: type[CausalProtocol]) -> type[CausalProtocol]:
    """Class decorator adding a protocol to the by-name registry."""
    key = cls.name
    if key in _REGISTRY and _REGISTRY[key] is not cls:
        raise ValueError(f"duplicate protocol name {key!r}")
    _REGISTRY[key] = cls
    return cls


def create_protocol(name: str, ctx: ProtocolContext) -> CausalProtocol:
    """Instantiate a registered protocol by name."""
    return get_protocol_class(name)(ctx)


def get_protocol_class(name: str) -> type[CausalProtocol]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def protocol_names() -> list[str]:
    return sorted(_REGISTRY)
