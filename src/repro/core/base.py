"""Protocol framework: context, base class, pending buffers, registry.

Every protocol implements the paper's process model (Section IV-A): an
*application subsystem* calls :meth:`CausalProtocol.write` and
:meth:`CausalProtocol.read`, while the *message receipt subsystem* is the
:meth:`CausalProtocol.on_message` entry point invoked by the network.

The base class centralizes the machinery all four protocols share:

* the pending-SM buffer with **dependency-indexed wakeups** — every
  activation predicate here is a pure, monotone function of the local
  ``applied`` array, so a blocked message registers the first
  ``(writer, threshold)`` pair its predicate is waiting on and is only
  re-tested when ``applied[writer]`` crosses that threshold.  This
  replaces the historical full fixpoint re-scan (O(P) predicate tests
  per application, O(P^2) per delivery burst) while activating the exact
  same messages in the exact same order — see ``_drain`` and
  docs/architecture.md, "Hot path & performance model".  The legacy
  re-scan survives as ``_drain_legacy`` (selectable via
  :func:`set_drain_mode`) because the equivalence property test runs
  whole simulations under both modes and compares traces;
* the remote-fetch state machine (issue FM, buffer the RM until its
  gating predicate holds, complete the blocked read);
* metered send/multicast helpers that price each message against the
  size model and feed the metrics collector at send time;
* history recording hooks for the causal-consistency checker.

Concrete protocols override the small, well-named primitive methods
(``_sm_ready``, ``_apply_sm``, ``_rm_ready``, ``_complete_rm`` ...)
rather than the control flow, plus the ``_sm_blocker``/``_rm_blocker``
hooks that name the first unsatisfied threshold of a false predicate (a
protocol may return ``None`` to fall back to re-testing every pass).
"""

from __future__ import annotations

import abc
import os
from bisect import insort
from dataclasses import dataclass, field, replace
from heapq import heappop, heappush
from operator import attrgetter
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    # annotation-only crossings, declared as ports in layers.toml: the
    # substrate objects reach the protocol through ProtocolContext
    # injection, never through a module-level runtime import
    from ..obs.ledger import MetadataLedger
    from ..obs.metrics import Histogram, MetricsRegistry
    from ..obs.tracer import Tracer
    from ..sim.checkpoint import WalRecord

from ..memory.replication import Placement
from ..memory.store import SiteStore, WriteId
from ..metrics.collector import MessageKind, MetricsCollector
from ..metrics.sizing import SizeModel
from ..verify.history import HistoryRecorder
from .errors import DepartedSiteError
from .messages import FetchMessage
from .ports import Clock, Durability, NullTransport, Transport

__all__ = [
    "ProtocolContext",
    "CausalProtocol",
    "ReadCallback",
    "register_protocol",
    "create_protocol",
    "protocol_names",
    "get_protocol_class",
    "set_drain_mode",
    "get_drain_mode",
    "set_debug_wakeups",
]

#: Signature of the continuation a read hands to the protocol:
#: ``on_complete(value, write_id_or_None, was_remote)``.
ReadCallback = Callable[[object, Optional[WriteId], bool], None]

#: drain implementations selectable via :func:`set_drain_mode`
DRAIN_INDEXED = "indexed"
DRAIN_LEGACY = "legacy"

_drain_mode: str = DRAIN_INDEXED

#: when True, every drain fixpoint is followed by a full re-scan
#: asserting that no pending message is applicable — i.e. that the
#: wakeup index never misses an activation the legacy re-scan would
#: have found.  Costly; enabled by the equivalence tests and the
#: REPRO_DEBUG_WAKEUPS environment variable.
_debug_wakeups: bool = os.environ.get("REPRO_DEBUG_WAKEUPS", "") not in ("", "0")


def set_drain_mode(mode: str) -> None:
    """Select the drain implementation for protocols built afterwards.

    ``"indexed"`` (default) uses the dependency-indexed wakeup path;
    ``"legacy"`` uses the historical full fixpoint re-scan.  The setting
    is read at protocol construction, so it must be chosen before
    ``run_simulation`` builds its protocol instances.
    """
    if mode not in (DRAIN_INDEXED, DRAIN_LEGACY):
        raise ValueError(f"unknown drain mode {mode!r}")
    global _drain_mode
    _drain_mode = mode


def get_drain_mode() -> str:
    return _drain_mode


def set_debug_wakeups(enabled: bool) -> None:
    """Toggle the indexed-vs-rescan equivalence assertion (see module doc)."""
    global _debug_wakeups
    _debug_wakeups = enabled


@dataclass
class ProtocolContext:
    """Everything a protocol instance needs from its hosting site."""

    site: int
    n_sites: int
    placement: Placement
    store: SiteStore
    #: message egress + overload signals (:class:`~repro.core.ports.Transport`)
    network: Transport
    #: timestamps only — the cores never arm timers themselves
    clock: Clock
    collector: MetricsCollector
    size_model: SizeModel
    history: HistoryRecorder = field(default_factory=lambda: HistoryRecorder(enabled=False))
    #: observability hooks; None (the default) is the zero-overhead path
    tracer: Optional[Tracer] = None
    #: metrics registry + metadata ledger; None is the zero-overhead path
    registry: Optional[MetricsRegistry] = None


class _Pending:
    """A buffered message awaiting its predicate, with wakeup state.

    ``seq`` is the per-protocol arrival number — within one kind it is
    exactly the position order of the legacy pending list, which is what
    makes indexed activation order reproduce the legacy scan order.
    ``dirty`` marks the entry as queued for (re-)testing; ``blocker`` is
    the ``(writer, threshold)`` registration currently held in the
    owner's wakeup index (``None`` when dirty, newly arrived, or in the
    always-retest fallback).  Identity equality: buffered entries must
    be distinct.
    """

    __slots__ = ("src", "message", "arrived", "seq", "dirty", "blocker")

    #: scan-kind discriminator: 0 = SM, 1 = RM, 2 = FM (scan order)
    kind: int = -1

    def __init__(self, src: int, message: object, arrived: float,
                 seq: int = 0) -> None:
        self.src = src
        self.message = message
        self.arrived = arrived
        self.seq = seq
        self.dirty = False
        self.blocker: Optional[tuple[int, int]] = None

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(src={self.src}, seq={self.seq}, "
                f"dirty={self.dirty}, blocker={self.blocker})")


class _PendingSM(_Pending):
    """An update buffered until its activation predicate becomes true."""

    __slots__ = ()
    kind = 0


class _PendingRM(_Pending):
    """A remote return buffered until its gating predicate becomes true."""

    __slots__ = ()
    kind = 1


class _PendingFM(_Pending):
    """A fetch request buffered until the reader's requirements are met."""

    __slots__ = ()
    kind = 2


_SEQ_KEY = attrgetter("seq")


@dataclass
class _OutstandingFetch:
    """A read blocked on a RemoteFetch round trip."""

    var: int
    on_complete: ReadCallback
    op_index: Optional[int]
    issued: float
    #: the replica the FM was sent to (crash-recovery liveness analysis)
    target: int = -1


class CausalProtocol(abc.ABC):
    """Base class for the four causal-consistency protocols."""

    #: registry key, e.g. ``"opt-track"``
    name: str = "abstract"
    #: True for protocols that require p = n
    full_replication: bool = False

    def __init__(self, ctx: ProtocolContext) -> None:
        if self.full_replication and not ctx.placement.is_full:
            raise ValueError(
                f"{self.name} requires full replication (p = n), got "
                f"p={ctx.placement.replication_factor}, n={ctx.n_sites}"
            )
        self.ctx = ctx
        self.site = ctx.site
        self.n = ctx.n_sites
        self._pending_sm: list[_PendingSM] = []
        self._pending_rm: list[_PendingRM] = []
        self._pending_fm: list[_PendingFM] = []
        self._fetches: dict[int, _OutstandingFetch] = {}
        self._next_request_id = 0
        self._draining = False
        #: high-water mark of the buffered-SM count (perf harness metric)
        self.pending_sm_peak = 0
        #: monotone arrival counter feeding ``_Pending.seq``
        self._arrival_seq = 0
        # Wakeup index (indexed drain mode only; None selects the legacy
        # full-rescan drain).  ``_waiters[j]`` is a min-heap of
        # ``(threshold, seq, entry)``: entries whose predicate is waiting
        # for ``applied[j] >= threshold``.  ``_dirty[kind]`` holds the
        # entries queued for (re-)testing, in wake order (sorted by seq
        # at scan time).
        if _drain_mode == DRAIN_INDEXED:
            self._waiters: Optional[list[list[tuple[int, int, _Pending]]]] = [
                [] for _ in range(self.n)
            ]
            self._dirty: list[list[_Pending]] = [[], [], []]
        else:
            self._waiters = None
            self._dirty = [[], [], []]
        #: active-scan state for same-kind forward wakeups (see ``_wake``)
        self._scan_kind = -1
        self._scan_pos = -1
        self._scan_batch: list[_Pending] = []
        #: durable journal (crash-recovery); ``None`` keeps the seed path
        #: byte-identical — no WAL branch is ever taken
        self._wal: Optional[Durability] = None
        #: True while re-executing WAL records during recovery
        self._replaying = False
        #: RMs answering a fetch whose continuation died in a crash
        self.stale_rms_dropped = 0
        #: liveness oracle for fetch-target failover (wired by the
        #: crash-recovery manager; ``None`` = everyone is up)
        self._liveness: Optional[Callable[[int], bool]] = None
        #: current view membership as a sorted tuple, or ``None`` under
        #: static membership (the zero-overhead path: broadcasts then
        #: target ``range(self.n)`` exactly as before elastic membership)
        self._members: Optional[tuple[int, ...]] = None
        #: set once this site leaves / is evicted; operations fail fast
        self._departed_status: Optional[str] = None
        # Metrics instruments, resolved once per protocol instance so the
        # hot paths pay a single ``is None`` branch (registry=None keeps
        # all three at None — no instrument objects exist at all).  The
        # histogram children are shared across sites (label: protocol);
        # per-site detail lives in the metadata ledger.
        registry = ctx.registry
        if registry is not None:
            self._m_activation_wait: Optional[Histogram] = registry.histogram(  # type: ignore[assignment]
                "proto_activation_wait_ms",
                "time a buffered SM waited before its activation predicate held",
                labels=("protocol",),
                reservoir=False,
            ).labels(protocol=self.name)
            self._m_pending_depth: Optional[Histogram] = registry.histogram(  # type: ignore[assignment]
                "proto_pending_sm_depth",
                "buffered-SM queue depth (1-in-4 SM-arrival sample)",
                labels=("protocol",),
                buckets=(0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128),
                reservoir=False,
            ).labels(protocol=self.name)
            # deterministic 1-in-4 sampling of the depth shape metric
            # (same idiom as the kernel batch hook's stride); the peak
            # is still exact via pending_sm_peak
            self._m_depth_skip = 0
            self._m_log_entries: Optional[Histogram] = registry.histogram(  # type: ignore[assignment]
                "proto_log_entries",
                "piggyback log/clock entry count (1-in-4 local-write sample)",
                labels=("protocol",),
                reservoir=False,
            ).labels(protocol=self.name)
            self._m_log_skip = 0
            self._m_ledger: Optional[MetadataLedger] = registry.ledger
        else:
            self._m_activation_wait = None
            self._m_pending_depth = None
            self._m_log_entries = None
            self._m_ledger = None
        #: kind -> (entry, mode, type) accumulator slots from
        #: MetadataLedger.resolve, bumped inline in _send; dropped on
        #: view changes (clock-keyed slots go stale when n grows)
        self._m_led_cache: dict = {}

    # ------------------------------------------------------------------
    # public API driven by the application subsystem
    # ------------------------------------------------------------------
    @property
    def backpressured(self) -> bool:
        """True while this site's outbound transport signals backpressure
        (a windowed-out backlog on some channel).  Always False on the
        seed path — the reliable network has no queues to fill."""
        return self.ctx.network.overloaded(self.site)

    def admit_put(self) -> None:
        """Admission control for an externally-driven PUT: raises
        :class:`~repro.sim.reliable.OverloadError` once this site's
        outbound backlog exceeds the policy's shed threshold, so callers
        shed load instead of queuing it unboundedly.  Workload-schedule
        writes bypass this (they *delay* under backpressure instead —
        see :meth:`repro.sim.process.Site._execute_next`).  No-op on the
        seed path."""
        self.ctx.network.check_overload_admission(self.site)

    def write(self, var: int, value: object, *, op_index: Optional[int] = None) -> WriteId:
        """Perform w(x_var)value locally and multicast it to all replicas."""
        if self._departed_status is not None:
            raise DepartedSiteError(self.site, self._departed_status)
        if self._wal is not None and not self._replaying:
            self._wal.log_write(var, value)
        write_id = self._perform_write(var, value, op_index=op_index)
        if self._m_log_entries is not None:
            # 1-in-4 deterministic sample, same idiom as _m_depth_skip
            self._m_log_skip += 1
            if self._m_log_skip >= 4:
                self._m_log_skip = 0
                self._m_log_entries.observe(self.log_size())
        return write_id

    @abc.abstractmethod
    def _perform_write(
        self, var: int, value: object, *, op_index: Optional[int] = None
    ) -> WriteId:
        """Protocol-specific write path (the pre-WAL ``write`` body)."""

    def read(
        self, var: int, on_complete: ReadCallback, *, op_index: Optional[int] = None
    ) -> None:
        """Perform r(x_var); ``on_complete`` fires when the value is known.

        Local reads complete synchronously (before this method returns);
        remote reads issue an FM to the predesignated replica and
        complete when the gated RM arrives.
        """
        if self._departed_status is not None:
            raise DepartedSiteError(self.site, self._departed_status)
        ctx = self.ctx
        if self._wal is not None and not self._replaying:
            self._wal.log_read(var)
        if ctx.placement.is_replicated_at(var, self.site):
            value, write_id = self._local_read(var)
            ctx.collector.record_operation(False, remote=False)
            ctx.history.record_read_op(
                time=ctx.clock.now, site=self.site, var=var, value=value,
                write_id=write_id, op_index=op_index, remote=False,
            )
            on_complete(value, write_id, False)
            return
        ctx.collector.record_operation(False, remote=True)
        target = ctx.placement.fetch_site(var, self.site)
        if self._liveness is not None and not self._liveness(target):
            # designated replica is (believed) down: fail over to the
            # first live replica of the variable, if any
            for alt in ctx.placement.replicas(var):
                if alt != self.site and alt != target and self._liveness(alt):
                    target = alt
                    break
        req_id = self._next_request_id
        self._next_request_id += 1
        self._fetches[req_id] = _OutstandingFetch(
            var=var, on_complete=on_complete, op_index=op_index,
            issued=ctx.clock.now, target=target,
        )
        ctx.history.record_fetch(time=ctx.clock.now, site=self.site, peer=target, var=var)
        self._send(
            target,
            FetchMessage(
                var=var, reader=self.site, request_id=req_id,
                requirements=self._fetch_requirements(var, target),
            ),
            MessageKind.FM,
        )

    # ------------------------------------------------------------------
    # message receipt subsystem
    # ------------------------------------------------------------------
    def on_message(self, src: int, message: object) -> None:
        """Network delivery entry point (dispatch by message class)."""
        if self._wal is not None and not self._replaying:
            # logged before processing: the reliable transport acks only
            # after this returns, so an acked message is always durable
            self._wal.log_recv(src, message)
        now = self.ctx.clock.now
        if isinstance(message, FetchMessage):
            # Serving is deferred until every write the reader causally
            # requires of this site has been applied here — otherwise the
            # reply could be causally behind the reader's own knowledge
            # (DESIGN.md, "gating fetch service").
            fm = _PendingFM(src, message, now, self._arrival_seq)
            self._arrival_seq += 1
            self._pending_fm.append(fm)
            if self._waiters is not None:
                self._mark_dirty(fm)
            self._drain()
            return
        if self._is_rm(message):
            rm = _PendingRM(src, message, now, self._arrival_seq)
            self._arrival_seq += 1
            self._pending_rm.append(rm)
            if self._waiters is not None:
                self._mark_dirty(rm)
            self._drain()
            return
        # anything else is this protocol's SM type
        sm = _PendingSM(src, message, now, self._arrival_seq)
        self._arrival_seq += 1
        self._pending_sm.append(sm)
        if len(self._pending_sm) > self.pending_sm_peak:
            self.pending_sm_peak = len(self._pending_sm)
        if self._m_pending_depth is not None:
            self._m_depth_skip += 1
            if self._m_depth_skip >= 4:
                self._m_depth_skip = 0
                self._m_pending_depth.observe(len(self._pending_sm))
        if self._waiters is not None:
            self._mark_dirty(sm)
        self._drain()

    # ------------------------------------------------------------------
    # dependency-indexed wakeup machinery
    # ------------------------------------------------------------------
    def _mark_dirty(self, entry: _Pending) -> None:
        """Queue ``entry`` for (re-)testing, preserving legacy scan order.

        The legacy pass structure is: one outer pass = SM sweep, then RM
        sweep, then FM sweep; a sweep visits entries in list (= seq)
        order once, and an entry that becomes applicable *behind* the
        sweep position is only caught by the next pass, while one *ahead*
        of it is caught by the same sweep.  Routing reproduces exactly
        that: a same-kind wake ahead of the active sweep joins it (in
        seq order); everything else goes to its kind's dirty list, which
        the current pass (for later kinds) or the next pass (for earlier
        or same-kind-behind wakes) will sweep.
        """
        entry.dirty = True
        k = entry.kind
        if k == self._scan_kind and entry.seq > self._scan_pos:
            insort(self._scan_batch, entry, key=_SEQ_KEY)
        else:
            self._dirty[k].append(entry)

    def _wake(self, entry: _Pending) -> None:
        entry.blocker = None
        if not entry.dirty:
            self._mark_dirty(entry)

    def _note_applied(self, j: int) -> None:
        """``applied[j]`` advanced: wake every entry whose registered
        threshold is now crossed.

        Concrete protocols call this after *every* mutation of their
        ``applied`` array — that call is what maintains the core
        invariant (a non-dirty entry's predicate is false), so the
        indexed drain never needs a full re-scan.
        """
        if self._waiters is None:
            return
        heap = self._waiters[j]
        if not heap:
            return
        a = self.applied[j]  # type: ignore[attr-defined]
        while heap and heap[0][0] <= a:
            threshold, _seq, entry = heappop(  # simcheck: ignore[SIM007] -- (threshold, seq) keys are unique, so pops are deterministic
                heap
            )
            # a stale registration (the entry re-registered elsewhere or
            # was already woken) no longer matches its heap tuple: skip
            if entry.blocker == (j, threshold):
                self._wake(entry)

    def _assert_wakeup_complete(self) -> None:
        """Debug mode: full re-scan proving the index missed nothing.

        At a drain fixpoint the legacy re-scan would find no applicable
        entry; if the wakeup index is correct, neither does this scan.
        """
        for p in self._pending_sm:
            if self._sm_ready(p.src, p.message):
                raise AssertionError(
                    f"wakeup index missed a ready SM at site {self.site}: {p!r}"
                )
        for r in self._pending_rm:
            if self._rm_ready(r.src, r.message):
                raise AssertionError(
                    f"wakeup index missed a ready RM at site {self.site}: {r!r}"
                )
        for f in self._pending_fm:
            if self._fm_ready(f.message):  # type: ignore[arg-type]
                raise AssertionError(
                    f"wakeup index missed a ready FM at site {self.site}: {f!r}"
                )

    # ------------------------------------------------------------------
    # machinery shared by all protocols
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Apply every buffered message whose predicate has become true.

        Indexed mode: only entries whose registered thresholds were
        crossed (plus new arrivals) are re-tested; the pass structure —
        SM sweep, RM sweep, FM sweep, repeated while progress — and the
        within-sweep seq order replicate the legacy fixpoint re-scan
        exactly (see ``_mark_dirty``).  Termination matches legacy: the
        outer loop continues only on actual activations, and every wake
        coincides with an activation in the same pass.  Guarded against
        reentrancy: completions invoked here may issue new operations
        synchronously.
        """
        if self._waiters is None:
            self._drain_legacy()
            return
        if self._draining:
            return
        dirty = self._dirty
        if dirty[0] or dirty[1] or dirty[2]:
            self._draining = True
            try:
                progress = True
                while progress:
                    progress = False
                    if dirty[0] and self._scan_sm():
                        progress = True
                    if dirty[1] and self._scan_rm():
                        progress = True
                    if dirty[2] and self._scan_fm():
                        progress = True
            finally:
                self._draining = False
        if _debug_wakeups:
            self._assert_wakeup_complete()

    def _scan_sm(self) -> bool:
        """One SM sweep over the dirty set, in seq order."""
        batch: list[_Pending] = self._dirty[0]
        self._dirty[0] = []
        batch.sort(key=_SEQ_KEY)
        self._scan_kind = 0
        self._scan_batch = batch
        progress = False
        ctx = self.ctx
        tracer = ctx.tracer
        pending = self._pending_sm
        waiters = self._waiters
        assert waiters is not None
        idx = 0
        try:
            while idx < len(batch):
                entry = batch[idx]
                idx += 1
                self._scan_pos = entry.seq
                entry.dirty = False
                if self._sm_ready(entry.src, entry.message):
                    pending.remove(entry)
                    delay = ctx.clock.now - entry.arrived
                    if delay > 0:
                        # only genuinely buffered updates count: an
                        # immediately-applicable SM has no gating cost
                        ctx.collector.record_activation_delay(delay)
                        if self._m_activation_wait is not None:
                            self._m_activation_wait.observe(delay)
                    if tracer is None:
                        self._apply_sm(entry.src, entry.message)
                    else:
                        # the activation event becomes the causal parent
                        # of anything the apply triggers (e.g. a newly
                        # unblocked fetch reply)
                        tracer.sm_activate(self.site, entry.message,
                                           ts=ctx.clock.now,
                                           arrived=entry.arrived)
                        try:
                            self._apply_sm(entry.src, entry.message)
                        finally:
                            tracer.pop()
                    progress = True
                else:
                    blocker = self._sm_blocker(entry.src, entry.message)
                    if blocker is None:
                        # no threshold known: fall back to every-pass
                        # re-testing (the legacy behavior for this entry)
                        entry.dirty = True
                        self._dirty[0].append(entry)
                    else:
                        entry.blocker = blocker
                        heappush(  # simcheck: ignore[SIM007] -- (threshold, seq) keys are unique, so pops are deterministic
                            waiters[blocker[0]],
                            (blocker[1], entry.seq, entry),
                        )
        finally:
            self._scan_kind = -1
            self._scan_pos = -1
            self._scan_batch = []
        return progress

    def _scan_rm(self) -> bool:
        """One RM sweep over the dirty set, in seq order."""
        batch: list[_Pending] = self._dirty[1]
        self._dirty[1] = []
        batch.sort(key=_SEQ_KEY)
        self._scan_kind = 1
        self._scan_batch = batch
        progress = False
        ctx = self.ctx
        tracer = ctx.tracer
        pending = self._pending_rm
        waiters = self._waiters
        assert waiters is not None
        idx = 0
        try:
            while idx < len(batch):
                entry = batch[idx]
                idx += 1
                self._scan_pos = entry.seq
                entry.dirty = False
                if self._rm_ready(entry.src, entry.message):
                    pending.remove(entry)
                    if tracer is None:
                        self._complete_rm(entry.src, entry.message)
                    else:
                        tracer.gated_resolved("rm.complete", self.site,
                                              entry.message,
                                              ts=ctx.clock.now,
                                              arrived=entry.arrived)
                        try:
                            self._complete_rm(entry.src, entry.message)
                        finally:
                            tracer.pop()
                    progress = True
                else:
                    blocker = self._rm_blocker(entry.src, entry.message)
                    if blocker is None:
                        entry.dirty = True
                        self._dirty[1].append(entry)
                    else:
                        entry.blocker = blocker
                        heappush(  # simcheck: ignore[SIM007] -- (threshold, seq) keys are unique, so pops are deterministic
                            waiters[blocker[0]],
                            (blocker[1], entry.seq, entry),
                        )
        finally:
            self._scan_kind = -1
            self._scan_pos = -1
            self._scan_batch = []
        return progress

    def _scan_fm(self) -> bool:
        """One FM sweep over the dirty set, in seq order."""
        batch: list[_Pending] = self._dirty[2]
        self._dirty[2] = []
        batch.sort(key=_SEQ_KEY)
        self._scan_kind = 2
        self._scan_batch = batch
        progress = False
        ctx = self.ctx
        tracer = ctx.tracer
        pending = self._pending_fm
        waiters = self._waiters
        assert waiters is not None
        idx = 0
        try:
            while idx < len(batch):
                entry = batch[idx]
                idx += 1
                self._scan_pos = entry.seq
                entry.dirty = False
                message = entry.message
                if self._fm_ready(message):  # type: ignore[arg-type]
                    pending.remove(entry)
                    if tracer is None:
                        self._serve_fetch(entry.src, message)  # type: ignore[arg-type]
                    else:
                        tracer.gated_resolved("fm.serve", self.site,
                                              message,
                                              ts=ctx.clock.now,
                                              arrived=entry.arrived)
                        try:
                            self._serve_fetch(entry.src, message)  # type: ignore[arg-type]
                        finally:
                            tracer.pop()
                    progress = True
                else:
                    blocker = self._fm_blocker(message)  # type: ignore[arg-type]
                    if blocker is None:
                        entry.dirty = True
                        self._dirty[2].append(entry)
                    else:
                        entry.blocker = blocker
                        heappush(  # simcheck: ignore[SIM007] -- (threshold, seq) keys are unique, so pops are deterministic
                            waiters[blocker[0]],
                            (blocker[1], entry.seq, entry),
                        )
        finally:
            self._scan_kind = -1
            self._scan_pos = -1
            self._scan_batch = []
        return progress

    def _drain_legacy(self) -> None:
        """The historical fixpoint re-scan (reference implementation).

        Applying one update can unblock others (and unblock remote-read
        completions, which in turn never block further updates but may
        enlarge the local log), so iterate until a full pass makes no
        progress.  Kept selectable so the equivalence property test can
        compare whole-run traces against the indexed drain.
        """
        if self._draining:
            return
        self._draining = True
        try:
            progress = True
            while progress:
                progress = False
                # index-based sweeps: nested calls may append to these
                # lists (appended items are visited later in the same
                # pass), and in-place deletion keeps the scan O(P) per
                # application instead of O(P^2)
                tracer = self.ctx.tracer
                i = 0
                while i < len(self._pending_sm):
                    pending = self._pending_sm[i]
                    if self._sm_ready(pending.src, pending.message):
                        del self._pending_sm[i]
                        delay = self.ctx.clock.now - pending.arrived
                        if delay > 0:
                            # only genuinely buffered updates count: an
                            # immediately-applicable SM has no gating cost
                            self.ctx.collector.record_activation_delay(delay)
                            if self._m_activation_wait is not None:
                                self._m_activation_wait.observe(delay)
                        if tracer is None:
                            self._apply_sm(pending.src, pending.message)
                        else:
                            # the activation event becomes the causal parent
                            # of anything the apply triggers (e.g. a newly
                            # unblocked fetch reply)
                            tracer.sm_activate(self.site, pending.message,
                                               ts=self.ctx.clock.now,
                                               arrived=pending.arrived)
                            try:
                                self._apply_sm(pending.src, pending.message)
                            finally:
                                tracer.pop()
                        progress = True
                    else:
                        i += 1
                i = 0
                while i < len(self._pending_rm):
                    pending_rm = self._pending_rm[i]
                    if self._rm_ready(pending_rm.src, pending_rm.message):
                        del self._pending_rm[i]
                        if tracer is None:
                            self._complete_rm(pending_rm.src, pending_rm.message)
                        else:
                            tracer.gated_resolved("rm.complete", self.site,
                                                  pending_rm.message,
                                                  ts=self.ctx.clock.now,
                                                  arrived=pending_rm.arrived)
                            try:
                                self._complete_rm(pending_rm.src, pending_rm.message)
                            finally:
                                tracer.pop()
                        progress = True
                    else:
                        i += 1
                i = 0
                while i < len(self._pending_fm):
                    pending_fm = self._pending_fm[i]
                    if self._fm_ready(pending_fm.message):  # type: ignore[arg-type]
                        del self._pending_fm[i]
                        if tracer is None:
                            self._serve_fetch(pending_fm.src, pending_fm.message)  # type: ignore[arg-type]
                        else:
                            tracer.gated_resolved("fm.serve", self.site,
                                                  pending_fm.message,
                                                  ts=self.ctx.clock.now,
                                                  arrived=pending_fm.arrived)
                            try:
                                self._serve_fetch(pending_fm.src, pending_fm.message)  # type: ignore[arg-type]
                            finally:
                                tracer.pop()
                        progress = True
                    else:
                        i += 1
        finally:
            self._draining = False

    def _send(self, dst: int, message: object, kind: MessageKind) -> None:
        """Price, record, and transmit one message.

        The priced metadata size is handed to the network so that, under
        a finite-bandwidth model, bigger metadata costs transmission
        time (size never affects timing in the default infinite-
        bandwidth model, matching the paper).
        """
        ctx = self.ctx
        collector = ctx.collector
        size = message.metadata_size(ctx.size_model)  # type: ignore[attr-defined]
        collector.record_message(kind, size)
        if self._m_ledger is not None:
            # same call site as the collector tally above, and the
            # measured window splits at the same warm-up instant
            # (mark_measuring) — so the ledger's totals agree with
            # Table II/III by construction (MetadataLedger.crosscheck).
            # The bump is inlined against a cached accumulator slot: a
            # call into the ledger per message costs more than the
            # accounting itself (see MetadataLedger.resolve).
            try:
                entry, mode = self._m_led_cache[kind]
            except KeyError:
                entry, mode = self._m_led_cache[kind] = \
                    self._m_ledger.resolve(
                        self.name, kind, self.site, message, ctx.size_model)
            entry[0] += 1
            if mode == 1:  # MODE_LOG_SIZE: opt-track SM/RM
                entry[1] += len(message.log)  # type: ignore[attr-defined]
                entry[2] += size
            elif mode == 2:  # MODE_REQUIREMENTS: fetches
                entry[1] += len(message.requirements)  # type: ignore[attr-defined]
            elif mode == 3:  # MODE_LOG: crp tuples
                entry[1] += len(message.log)  # type: ignore[attr-defined]
            elif mode == 4:  # MODE_OPAQUE
                entry[2] += size
            # MODE_CLOCK (0): size fixed by the slot key, nothing to add
        if ctx.tracer is not None:
            ctx.tracer.msg_send(self.site, dst, message,
                                ts=ctx.clock.now,
                                kind=kind.value, size=size)
        history = ctx.history
        if history.enabled:  # skip the kwargs + __name__ cost when off
            history.record_send(
                time=ctx.clock.now, site=self.site, peer=dst,
                detail=type(message).__name__,
            )
        ctx.network.send(self.site, dst, message, size_bytes=size)

    def _multicast(
        self,
        dests: Sequence[int],
        message_for: Callable[[int], object],
        kind: MessageKind = MessageKind.SM,
    ) -> int:
        """Metered multicast: one (possibly distinct) message per remote dest."""
        sent = 0
        for dst in dests:
            if dst == self.site:
                continue
            self._send(dst, message_for(dst), kind)
            sent += 1
        return sent

    def _fetch_requirements(self, var: int, target: int) -> tuple[tuple[int, int], ...]:
        """(writer, threshold) pairs the fetch target must have applied
        before it may serve this reader (see :class:`FetchMessage`).

        Defaults to none; partial-replication protocols override it with
        the writes in their causal past destined to ``target``.
        """
        return ()

    def _fm_ready(self, message: FetchMessage) -> bool:
        """Fetch-service gate: all of the reader's requirements applied.

        Compares against ``self.applied`` — every concrete protocol keeps
        that array, with requirement thresholds expressed in the same
        unit it uses (apply counts for Full-Track, write clocks for
        Opt-Track).
        """
        applied = self.applied  # type: ignore[attr-defined]
        return all(applied[j] >= c for j, c in message.requirements)

    def _fm_blocker(self, message: FetchMessage) -> Optional[tuple[int, int]]:
        """First unsatisfied requirement of a false ``_fm_ready``."""
        applied = self.applied  # type: ignore[attr-defined]
        for j, c in message.requirements:
            if applied[j] < c:
                return (j, c)
        return None

    def _sm_blocker(self, src: int, message: object) -> Optional[tuple[int, int]]:
        """First ``(writer, threshold)`` a false ``_sm_ready`` waits on.

        Contract: when ``_sm_ready`` is false, return a pair such that
        ``applied[writer] < threshold`` and the predicate cannot become
        true before ``applied[writer] >= threshold``.  ``None`` opts the
        entry into every-pass re-testing (always correct, never faster).
        """
        return None

    def _rm_blocker(self, src: int, message: object) -> Optional[tuple[int, int]]:
        """Same contract as :meth:`_sm_blocker`, for the RM gate."""
        return None

    def _complete_fetch(
        self, request_id: int, value: object, write_id: Optional[WriteId]
    ) -> None:
        """Finish the read blocked on ``request_id`` (RM gating already passed)."""
        fetch = self._fetches.pop(request_id, None)
        if fetch is None:
            # An RM answering a fetch whose continuation died in a crash:
            # the read was re-issued under a fresh request id after
            # recovery, so this late reply is dropped (its causal
            # metadata was already merged by the caller).
            self.stale_rms_dropped += 1
            self.ctx.collector.record_stale_rm()
            return
        ctx = self.ctx
        ctx.collector.record_fetch_rtt(ctx.clock.now - fetch.issued)
        ctx.history.record_read_op(
            time=ctx.clock.now, site=self.site, var=fetch.var, value=value,
            write_id=write_id, op_index=fetch.op_index, remote=True,
        )
        fetch.on_complete(value, write_id, True)

    # ------------------------------------------------------------------
    # state protocol subclasses must provide
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _local_read(self, var: int) -> tuple[object, Optional[WriteId]]:
        """Read the local replica, performing the protocol's merge-on-read."""

    @abc.abstractmethod
    def _serve_fetch(self, src: int, message: FetchMessage) -> None:
        """Answer a remote read with an RM carrying LastWriteOn metadata."""

    @abc.abstractmethod
    def _is_rm(self, message: object) -> bool:
        """True when ``message`` is this protocol's RM type."""

    @abc.abstractmethod
    def _sm_ready(self, src: int, message: object) -> bool:
        """Activation predicate A_OPT for a buffered SM."""

    @abc.abstractmethod
    def _apply_sm(self, src: int, message: object) -> None:
        """Apply an activated SM to the local replica."""

    def _rm_ready(self, src: int, message: object) -> bool:
        """Gating predicate for a buffered RM (overridden by partial-
        replication protocols; full-replication ones never see RMs)."""
        raise NotImplementedError

    def _complete_rm(self, src: int, message: object) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # crash-recovery: durable snapshots and deterministic WAL replay
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the complete logical state of this protocol instance.

        The blob must be sufficient for :meth:`restore` to rebuild an
        instance indistinguishable from this one to every peer: pending
        buffers, the fetch-request counter, the local replica slots, and
        whatever clocks/logs the concrete protocol adds via
        :meth:`_snapshot_extra`.  Messages inside pending buffers are
        shared, not copied — they are immutable by protocol convention.
        """
        return {
            "pending_sm": [(p.src, p.message, p.arrived) for p in self._pending_sm],
            "pending_rm": [(p.src, p.message, p.arrived) for p in self._pending_rm],
            "pending_fm": [(p.src, p.message, p.arrived) for p in self._pending_fm],
            "next_request_id": self._next_request_id,
            "slots": {
                var: (slot.value, slot.write_id, slot.applied_at)
                for var, slot in self.ctx.store._slots.items()
            },
            "extra": self._snapshot_extra(),
        }

    def restore(self, state: dict) -> None:
        """Overwrite volatile state from a :meth:`snapshot` blob.

        Every rebuilt pending entry is marked dirty and the wakeup index
        is cleared: the restored ``applied`` array says nothing about
        which registrations were live at capture time, so the next drain
        re-tests everything once and re-registers the survivors.
        """
        self._pending_sm = []
        self._pending_rm = []
        self._pending_fm = []
        for s, m, t in state["pending_sm"]:
            sm = _PendingSM(s, m, t, self._arrival_seq)
            self._arrival_seq += 1
            self._pending_sm.append(sm)
        for s, m, t in state["pending_rm"]:
            rm = _PendingRM(s, m, t, self._arrival_seq)
            self._arrival_seq += 1
            self._pending_rm.append(rm)
        for s, m, t in state["pending_fm"]:
            fm = _PendingFM(s, m, t, self._arrival_seq)
            self._arrival_seq += 1
            self._pending_fm.append(fm)
        if len(self._pending_sm) > self.pending_sm_peak:
            self.pending_sm_peak = len(self._pending_sm)
        if self._waiters is not None:
            self._waiters = [[] for _ in range(self.n)]
            self._dirty = [
                list(self._pending_sm),
                list(self._pending_rm),
                list(self._pending_fm),
            ]
            for lst in self._dirty:
                for entry in lst:
                    entry.dirty = True
        self._scan_kind = -1
        self._scan_pos = -1
        self._scan_batch = []
        self._next_request_id = state["next_request_id"]
        self._fetches.clear()
        self._draining = False
        slots = self.ctx.store._slots
        for var, (value, write_id, applied_at) in state["slots"].items():
            slot = slots[var]
            slot.value = value
            slot.write_id = write_id
            slot.applied_at = applied_at
        self._restore_extra(state["extra"])

    def replay(self, records: "Sequence[WalRecord]") -> int:
        """Re-execute WAL records through the normal protocol code paths.

        Every protocol here is a deterministic state machine over its
        inputs, so replay reconstructs the exact pre-crash logical
        state.  Side effects that already happened must not happen
        again: sends go to a null network (the originals are durable in
        the reliable-channel queues), metrics to a throwaway collector,
        and nothing is traced or WAL-logged.  Reads outstanding at the
        crash are cleared afterwards — their continuations died with
        the process and the scheduler re-issues the interrupted
        operation.
        """
        real_ctx = self.ctx
        self.ctx = replace(
            real_ctx,
            network=NullTransport(),
            collector=MetricsCollector(),
            history=HistoryRecorder(enabled=False),
            tracer=None,
            registry=None,
        )
        # the pre-bound instrument children would otherwise re-record
        # replayed arrivals/activations into the real registry
        saved_instruments = (self._m_activation_wait, self._m_pending_depth,
                             self._m_log_entries, self._m_ledger)
        self._m_activation_wait = None
        self._m_pending_depth = None
        self._m_log_entries = None
        self._m_ledger = None
        self._replaying = True
        try:
            for rec in records:
                if rec.kind == "recv":
                    self.on_message(rec.src, rec.message)
                elif rec.kind == "write":
                    self._perform_write(rec.var, rec.value)
                elif rec.kind == "read":
                    self.read(rec.var, lambda value, wid, remote: None)
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unknown WAL record kind {rec.kind!r}")
        finally:
            self._replaying = False
            self.ctx = real_ctx
            (self._m_activation_wait, self._m_pending_depth,
             self._m_log_entries, self._m_ledger) = saved_instruments
        self._fetches.clear()
        return len(records)

    # ------------------------------------------------------------------
    # elastic membership (see repro.sim.membership)
    # ------------------------------------------------------------------
    def on_view_change(self, view) -> None:
        """Adopt a new view epoch: remap/resize causality metadata.

        Called by the :class:`~repro.sim.membership.ViewManager` at a
        *drained* fence — no protocol message is in flight, so resizing
        is a pure pad-with-zeros (a site that did not exist yet trivially
        has zero causal knowledge).  Idempotent with respect to
        dimension: crash recovery re-announces the live view right after
        a (possibly pre-growth) checkpoint is restored, and the hooks
        grow from the structures' *actual* sizes.
        """
        self._members = view.members
        # clock-keyed ledger slots (full-track/optP) bake in the clock
        # dimension; a view change can resize it, so re-resolve lazily
        self._m_led_cache.clear()
        capacity = view.capacity
        if capacity > self.n:
            self.n = capacity
            self.ctx.n_sites = capacity
        if self._waiters is not None:
            while len(self._waiters) < capacity:
                self._waiters.append([])
        self._view_grow(capacity)
        self._view_change_extra(view)

    def _view_grow(self, capacity: int) -> None:
        """Pad protocol metadata (clocks, ``applied``, ...) to ``capacity``.

        Overridden by every concrete protocol; must grow from actual
        structure sizes (not ``self.n``) so it composes with restore().
        """

    def _view_change_extra(self, view) -> None:
        """Protocol-specific remapping beyond plain growth (e.g. clearing
        interned destination-set memos that referenced departed sites)."""

    def reset_writer_identity(self, site: int) -> None:
        """Reset writer-local counters after a donor-forked bootstrap.

        A joiner cloned from a donor snapshot must issue write ids as
        *itself* starting from clock 1; protocols whose write counter
        lives in shared structures (vector/matrix clock row) need no
        reset because the joiner's own row is zero-padded.
        """

    def mark_departed(self, status: str = "left") -> None:
        """This site is out of the view: fail its operations fast."""
        self._departed_status = status
        self._fetches.clear()

    def _broadcast_dests(self) -> Sequence[int]:
        """Destinations of a full-replication broadcast: every member.

        ``range(self.n)`` under static membership — byte-identical to the
        pre-membership behavior — and the current view's member tuple
        once a view change has happened.
        """
        members = self._members
        return range(self.n) if members is None else members

    def knows_write(self, wid: WriteId) -> Optional[bool]:
        """Whether this site has applied ``wid`` (anti-entropy digests).

        ``None`` means the protocol's ``applied`` bookkeeping cannot
        answer (Full-Track counts applications rather than writer
        clocks); the catch-up loop then relies on transport drain alone.
        """
        return None

    def _snapshot_extra(self) -> dict:
        """Protocol-specific clocks/logs for :meth:`snapshot`."""
        return {}

    def _restore_extra(self, extra: dict) -> None:
        """Inverse of :meth:`_snapshot_extra`."""

    # ------------------------------------------------------------------
    # introspection used by tests and the runner
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Buffered messages + outstanding fetches (0 at quiescence)."""
        return (len(self._pending_sm) + len(self._pending_rm)
                + len(self._pending_fm) + len(self._fetches))

    @property
    def reads_in_flight(self) -> int:
        """Remote reads issued but not yet completed.

        Program order runs *through* a pending read: injectors must not
        fire an operation at this site between a read's FM issue and its
        RM completion, or the site stops being a sequential process.
        """
        return len(self._fetches)

    @property
    def buffered_count(self) -> int:
        """Buffered messages only, *excluding* outstanding fetches.

        The view-change fence drains on this rather than
        :attr:`pending_count`: a fetch aimed at a crash-stopped site can
        never complete, and a fence that waited on it would deadlock
        (dimension-tolerant clock merges make the late reply safe).
        """
        return (len(self._pending_sm) + len(self._pending_rm)
                + len(self._pending_fm))

    def log_size(self) -> int:
        """Current causality-metadata size (entries); protocol-specific."""
        return 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} site={self.site} pending={self.pending_count}>"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[CausalProtocol]] = {}


def register_protocol(cls: type[CausalProtocol]) -> type[CausalProtocol]:
    """Class decorator adding a protocol to the by-name registry."""
    key = cls.name
    if key in _REGISTRY and _REGISTRY[key] is not cls:
        raise ValueError(f"duplicate protocol name {key!r}")
    _REGISTRY[key] = cls
    return cls


def create_protocol(name: str, ctx: ProtocolContext) -> CausalProtocol:
    """Instantiate a registered protocol by name."""
    return get_protocol_class(name)(ctx)


def get_protocol_class(name: str) -> type[CausalProtocol]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def protocol_names() -> list[str]:
    return sorted(_REGISTRY)
