"""Opt-Track: message- and space-optimal causal consistency under
partial replication.

Opt-Track (Section III-B) replaces Full-Track's n x n matrix with a
KS-style log of ``<writer, clock, Dests>`` records and prunes
destination information as soon as it becomes provably redundant, using
the two implicit conditions of the KS algorithm (see
:mod:`repro.core.log`).  The upper bound on the log is O(n^2) but the
amortized size is ~O(n) (Chandra et al. [18]), which is what produces
the paper's near-linear SM/RM growth in Figs. 2-4 versus Full-Track's
quadratic growth.

Per site s_i it maintains:

* ``clock_i`` — local write counter;
* ``Apply_i[j]`` — highest write-clock of ap_j applied at s_i (clocks of
  one writer increase along FIFO channels, so this identifies exactly
  which of ap_j's writes destined here have been applied);
* ``LOG_i`` — the KS log;
* ``LastWriteOn_i<h>`` — for each local replica x_h: the id, remaining
  destination set, and piggybacked log of the last write applied to it.

MERGE happens when a read returns a value (->co tracking); PURGE happens
on every write (condition 2) and on every merge (condition 1 + the
superseded-empty-record rule).  A higher write rate therefore means more
pruning and fewer merges — the mechanism behind the paper's observation
that Opt-Track's overhead *falls* as workloads become write-intensive.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..memory.store import WriteId
from ..metrics.collector import MessageKind
from .activation import opt_track_entries_blocker, opt_track_entries_ready
from .base import CausalProtocol, ProtocolContext, register_protocol
from .log import OptTrackLog, PiggybackEntry
from .messages import FetchMessage, OptTrackRM, OptTrackSM

__all__ = ["OptTrackProtocol"]


@register_protocol
class OptTrackProtocol(CausalProtocol):
    """The Opt-Track protocol of [12] for partially replicated DSM."""

    name = "opt-track"
    full_replication = False
    #: toggled off by the ablation bench to quantify what send-time
    #: destination pruning (implicit condition 2) buys
    prune_on_send: bool = True

    def __init__(self, ctx: ProtocolContext) -> None:
        super().__init__(ctx)
        self.clock = 0
        # plain list: the activation hot path reads scalars, and Python
        # ints index ~2x faster than NumPy scalars (docs/architecture.md)
        self.applied: list[int] = [0] * self.n
        self.log = OptTrackLog()
        # var -> (write id, write's remaining dests, piggybacked log)
        self.last_write_on: dict[
            int, tuple[WriteId, frozenset[int], tuple[PiggybackEntry, ...]]
        ] = {}
        # hot-path set constants and the (var, writer) -> dests-minus-
        # writer memo used on every SM apply
        self._me_set = frozenset((self.site,))
        self._apply_dests: dict[tuple[int, int], frozenset[int]] = {}

    # ------------------------------------------------------------------
    # application subsystem
    # ------------------------------------------------------------------
    def _perform_write(
        self, var: int, value: object, *, op_index: Optional[int] = None
    ) -> WriteId:
        ctx = self.ctx
        dests = ctx.placement.replica_set(var)
        self.clock += 1
        wid = WriteId(self.site, self.clock)

        ctx.collector.record_operation(True)
        ctx.history.record_write_op(
            time=ctx.clock.now, site=self.site, var=var, value=value,
            write_id=wid, op_index=op_index, dests=dests,
        )
        if ctx.tracer is not None:
            ctx.tracer.write_issued(self.site, ctx.clock.now, writer=wid.site,
                                    clock=wid.clock, var=var,
                                    log_size=len(self.log))

        # Per-destination piggyback views are computed against the
        # pre-write log; each copy keeps its own receiver in the
        # destination lists and drops the other co-destinations
        # (implicit condition 2).  The fully stripped shared view is also
        # the log stored alongside a local apply.
        if self.prune_on_send:
            views, stored_log = self.log.piggyback_views(dests)

            def make_sm(d: int) -> OptTrackSM:
                return OptTrackSM(var=var, value=value, write_id=wid,
                                  log=views[d], issued_at=ctx.clock.now)

        else:  # ablation mode: ship the unpruned log everywhere
            snapshot = self.log.snapshot()
            stored_log = snapshot

            def make_sm(d: int) -> OptTrackSM:
                return OptTrackSM(var=var, value=value, write_id=wid,
                                  log=snapshot, issued_at=ctx.clock.now)

        # placement.replicas() is exactly sorted(dests), pre-sorted
        self._multicast(ctx.placement.replicas(var), make_sm, MessageKind.SM)

        # Local log update: strip the new write's destinations from every
        # record (condition 2), add the record for the new write itself
        # (excluding self: applying locally is immediate), then purge.
        if self.prune_on_send:
            self.log.remove_dests(dests)
        self.log.insert(self.site, self.clock, dests - self._me_set)
        self.log.purge(self_site=self.site, applied=self.applied)
        ctx.collector.record_log_size(len(self.log))
        ctx.collector.record_dest_lists(self.log.dest_counts())

        if self.site in dests:
            self._apply_value(var, value, wid, dests, stored_log)
            self._drain()
        return wid

    def _local_read(self, var: int) -> tuple[object, Optional[WriteId]]:
        slot = self.ctx.store.read(var)
        stored = self.last_write_on.get(var)
        if stored is not None:
            wid, wdests, piggy = stored
            self._merge_on_read(wid, wdests, piggy)
        return slot.value, slot.write_id

    def _merge_on_read(
        self,
        wid: WriteId,
        wdests: frozenset[int],
        piggy: Iterable[PiggybackEntry],
    ) -> None:
        """MERGE the read value's causal past into the local log.

        The write itself joins the log too — future writes from this
        site must order after it at its remaining destinations.
        """
        incoming = list(piggy)
        incoming.append(PiggybackEntry(wid.site, wid.clock, wdests))
        self.log.merge(incoming, self_site=self.site, applied=self.applied)

    def _fetch_requirements(self, var: int, target: int) -> tuple[tuple[int, int], ...]:
        """Writes in this site's causal past destined to ``target``: the
        log records still naming it (including, always, this site's own
        latest write multicast to it — its record keeps ``target`` until
        a later own write to ``target`` supersedes it transitively)."""
        return self.log.requirements_for(target)

    # ------------------------------------------------------------------
    # message receipt subsystem
    # ------------------------------------------------------------------
    def _is_rm(self, message: object) -> bool:
        return isinstance(message, OptTrackRM)

    def _sm_ready(self, src: int, message: object) -> bool:
        assert isinstance(message, OptTrackSM)
        return opt_track_entries_ready(message.log, self.site, self.applied)

    def _sm_blocker(self, src: int, message: object) -> Optional[tuple[int, int]]:
        assert isinstance(message, OptTrackSM)
        return opt_track_entries_blocker(message.log, self.site, self.applied)

    def _apply_sm(self, src: int, message: object) -> None:
        assert isinstance(message, OptTrackSM)
        self.ctx.collector.record_visibility(self.ctx.clock.now - message.issued_at)
        wid = message.write_id
        # The write's remaining destinations exclude the writer: if it
        # replicates the variable it applied its own write at the write
        # event, causally before this receipt (condition 1 holds there).
        dkey = (message.var, wid.site)
        dests = self._apply_dests.get(dkey)
        if dests is None:
            dests = self._apply_dests[dkey] = (
                self.ctx.placement.replica_set(message.var) - {wid.site}
            )
        # Implicit condition 1: "this site is a destination" is dead
        # information from this apply onward — strip self before storing.
        # Only records naming this site need rebuilding; the rest of the
        # (immutable) piggybacked log is shared as-is.
        me = self.site
        me_s = {me}
        log = message.log
        rebuilt: Optional[list[PiggybackEntry]] = None
        for i, e in enumerate(log):
            if me in e.dests:
                if rebuilt is None:
                    rebuilt = list(log)
                rebuilt[i] = PiggybackEntry(e.writer, e.clock, e.dests - me_s)
        stored = log if rebuilt is None else tuple(rebuilt)
        self._apply_value(message.var, message.value, wid, dests, stored)

    def _apply_value(
        self,
        var: int,
        value: object,
        wid: WriteId,
        dests: frozenset[int],
        stored_log: tuple[PiggybackEntry, ...],
    ) -> None:
        ctx = self.ctx
        ctx.store.apply(var, value, wid, ctx.clock.now)
        if wid.clock <= self.applied[wid.site]:
            raise AssertionError(
                f"FIFO violation: applying {wid} after clock {self.applied[wid.site]}"
            )
        self.applied[wid.site] = wid.clock
        self._note_applied(wid.site)
        self.last_write_on[var] = (wid, dests - self._me_set, stored_log)
        if ctx.history.enabled:
            ctx.history.record_apply(time=ctx.clock.now, site=self.site, var=var, write_id=wid)

    def _serve_fetch(self, src: int, message: FetchMessage) -> None:
        slot = self.ctx.store.read(message.var)
        stored = self.last_write_on.get(message.var)
        if stored is None:
            wid: Optional[WriteId] = None
            rm_log: tuple[PiggybackEntry, ...] = ()
        else:
            wid, wdests, piggy = stored
            # LastWriteOn<h> as shipped: the write's own record rides with
            # its dependency log so the reader can merge all of it.
            rm_log = piggy + (PiggybackEntry(wid.site, wid.clock, wdests),)
        self.ctx.history.record_remote_return(
            time=self.ctx.clock.now, site=self.site, peer=src, var=message.var
        )
        self._send(
            src,
            OptTrackRM(
                var=message.var, value=slot.value, write_id=wid,
                log=rm_log, request_id=message.request_id,
            ),
            MessageKind.RM,
        )

    def _rm_ready(self, src: int, message: object) -> bool:
        assert isinstance(message, OptTrackRM)
        return opt_track_entries_ready(message.log, self.site, self.applied)

    def _rm_blocker(self, src: int, message: object) -> Optional[tuple[int, int]]:
        assert isinstance(message, OptTrackRM)
        return opt_track_entries_blocker(message.log, self.site, self.applied)

    def _complete_rm(self, src: int, message: object) -> None:
        assert isinstance(message, OptTrackRM)
        self.log.merge(message.log, self_site=self.site, applied=self.applied)
        self._complete_fetch(message.request_id, message.value, message.write_id)

    # ------------------------------------------------------------------
    # crash-recovery hooks
    # ------------------------------------------------------------------
    def _snapshot_extra(self) -> dict:
        return {
            "clock": self.clock,
            "applied": list(self.applied),
            "log": self.log.copy(),
            "last_write_on": dict(self.last_write_on),
        }

    def _restore_extra(self, extra: dict) -> None:
        self.clock = extra["clock"]
        # list(...) also normalizes NumPy arrays from pre-refactor blobs
        self.applied = [int(c) for c in extra["applied"]]
        self.log = extra["log"].copy()
        self.last_write_on = dict(extra["last_write_on"])

    def knows_write(self, wid: WriteId) -> Optional[bool]:
        # Apply_i[j] is the highest write clock of ap_j applied here and
        # clocks of destined-here writes increase along FIFO channels,
        # so the comparison is sound in both directions.
        return bool(self.applied[wid.site] >= wid.clock)

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def _view_grow(self, capacity: int) -> None:
        # the KS log is keyed by writer id, not indexed — no growth needed
        while len(self.applied) < capacity:
            self.applied.append(0)

    def _view_change_extra(self, view) -> None:
        # the (var, writer) -> dests memo interned the *old* placement's
        # replica sets; a view change remaps placement, so drop it
        self._apply_dests.clear()

    # ------------------------------------------------------------------
    def log_size(self) -> int:
        return len(self.log)


@register_protocol
class OptTrackNoPruneProtocol(OptTrackProtocol):
    """Ablation: Opt-Track without send-time destination pruning.

    Implicit condition 2 is the mechanism behind the KS algorithm's
    amortized-O(n) log (Chandra et al. [18]); disabling it leaves MERGE
    and condition-1 self-removal only.  Still causally *correct* (the
    metadata over-approximates), but logs and messages balloon — the
    quantitative gap is measured by ``benchmarks/bench_ablation_pruning``.
    Not part of the paper's protocol suite; do not use outside ablations.
    """

    name = "opt-track-noprune"
    prune_on_send = False
