"""optP: the Baldoni et al. [13] full-replication baseline.

optP implements causal memory with the optimal activation predicate but
tracks causality with a size-n ``Write`` vector piggybacked on every
update — O(n) metadata per SM and O(n^2 w) total, versus
Opt-Track-CRP's O(d) per SM.  It is the comparison baseline for Figs.
5-8 and Table III.

As with the other protocols the piggybacked clock merges into the local
clock only when a read returns the associated value (->co tracking).
Reads are always local; there is no FM/RM traffic.
"""

from __future__ import annotations

from typing import Optional

from ..memory.store import WriteId
from ..metrics.collector import MessageKind
from .activation import optp_sm_blocker, optp_sm_ready
from .base import CausalProtocol, ProtocolContext, register_protocol
from .clocks import VectorClock
from .messages import FetchMessage, OptPSM

__all__ = ["OptPProtocol"]


@register_protocol
class OptPProtocol(CausalProtocol):
    """The optP protocol of Baldoni et al. for fully replicated DSM."""

    name = "optp"
    full_replication = True

    def __init__(self, ctx: ProtocolContext) -> None:
        super().__init__(ctx)
        self.write_clock = VectorClock(self.n)
        # plain list: the activation hot path reads scalars, and Python
        # ints index ~2x faster than NumPy scalars (docs/architecture.md)
        self.applied: list[int] = [0] * self.n
        # var -> (write id, Write vector at write time); vectors stored
        # here are shared snapshots and must never be mutated.
        self.last_write_on: dict[int, tuple[WriteId, VectorClock]] = {}

    # ------------------------------------------------------------------
    # application subsystem
    # ------------------------------------------------------------------
    def _perform_write(
        self, var: int, value: object, *, op_index: Optional[int] = None
    ) -> WriteId:
        ctx = self.ctx
        clock = self.write_clock.increment(self.site)
        wid = WriteId(self.site, clock)
        snapshot = self.write_clock.copy()

        dests = self._broadcast_dests()
        ctx.collector.record_operation(True)
        ctx.history.record_write_op(
            time=ctx.clock.now, site=self.site, var=var, value=value,
            write_id=wid, op_index=op_index, dests=dests,
        )
        if ctx.tracer is not None:
            ctx.tracer.write_issued(self.site, ctx.clock.now, writer=wid.site,
                                    clock=wid.clock, var=var)
        sm = OptPSM(var=var, value=value, write_id=wid, vector=snapshot,
                    issued_at=ctx.clock.now)
        self._multicast(dests, lambda d: sm, MessageKind.SM)

        self._apply_value(var, value, wid, snapshot)
        self._drain()
        return wid

    def _local_read(self, var: int) -> tuple[object, Optional[WriteId]]:
        slot = self.ctx.store.read(var)
        stored = self.last_write_on.get(var)
        if stored is not None:
            self.write_clock.merge(stored[1])  # merge-on-read
        return slot.value, slot.write_id

    # ------------------------------------------------------------------
    # message receipt subsystem
    # ------------------------------------------------------------------
    def _is_rm(self, message: object) -> bool:
        return False

    def _serve_fetch(self, src: int, message: FetchMessage) -> None:
        raise RuntimeError("optP must never receive fetch requests")

    def _sm_ready(self, src: int, message: object) -> bool:
        assert isinstance(message, OptPSM)
        return optp_sm_ready(message.write_id.site, message.vector, self.applied)

    def _sm_blocker(self, src: int, message: object) -> Optional[tuple[int, int]]:
        assert isinstance(message, OptPSM)
        return optp_sm_blocker(message.write_id.site, message.vector, self.applied)

    def _apply_sm(self, src: int, message: object) -> None:
        assert isinstance(message, OptPSM)
        self.ctx.collector.record_visibility(self.ctx.clock.now - message.issued_at)
        self._apply_value(message.var, message.value, message.write_id, message.vector)

    def _apply_value(
        self, var: int, value: object, wid: WriteId, vector: VectorClock
    ) -> None:
        ctx = self.ctx
        ctx.store.apply(var, value, wid, ctx.clock.now)
        if self.applied[wid.site] != wid.clock - 1:
            raise AssertionError(
                f"activation violated FIFO: {wid} after count {self.applied[wid.site]}"
            )
        self.applied[wid.site] = wid.clock
        self._note_applied(wid.site)
        self.last_write_on[var] = (wid, vector)
        if ctx.history.enabled:
            ctx.history.record_apply(time=ctx.clock.now, site=self.site, var=var, write_id=wid)

    # ------------------------------------------------------------------
    # crash-recovery hooks
    # ------------------------------------------------------------------
    def _snapshot_extra(self) -> dict:
        return {
            "write_clock": self.write_clock.copy(),
            "applied": list(self.applied),
            "last_write_on": dict(self.last_write_on),
        }

    def _restore_extra(self, extra: dict) -> None:
        self.write_clock = extra["write_clock"].copy()
        # list(...) also normalizes NumPy arrays from pre-refactor blobs
        self.applied = [int(c) for c in extra["applied"]]
        self.last_write_on = dict(extra["last_write_on"])

    def knows_write(self, wid: WriteId) -> Optional[bool]:
        # Apply_i[j] counts ap_j's writes contiguously (every write goes
        # everywhere under full replication)
        return bool(self.applied[wid.site] >= wid.clock)

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def _view_grow(self, capacity: int) -> None:
        self.write_clock.grow(capacity)
        while len(self.applied) < capacity:
            self.applied.append(0)

    # ------------------------------------------------------------------
    def log_size(self) -> int:
        """optP metadata is a fixed-size vector: n counters."""
        return self.n
