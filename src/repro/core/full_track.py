"""Full-Track: matrix-clock causal consistency under partial replication.

Full-Track (Section III-A) is optimal in the Baldoni et al. sense — it
applies updates as early as the optimal activation predicate A_OPT
allows and tracks only the ->co relation, eliminating false causality
from mere message receipt — but it pays for that with an n x n ``Write``
matrix piggybacked on every SM and RM message, giving the O(n^2 p w +
n r (n - p)) total message-size complexity the paper derives.

Per site s_i it maintains:

* ``Write_i[j][k]`` — updates sent by ap_j to site s_k in the causal
  past (under ->co);
* ``Apply_i[j]`` — updates written by ap_j applied at s_i;
* ``LastWriteOn_i<h>`` — the Write matrix that travelled with the last
  write applied to local variable x_h.

The piggybacked matrix is merged into the local matrix only when a
*read* returns the associated value — never at message receipt — which
is precisely what makes the tracked relation ->co instead of Lamport's
happened-before.
"""

from __future__ import annotations

from typing import Optional

from ..memory.store import WriteId
from ..metrics.collector import MessageKind
from .activation import (
    full_track_rm_blocker,
    full_track_rm_ready,
    full_track_sm_blocker,
    full_track_sm_ready,
)
from .base import CausalProtocol, ProtocolContext, register_protocol
from .clocks import MatrixClock
from .messages import FetchMessage, FullTrackRM, FullTrackSM

__all__ = ["FullTrackProtocol"]


@register_protocol
class FullTrackProtocol(CausalProtocol):
    """The Full-Track protocol of [12] for partially replicated DSM."""

    name = "full-track"
    full_replication = False

    def __init__(self, ctx: ProtocolContext) -> None:
        super().__init__(ctx)
        self.write_clock = MatrixClock(self.n)
        # plain list: the activation hot path reads scalars, and Python
        # ints index ~2x faster than NumPy scalars (docs/architecture.md)
        self.applied: list[int] = [0] * self.n
        self._write_count = 0
        # var -> (write id, Write matrix at write time); matrices stored
        # here are shared snapshots and must never be mutated.
        self.last_write_on: dict[int, tuple[WriteId, MatrixClock]] = {}

    # ------------------------------------------------------------------
    # application subsystem
    # ------------------------------------------------------------------
    def _perform_write(
        self, var: int, value: object, *, op_index: Optional[int] = None
    ) -> WriteId:
        ctx = self.ctx
        dests = ctx.placement.replicas(var)
        self._write_count += 1
        wid = WriteId(self.site, self._write_count)
        self.write_clock.increment(self.site, dests)
        snapshot = self.write_clock.copy()

        ctx.collector.record_operation(True)
        ctx.history.record_write_op(
            time=ctx.clock.now, site=self.site, var=var, value=value,
            write_id=wid, op_index=op_index, dests=dests,
        )
        if ctx.tracer is not None:
            ctx.tracer.write_issued(self.site, ctx.clock.now, writer=wid.site,
                                    clock=wid.clock, var=var)
        sm = FullTrackSM(var=var, value=value, write_id=wid, matrix=snapshot,
                         issued_at=ctx.clock.now)
        self._multicast(dests, lambda d: sm, MessageKind.SM)

        if self.site in dests:
            self._apply_local(var, value, wid, snapshot)
            self._drain()  # a local apply can unblock buffered updates
        return wid

    def _local_read(self, var: int) -> tuple[object, Optional[WriteId]]:
        slot = self.ctx.store.read(var)
        stored = self.last_write_on.get(var)
        if stored is not None:
            # merge-on-read: this is where ->co knowledge propagates
            self.write_clock.merge(stored[1])
        return slot.value, slot.write_id

    def _fetch_requirements(self, var: int, target: int) -> tuple[tuple[int, int], ...]:
        """Writes in this site's causal past destined to ``target``:
        exactly the non-zero entries of the Write matrix column for it."""
        column = self.write_clock.column(target)
        return tuple((j, int(c)) for j, c in enumerate(column) if c > 0)

    # ------------------------------------------------------------------
    # message receipt subsystem
    # ------------------------------------------------------------------
    def _is_rm(self, message: object) -> bool:
        return isinstance(message, FullTrackRM)

    def _sm_ready(self, src: int, message: object) -> bool:
        assert isinstance(message, FullTrackSM)
        return full_track_sm_ready(
            message.matrix, message.write_id.site, self.site, self.applied
        )

    def _sm_blocker(self, src: int, message: object) -> Optional[tuple[int, int]]:
        assert isinstance(message, FullTrackSM)
        return full_track_sm_blocker(
            message.matrix, message.write_id.site, self.site, self.applied
        )

    def _apply_sm(self, src: int, message: object) -> None:
        assert isinstance(message, FullTrackSM)
        self.ctx.collector.record_visibility(self.ctx.clock.now - message.issued_at)
        self._apply_local(message.var, message.value, message.write_id, message.matrix)

    def _apply_local(
        self, var: int, value: object, wid: WriteId, matrix: MatrixClock
    ) -> None:
        ctx = self.ctx
        ctx.store.apply(var, value, wid, ctx.clock.now)
        self.applied[wid.site] += 1
        self._note_applied(wid.site)
        self.last_write_on[var] = (wid, matrix)
        if ctx.history.enabled:
            ctx.history.record_apply(time=ctx.clock.now, site=self.site, var=var, write_id=wid)

    def _serve_fetch(self, src: int, message: FetchMessage) -> None:
        slot = self.ctx.store.read(message.var)
        stored = self.last_write_on.get(message.var)
        if stored is None:
            wid, matrix = None, MatrixClock(self.n)  # never written: no deps
        else:
            wid, matrix = stored
        self.ctx.history.record_remote_return(
            time=self.ctx.clock.now, site=self.site, peer=src, var=message.var
        )
        self._send(
            src,
            FullTrackRM(
                var=message.var, value=slot.value, write_id=wid,
                matrix=matrix, request_id=message.request_id,
            ),
            MessageKind.RM,
        )

    def _rm_ready(self, src: int, message: object) -> bool:
        assert isinstance(message, FullTrackRM)
        return full_track_rm_ready(message.matrix, self.site, self.applied)

    def _rm_blocker(self, src: int, message: object) -> Optional[tuple[int, int]]:
        assert isinstance(message, FullTrackRM)
        return full_track_rm_blocker(message.matrix, self.site, self.applied)

    def _complete_rm(self, src: int, message: object) -> None:
        assert isinstance(message, FullTrackRM)
        self.write_clock.merge(message.matrix)
        self._complete_fetch(message.request_id, message.value, message.write_id)

    # ------------------------------------------------------------------
    # crash-recovery hooks
    # ------------------------------------------------------------------
    def _snapshot_extra(self) -> dict:
        # matrices in last_write_on are immutable-by-convention snapshots
        # and can be shared; write_clock is mutated by merges, so copy it
        # on both capture and restore (a checkpoint may be restored twice)
        return {
            "write_clock": self.write_clock.copy(),
            "applied": list(self.applied),
            "write_count": self._write_count,
            "last_write_on": dict(self.last_write_on),
        }

    def _restore_extra(self, extra: dict) -> None:
        self.write_clock = extra["write_clock"].copy()
        # list(...) also normalizes NumPy arrays from pre-refactor blobs
        self.applied = [int(c) for c in extra["applied"]]
        self._write_count = extra["write_count"]
        self.last_write_on = dict(extra["last_write_on"])

    # knows_write stays None: Apply_i counts applications destined here,
    # not writer clocks, so it cannot be compared against a WriteId

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def _view_grow(self, capacity: int) -> None:
        # grow from actual sizes: a freshly restored (pre-growth)
        # checkpoint may be smaller than self.n
        self.write_clock.grow(capacity)
        while len(self.applied) < capacity:
            self.applied.append(0)

    # ------------------------------------------------------------------
    def log_size(self) -> int:
        """Matrix clocks are fixed-size: n^2 counters per site."""
        return self.n * self.n
