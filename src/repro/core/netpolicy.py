"""Substrate-neutral transport policy: retransmission, flow control, RTO.

These objects parameterize the *reliable channel* abstraction behind the
:class:`~repro.core.ports.Transport` port.  They are pure data + pure
arithmetic — no timers, no sockets, no simulator — so both substrates
share them verbatim:

* the discrete-event chaos transport
  (:class:`~repro.sim.reliable.ReliableChannel`) arms kernel timers from
  the RTO the estimator computes;
* the live service transport (:mod:`repro.service.channel`) arms asyncio
  timers from the *same* estimator over wall-clock RTT samples.

Historically these lived in :mod:`repro.sim.reliable` (PR 8); they moved
here in the substrate-port refactor, following the same idiom as the
membership exceptions in :mod:`repro.core.errors` — the sim module
re-exports them, so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["OverloadError", "RetransmitPolicy", "RtoEstimator"]


class OverloadError(RuntimeError):
    """A write was refused because the site's outbound backlog exceeds
    the shed threshold — graceful degradation under overload, the
    transport analogue of PR-6's typed membership errors."""

    def __init__(self, site: int, backlog: int, threshold: int) -> None:
        super().__init__(
            f"site {site} is overloaded: {backlog} packets backlogged "
            f"(shed threshold {threshold}); retry once the backlog drains"
        )
        self.site = site
        self.backlog = backlog
        self.threshold = threshold


@dataclass(frozen=True)
class RetransmitPolicy:
    """Retransmission timer + flow-control parameters (TCP-ish, simplified)."""

    #: initial retransmission timeout; also the fixed RTO when
    #: ``adaptive=False`` (must exceed one round trip or the sender
    #: retransmits spuriously — allowed, just wasteful)
    base_rto_ms: float = 250.0
    #: multiplicative backoff applied after every timeout
    backoff: float = 2.0
    #: cap on the backed-off timeout
    max_rto_ms: float = 8000.0
    #: uniform jitter added to each armed timer (desynchronizes channels)
    jitter_ms: float = 25.0
    #: estimate the RTO per channel (Jacobson/Karels SRTT + RTTVAR with
    #: Karn's rule); ``False`` keeps the fixed ``base_rto_ms`` policy
    adaptive: bool = True
    #: floor of the adaptive RTO (spurious-retransmit guard)
    min_rto_ms: float = 50.0
    #: max packets in flight (unacked) per channel; excess sends queue
    #: in the channel's backlog and raise backpressure
    send_window: int = 64
    #: max out-of-order packets buffered per receiving channel; overflow
    #: is dropped (the sender's timer re-covers it)
    reorder_window: int = 256
    #: max packets retransmitted in one burst by a heal flush; the rest
    #: is paced across roughly one estimated RTT
    heal_burst: int = 16
    #: consecutive timeouts that trip a channel's circuit breaker into
    #: degraded probe mode (0 disables the breaker)
    breaker_failures: int = 6
    #: how long a backpressured site delays its next operation
    backpressure_delay_ms: float = 5.0
    #: consecutive delays before an operation proceeds anyway (bounds
    #: admission latency so a stuck channel cannot starve the schedule)
    backpressure_limit: int = 64
    #: total backlogged packets at one sender site beyond which PUT
    #: admission sheds with :class:`OverloadError` (0 disables shedding)
    shed_backlog: int = 512

    def __post_init__(self) -> None:
        if self.base_rto_ms <= 0 or self.max_rto_ms < self.base_rto_ms:
            raise ValueError("need 0 < base_rto_ms <= max_rto_ms")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.jitter_ms < 0:
            raise ValueError("jitter must be non-negative")
        if self.min_rto_ms <= 0 or self.min_rto_ms > self.max_rto_ms:
            raise ValueError("need 0 < min_rto_ms <= max_rto_ms")
        if self.send_window < 1:
            raise ValueError("send_window must be >= 1")
        if self.reorder_window < 1:
            raise ValueError("reorder_window must be >= 1")
        if self.heal_burst < 1:
            raise ValueError("heal_burst must be >= 1")
        if self.breaker_failures < 0:
            raise ValueError("breaker_failures must be >= 0")
        if self.backpressure_delay_ms <= 0:
            raise ValueError("backpressure_delay_ms must be positive")
        if self.backpressure_limit < 1:
            raise ValueError("backpressure_limit must be >= 1")
        if self.shed_backlog < 0:
            raise ValueError("shed_backlog must be >= 0")


class RtoEstimator:
    """Jacobson/Karels SRTT + RTTVAR estimator for one directed channel.

    Pure arithmetic over RTT samples in ms; the owning channel decides
    *which* samples to feed (Karn's rule: never sample a retransmitted
    packet's ack) and what to do with the resulting timeout.  Slotted —
    one instance per channel, touched on every ack.
    """

    __slots__ = ("policy", "srtt", "rttvar", "samples")

    def __init__(self, policy: RetransmitPolicy) -> None:
        self.policy = policy
        #: smoothed RTT in ms (None before the first sample)
        self.srtt: Optional[float] = None
        #: RTT mean-deviation in ms (0 before the first sample)
        self.rttvar = 0.0
        #: lifetime accepted sample count
        self.samples = 0

    def sample(self, rtt: float) -> None:
        """Fold one RTT sample in (alpha = 1/8, beta = 1/4)."""
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            err = rtt - self.srtt
            self.rttvar += 0.25 * (abs(err) - self.rttvar)
            self.srtt += 0.125 * err
        self.samples += 1

    def fresh_rto(self) -> float:
        """RTO for a freshly-restarted timer: ``SRTT + 4·RTTVAR`` clamped
        to ``[min_rto_ms, max_rto_ms]`` when samples exist, the static
        base otherwise (also the fixed-policy path)."""
        policy = self.policy
        if not policy.adaptive or self.srtt is None:
            return policy.base_rto_ms
        rto = self.srtt + 4.0 * self.rttvar
        return min(max(rto, policy.min_rto_ms), policy.max_rto_ms)

    def reset(self) -> None:
        """Forget all samples (estimator state dies with its process)."""
        self.srtt = None
        self.rttvar = 0.0

    def __repr__(self) -> str:
        return (f"RtoEstimator(srtt={self.srtt}, rttvar={self.rttvar:.3f}, "
                f"samples={self.samples})")
