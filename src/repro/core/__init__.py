"""Protocol implementations: the paper's contribution.

Importing this package registers all four protocols with the by-name
registry in :mod:`repro.core.base`.
"""

from .base import (
    CausalProtocol,
    ProtocolContext,
    create_protocol,
    get_protocol_class,
    protocol_names,
    register_protocol,
)
from .clocks import MatrixClock, VectorClock
from .full_track import FullTrackProtocol
from .hb_track import HBTrackProtocol
from .log import OptTrackLog, PiggybackEntry, TupleLog
from .netpolicy import OverloadError, RetransmitPolicy, RtoEstimator
from .opt_track import OptTrackNoPruneProtocol, OptTrackProtocol
from .opt_track_crp import OptTrackCRPProtocol
from .optp import OptPProtocol
from .ports import (
    Clock,
    Durability,
    NullTransport,
    Scheduler,
    TimerHandle,
    TimerService,
    Transport,
)

__all__ = [
    "CausalProtocol",
    "ProtocolContext",
    "create_protocol",
    "get_protocol_class",
    "protocol_names",
    "register_protocol",
    "Clock",
    "TimerHandle",
    "TimerService",
    "Scheduler",
    "Transport",
    "Durability",
    "NullTransport",
    "OverloadError",
    "RetransmitPolicy",
    "RtoEstimator",
    "MatrixClock",
    "VectorClock",
    "OptTrackLog",
    "TupleLog",
    "PiggybackEntry",
    "FullTrackProtocol",
    "HBTrackProtocol",
    "OptTrackNoPruneProtocol",
    "OptTrackProtocol",
    "OptTrackCRPProtocol",
    "OptPProtocol",
]
