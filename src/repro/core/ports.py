"""Substrate ports: the narrow seams between the protocols and their host.

The four protocol cores are pure state machines over their inputs — PR 9
machine-checks that (`repro check --effects --layers` certifies
``repro.core`` free of wall-clock / RNG / file / network / simulator
effects).  Everything stateful they touch arrives through
:class:`~repro.core.base.ProtocolContext` injection, and this module
names the *shape* of each injected seam as a PEP 544 structural
protocol:

:class:`Clock`
    timestamps (``ctx.clock.now``) — simulated milliseconds under the
    discrete-event kernel, wall milliseconds under the live service;
:class:`Transport`
    message egress plus the overload/backpressure signals the cores
    consult before admitting work;
:class:`TimerService` / :class:`TimerHandle`
    delayed callbacks (retransmission timers, heartbeats, checkpoint
    ticks).  The cores themselves never arm timers — the reliable
    channel and the failure detector do — but the seam is declared here
    because both substrates must provide it;
:class:`Scheduler`
    the common ``Clock + TimerService`` bundle infrastructure components
    (reliable channels, failure detector, durability layer) accept;
:class:`Durability`
    the write-ahead log the cores journal operations into before
    processing them (``None`` disables durability entirely).

Two implementations exist:

* the discrete-event substrate — :class:`~repro.sim.engine.Simulator`
  satisfies :class:`Clock`, :class:`TimerService`, and
  :class:`Scheduler`; :class:`~repro.sim.network.Network` satisfies
  :class:`Transport`; :class:`~repro.sim.checkpoint.SiteDisk` satisfies
  :class:`Durability`;
* the live service substrate (:mod:`repro.service`) — a wall
  clock/asyncio timer runtime, a real-socket transport, and the same
  protocol objects serving real traffic.

The protocols are ``runtime_checkable`` so conformance is asserted in
tests, but the real contract is structural: a substrate never inherits
from these classes, it simply has the right attributes.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable

__all__ = [
    "Clock",
    "TimerHandle",
    "TimerService",
    "Scheduler",
    "Transport",
    "Durability",
    "NullTransport",
]


@runtime_checkable
class Clock(Protocol):
    """Timestamps in milliseconds, monotone within one run.

    The unit is shared across substrates (the paper's latency models are
    calibrated in ms); the epoch is substrate-defined — simulation start
    for the kernel, node start for the live service.
    """

    @property
    def now(self) -> float:
        """Current time in milliseconds."""
        ...


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable pending timer returned by :meth:`TimerService.schedule`."""

    def cancel(self) -> None:
        """Best-effort cancellation; cancelling a fired timer is a no-op."""
        ...


@runtime_checkable
class TimerService(Protocol):
    """Delayed callbacks, in the owning :class:`Clock`'s time base."""

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> TimerHandle:
        """Run ``callback`` ``delay`` ms from now; returns a cancellable
        handle.  ``label`` is a pure debug annotation."""
        ...


@runtime_checkable
class Scheduler(Clock, TimerService, Protocol):
    """The ``Clock + TimerService`` bundle most infrastructure needs.

    :class:`~repro.sim.engine.Simulator` is one implementation (events
    on the kernel heap); the service runtime's asyncio wrapper is the
    other (``loop.call_later`` under a wall clock).
    """


@runtime_checkable
class Transport(Protocol):
    """Message egress plus the overload signals the cores consult.

    ``send`` must be reliable and FIFO per directed channel — the
    activation predicates assume the paper's communication substrate
    (Section IV): no loss, no duplication, no reordering within a
    channel.  How that guarantee is manufactured (kernel events, an
    ack/retransmit layer over a lossy wire, a TCP socket) is the
    implementation's business.
    """

    def send(
        self, src: int, dst: int, message: object, *, size_bytes: float = 0.0
    ) -> Optional[float]:
        """Transmit ``message`` on the ``src -> dst`` channel.

        Returns the scheduled/estimated delivery time when the substrate
        knows it, ``None`` otherwise (queued, retransmitting, ...).
        """
        ...

    def overloaded(self, site: int) -> bool:
        """True while ``site``'s outbound channels signal backpressure."""
        ...

    def check_overload_admission(self, site: int) -> None:
        """Raise :class:`~repro.core.netpolicy.OverloadError` once
        ``site``'s outbound backlog exceeds the shed threshold."""
        ...


@runtime_checkable
class Durability(Protocol):
    """Write-ahead journal the protocol feeds before processing.

    The contract (PR 3): an operation/receipt is logged *before* its
    effects happen, and the transport acknowledges a message only after
    ``on_message`` returns — so an acked message is always durable.
    """

    def log_write(self, var: int, value: object) -> None: ...

    def log_read(self, var: int) -> None: ...

    def log_recv(self, src: int, message: object) -> None: ...


class NullTransport:
    """A :class:`Transport` that drops everything: the canonical sink.

    Used wherever sends must be swallowed rather than performed — WAL
    replay re-executes protocol code whose original sends already
    happened (they live on durably in the reliable-channel queues), and
    tests drive protocol instances with no wiring at all.  Never
    overloaded, by construction.
    """

    __slots__ = ()

    def send(
        self, src: int, dst: int, message: object, *, size_bytes: float = 0.0
    ) -> Optional[float]:
        return None

    def overloaded(self, site: int) -> bool:
        return False

    def check_overload_admission(self, site: int) -> None:
        return None
