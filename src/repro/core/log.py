"""Dependency logs for the Opt-Track protocol family.

Opt-Track adapts the Kshemkalyani–Singhal (KS) optimal causal-ordering
algorithm to partially replicated shared memory.  Each site keeps a LOG
of records ``<j, clock_j, Dests>`` — one per write operation in the
causal past whose delivery information is still *necessary* — and prunes
destination information the moment it becomes redundant, using the two
implicit conditions of Section III-B:

1. once update m is applied at site s, "s is a destination of m" is
   useless in the causal future of that apply;
2. once a message is multicast to destination set D, "d in D is a
   destination of m" is useless (for earlier m) in the causal future of
   the send — except in the copy travelling to d itself, which still
   needs it for its activation predicate.

:class:`OptTrackLog` implements the log with MERGE (union, intersecting
destination sets of duplicate records — absence of a destination is
*knowledge*), PURGE (drop empty-destination records superseded by a newer
record from the same writer; the newest record per writer is retained
even when empty, because its presence lets later merges strip stale
destinations carried by other sites), and the per-destination piggyback
views used at multicast time.

:class:`TupleLog` is the degenerate full-replication log of
Opt-Track-CRP: at most one ``<j, clock_j>`` 2-tuple per writer, reset to
a singleton after every local write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

__all__ = ["PiggybackEntry", "OptTrackLog", "TupleLog"]


@dataclass(frozen=True, slots=True)
class PiggybackEntry:
    """Immutable snapshot of one log record as shipped inside a message."""

    writer: int
    clock: int
    dests: frozenset[int]

    def dest_count(self) -> int:
        return len(self.dests)


class OptTrackLog:
    """The KS-style local log of a site running Opt-Track.

    Pruning bookkeeping is incremental: the newest clock per writer and
    the set of present-but-empty records are maintained at mutation time
    (each mutation can only *shrink* a destination set, so emptiness is
    detected exactly where it happens), which turns PURGE from two full
    log scans into a dict walk plus an O(#empty) candidate check — the
    log is mutated on every write and every merge-on-read, so this is
    squarely on the hot path (docs/architecture.md).
    """

    __slots__ = ("_entries", "_emptied", "_newest", "_empty_keys", "_sorted",
                 "_frozen", "purged_records")

    def __init__(self, entries: Optional[Iterable[PiggybackEntry]] = None) -> None:
        # (writer, clock) -> mutable destination set
        self._entries: dict[tuple[int, int], set[int]] = {}
        # Tombstones: records whose destination set this site once proved
        # empty.  "Every destination of this write is covered" is
        # permanent knowledge (destinations only ever leave a record via
        # the sound implicit conditions), so a record seen here can never
        # usefully return — but stale copies of it live forever inside
        # frozen LastWriteOn snapshots and would otherwise re-infect the
        # log on every read of a rarely-rewritten variable.  A tombstone
        # is semantically the kept ∅-record, stored compactly, never
        # shipped, and not counted in the log size.
        self._emptied: set[tuple[int, int]] = set()
        # highest clock per writer among present records; invariant:
        # (j, _newest[j]) is always itself present (a record is only
        # deleted when a strictly newer record from its writer exists)
        self._newest: dict[int, int] = {}
        # present records whose destination set is empty — purge
        # candidates.  A dict (not a set) so iteration order is the
        # deterministic order emptiness was discovered in.
        self._empty_keys: dict[tuple[int, int], None] = {}
        # cached sorted (key, destination-set) pairs; None = invalidated
        # by a key change.  Pairs, not keys: iteration sites dominate the
        # multicast hot path and the pair saves a dict lookup per record
        # (the sets are aliases, so in-place dest mutations stay visible)
        self._sorted: Optional[list[tuple[tuple[int, int], set[int]]]] = None
        # interned frozen view per record, dropped whenever that record's
        # destination set shrinks — most records are untouched between
        # multicasts, so piggyback views and snapshots share one
        # PiggybackEntry per record instead of re-freezing each time
        self._frozen: dict[tuple[int, int], PiggybackEntry] = {}
        # lifetime count of records deleted by purge() — an always-on
        # int (the purge path is rare); sampled by the metrics registry
        self.purged_records = 0
        if entries is not None:
            for e in entries:
                self.insert(e.writer, e.clock, e.dests)

    def _sorted_items(self) -> list[tuple[tuple[int, int], set[int]]]:
        items = self._sorted
        if items is None:
            entries = self._entries
            items = self._sorted = [(k, entries[k]) for k in sorted(entries)]
        return items

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._entries

    def dests_of(self, writer: int, clock: int) -> frozenset[int]:
        """Remaining destination set recorded for one write (KeyError if absent)."""
        return frozenset(self._entries[(writer, clock)])

    def entries(self) -> Iterator[PiggybackEntry]:
        """Iterate records in deterministic (writer, clock) order."""
        frozen = self._frozen
        for key, rec in self._sorted_items():
            e = frozen.get(key)
            if e is None:
                e = frozen[key] = PiggybackEntry(key[0], key[1], frozenset(rec))
            yield e

    def requirements_for(self, target: int) -> tuple[tuple[int, int], ...]:
        """``(writer, clock)`` of every record still naming ``target``,
        in deterministic order — the fetch-requirement hot path, spared
        the frozenset-per-record cost of :meth:`entries`."""
        return tuple(
            key for key, rec in self._sorted_items() if target in rec
        )

    def dest_counts(self) -> list[int]:
        """Destination-list length per record (feeds the size model)."""
        return [len(d) for d in self._entries.values()]

    def max_clock(self, writer: int) -> int:
        """Highest clock recorded for ``writer`` (0 when none)."""
        return self._newest.get(writer, 0)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, writer: int, clock: int, dests: Iterable[int]) -> None:
        """Add one record; a duplicate key intersects destination sets.

        Intersection is the MERGE rule for duplicates: each copy of a
        record only ever *loses* destinations as redundancy is learned,
        so the combined knowledge is the intersection.
        """
        key = (writer, clock)
        if key in self._emptied:
            return  # intersection with the remembered ∅-record
        rec = self._entries.get(key)
        if rec is not None:
            if rec:
                before = len(rec)
                rec.intersection_update(dests)
                if len(rec) != before:
                    self._frozen.pop(key, None)
                    if not rec:
                        self._empty_keys[key] = None
        else:
            rec = set(dests)
            self._entries[key] = rec
            self._sorted = None
            if clock > self._newest.get(writer, 0):
                self._newest[writer] = clock
            if not rec:
                self._empty_keys[key] = None

    def remove_dests(self, dests: Iterable[int]) -> None:
        """Implicit condition 2 at multicast time: strip the new write's
        destinations from every stored record."""
        ds = set(dests)
        if not ds:
            return
        empty = self._empty_keys
        frozen = self._frozen
        for key, rec in self._entries.items():
            if rec and not ds.isdisjoint(rec):
                rec -= ds
                frozen.pop(key, None)
                if not rec:
                    empty[key] = None

    def purge(self, *, self_site: Optional[int] = None,
              applied: Optional[Mapping[int, int] | Sequence[int]] = None) -> None:
        """Apply the implicit-knowledge pruning rules in place.

        * With ``self_site`` and ``applied`` (per-writer highest applied
          clock at this site), drop ``self_site`` from any record already
          applied locally (implicit condition 1).
        * Drop empty-destination records superseded by a newer record
          from the same writer; keep the newest record per writer even
          when empty (it is the implicit information the paper insists
          must be retained under partial replication).
        """
        empty = self._empty_keys
        if self_site is not None and applied is not None:
            frozen = self._frozen
            for key, rec in self._entries.items():
                if self_site in rec and applied[key[0]] >= key[1]:
                    rec.discard(self_site)
                    frozen.pop(key, None)
                    if not rec:
                        empty[key] = None
        if empty:
            newest = self._newest
            stale = [key for key in empty if newest[key[0]] > key[1]]
            self.purged_records += len(stale)
            for key in stale:
                del self._entries[key]
                del empty[key]
                self._frozen.pop(key, None)
                self._emptied.add(key)
                self._sorted = None

    # ------------------------------------------------------------------
    # protocol operations
    # ------------------------------------------------------------------
    def piggyback_views(
        self, write_dests: frozenset[int]
    ) -> tuple[dict[int, tuple[PiggybackEntry, ...]], tuple[PiggybackEntry, ...]]:
        """All per-destination piggyback views for one multicast, at once.

        Semantically each destination d receives ``piggyback_for(d,
        write_dests)``; structurally the views differ from the common
        condition-2-stripped log only in the few records that name d, so
        the common part is built once and shared (a large constant-factor
        win: the naive per-destination construction dominated profile
        time on write-heavy runs).

        Records whose destination set empties under condition-2 stripping
        are *not* shipped — they carry no gating information and shipping
        them is exactly the "redundant destination information" the
        optimality claim forbids (it also feeds a log-growth loop: dead
        records would circulate through LastWriteOn and read merges
        forever).  The one exception is the newest record per writer,
        which travels even when empty so receivers can intersect away
        their own stale destination knowledge for it.

        Returns ``(views, stripped)`` where ``stripped`` is the shared
        fully-stripped view — also exactly the log to store alongside a
        local apply.
        """
        newest = self._newest
        frozen = self._frozen
        stripped: list[PiggybackEntry] = []
        append = stripped.append
        dest_order = sorted(write_dests)
        containing: dict[int, list] = {d: [] for d in dest_order}
        for key, rec in self._sorted_items():
            if write_dests.isdisjoint(rec):
                # common case: record untouched by the stripping — ship
                # the interned frozen view, nothing to patch per dest
                e = frozen.get(key)
                if e is None:
                    e = frozen[key] = PiggybackEntry(
                        key[0], key[1], frozenset(rec)
                    )
                append(e)
                continue
            j, c = key
            kept = rec - write_dests
            if not kept and newest[j] != c:
                # dead unless some destination in write_dests still needs
                # it — those copies are patched in per destination below
                for d in sorted(rec):  # rec == rec & write_dests here
                    containing[d].append(key)
                continue
            append(PiggybackEntry(j, c, frozenset(kept)))
            for d in sorted(rec & write_dests):
                containing[d].append(len(stripped) - 1)
        base = tuple(stripped)
        views: dict[int, tuple[PiggybackEntry, ...]] = {}
        for d in dest_order:
            marks = containing[d]
            if not marks:
                views[d] = base  # shared: d appears in no record
                continue
            lst: Optional[list[PiggybackEntry]] = None
            appended: list[PiggybackEntry] = []
            for m in marks:
                if isinstance(m, int):  # shipped record: re-add d to it
                    if lst is None:
                        lst = list(base)
                    e = lst[m]
                    lst[m] = PiggybackEntry(e.writer, e.clock, e.dests | {d})
                else:  # omitted record: only d still needs it
                    appended.append(PiggybackEntry(m[0], m[1], frozenset((d,))))
            if lst is None:
                # dead-record marks only append — concat, no base copy
                views[d] = base + tuple(appended)
            else:
                lst.extend(appended)
                views[d] = tuple(lst)
        return views, base

    def piggyback_for(
        self, dest: int, write_dests: frozenset[int]
    ) -> tuple[PiggybackEntry, ...]:
        """Log view piggybacked on the copy of a new multicast sent to ``dest``.

        For each record, destinations in ``write_dests`` are stripped
        (implicit condition 2 — the new write will enforce the dependency
        there transitively) *except* ``dest`` itself, which the receiver
        still needs for its activation predicate.  Records left dead by
        the stripping are omitted (see :meth:`piggyback_views`).

        Convenience single-destination wrapper around
        :meth:`piggyback_views`; the protocol hot path uses the batched
        form directly.
        """
        views, base = self.piggyback_views(write_dests)
        return views.get(dest, base)

    def merge(
        self,
        incoming: Iterable[PiggybackEntry],
        *,
        self_site: Optional[int] = None,
        applied: Optional[Mapping[int, int] | Sequence[int]] = None,
    ) -> None:
        """MERGE a piggybacked log into this one, then PURGE.

        Called when a read operation returns a value: the dependencies
        that travelled with the value join the reader's causal past
        (this is where the ->co tracking happens — *not* at receipt).
        """
        # inlined insert(): merge runs once per read return with tens of
        # records, so the per-record method dispatch is worth hoisting
        emptied = self._emptied
        entries = self._entries
        newest = self._newest
        empty = self._empty_keys
        frozen = self._frozen
        for e in incoming:
            writer = e.writer
            clock = e.clock
            key = (writer, clock)
            if key in emptied:
                continue
            rec = entries.get(key)
            if rec is not None:
                if rec:
                    before = len(rec)
                    rec.intersection_update(e.dests)
                    if len(rec) != before:
                        frozen.pop(key, None)
                        if not rec:
                            empty[key] = None
            else:
                entries[key] = rec = set(e.dests)
                self._sorted = None
                if clock > newest.get(writer, 0):
                    newest[writer] = clock
                if not rec:
                    empty[key] = None
        self.purge(self_site=self_site, applied=applied)

    def snapshot(self) -> tuple[PiggybackEntry, ...]:
        """Immutable copy of the full log (stored in ``LastWriteOn``)."""
        return tuple(self.entries())

    def copy(self) -> "OptTrackLog":
        """Deep copy, tombstones included.

        Crash-recovery checkpoints restore from copies; losing the
        ∅-record tombstones would let stale LastWriteOn snapshots
        re-infect the log after a rejoin.
        """
        new = OptTrackLog()
        new._entries = {key: set(dests) for key, dests in self._entries.items()}
        new._emptied = set(self._emptied)
        new._newest = dict(self._newest)
        new._empty_keys = dict(self._empty_keys)
        new._frozen = dict(self._frozen)  # immutable values; still valid
        new.purged_records = self.purged_records
        return new

    def __repr__(self) -> str:
        return f"OptTrackLog({len(self._entries)} entries)"


class TupleLog:
    """Opt-Track-CRP local log: at most one ``(writer, clock)`` per writer.

    A later clock from the same writer subsumes an earlier one (full
    replication + causal application order make the earlier write's
    delivery implied everywhere), so only the max clock per writer is
    kept — this is why the log holds at most ``d + 1`` entries, with d
    the number of reads since the last local write.
    """

    __slots__ = ("_clocks",)

    def __init__(self, entries: Optional[Iterable[tuple[int, int]]] = None) -> None:
        self._clocks: dict[int, int] = {}
        if entries is not None:
            for j, c in entries:
                self.add(j, c)

    def __len__(self) -> int:
        return len(self._clocks)

    def add(self, writer: int, clock: int) -> None:
        """Record a dependency on ``writer``'s write number ``clock``."""
        if clock > self._clocks.get(writer, 0):
            self._clocks[writer] = clock

    def clock_of(self, writer: int) -> int:
        """Recorded dependency clock for ``writer`` (0 when none)."""
        return self._clocks.get(writer, 0)

    def reset(self, writer: int, clock: int) -> None:
        """After a local write: the log becomes the singleton {own write}."""
        self._clocks.clear()
        self._clocks[writer] = clock

    def entries(self) -> tuple[tuple[int, int], ...]:
        """Deterministically ordered (writer, clock) pairs for piggybacking."""
        return tuple(sorted(self._clocks.items()))

    def merge(self, incoming: Iterable[tuple[int, int]]) -> None:
        for j, c in incoming:
            self.add(j, c)

    def copy(self) -> "TupleLog":
        return TupleLog(self._clocks.items())

    def __repr__(self) -> str:
        return f"TupleLog({self.entries()!r})"
