"""Opt-Track-CRP: Opt-Track specialized to full replication.

Under full replication (Section III-C) every write goes to every site,
so destination lists are pointless: each log record collapses to a
``(writer, clock)`` 2-tuple — O(1) instead of O(n) per record — and the
local log resets to the singleton {own write} after every write, because
a write's multicast transitively carries all its dependencies.  The log
therefore holds at most d + 1 entries (d = reads since the last local
write, at most one per distinct writing site), giving the O(n w d) total
message-size complexity that beats optP's O(n^2 w).

Reads are always local; no FM/RM traffic exists.  The SM activation
predicate combines a per-writer FIFO check (full replication means the
local applied clock of the writer must be exactly clock - 1) with the
piggybacked dependencies.
"""

from __future__ import annotations

from typing import Optional

from ..memory.store import WriteId
from ..metrics.collector import MessageKind
from .activation import crp_sm_blocker, crp_sm_ready
from .base import CausalProtocol, ProtocolContext, register_protocol
from .log import TupleLog
from .messages import CRPSM, FetchMessage

__all__ = ["OptTrackCRPProtocol"]


@register_protocol
class OptTrackCRPProtocol(CausalProtocol):
    """The Opt-Track-CRP protocol of [12] for fully replicated DSM."""

    name = "opt-track-crp"
    full_replication = True

    def __init__(self, ctx: ProtocolContext) -> None:
        super().__init__(ctx)
        self.clock = 0
        # plain list: the activation hot path reads scalars, and Python
        # ints index ~2x faster than NumPy scalars (docs/architecture.md)
        self.applied: list[int] = [0] * self.n
        self.log = TupleLog()
        # var -> write id of the last applied write; under full
        # replication only the 2-tuple itself needs storing (Section
        # III-C: causal application order covers its dependencies).
        self.last_write_on: dict[int, WriteId] = {}

    # ------------------------------------------------------------------
    # application subsystem
    # ------------------------------------------------------------------
    def _perform_write(
        self, var: int, value: object, *, op_index: Optional[int] = None
    ) -> WriteId:
        ctx = self.ctx
        self.clock += 1
        wid = WriteId(self.site, self.clock)

        dests = self._broadcast_dests()
        ctx.collector.record_operation(True)
        ctx.history.record_write_op(
            time=ctx.clock.now, site=self.site, var=var, value=value,
            write_id=wid, op_index=op_index, dests=dests,
        )
        if ctx.tracer is not None:
            ctx.tracer.write_issued(self.site, ctx.clock.now, writer=wid.site,
                                    clock=wid.clock, var=var,
                                    log_size=len(self.log))

        piggy = self.log.entries()  # the write's dependencies (pre-reset log)
        sm = CRPSM(var=var, value=value, write_id=wid, log=piggy,
                   issued_at=ctx.clock.now)
        self._multicast(dests, lambda d: sm, MessageKind.SM)

        # Local apply + log reset: the new write subsumes everything the
        # log used to carry.
        self._apply_value(var, value, wid)
        self.log.reset(self.site, self.clock)
        ctx.collector.record_log_size(len(self.log))
        self._drain()
        return wid

    def _local_read(self, var: int) -> tuple[object, Optional[WriteId]]:
        slot = self.ctx.store.read(var)
        wid = self.last_write_on.get(var)
        if wid is not None:
            # merge-on-read: at most one new entry, and a newer clock from
            # the same writer subsumes an older one
            self.log.add(wid.site, wid.clock)
            self.ctx.collector.record_log_size(len(self.log))
        return slot.value, slot.write_id

    # ------------------------------------------------------------------
    # message receipt subsystem
    # ------------------------------------------------------------------
    def _is_rm(self, message: object) -> bool:
        return False  # reads never leave the site under full replication

    def _serve_fetch(self, src: int, message: FetchMessage) -> None:
        raise RuntimeError("Opt-Track-CRP must never receive fetch requests")

    def _sm_ready(self, src: int, message: object) -> bool:
        assert isinstance(message, CRPSM)
        wid = message.write_id
        return crp_sm_ready(wid.site, wid.clock, message.log, self.applied)

    def _sm_blocker(self, src: int, message: object) -> Optional[tuple[int, int]]:
        assert isinstance(message, CRPSM)
        wid = message.write_id
        return crp_sm_blocker(wid.site, wid.clock, message.log, self.applied)

    def _apply_sm(self, src: int, message: object) -> None:
        assert isinstance(message, CRPSM)
        self.ctx.collector.record_visibility(self.ctx.clock.now - message.issued_at)
        self._apply_value(message.var, message.value, message.write_id)

    def _apply_value(self, var: int, value: object, wid: WriteId) -> None:
        ctx = self.ctx
        ctx.store.apply(var, value, wid, ctx.clock.now)
        if self.applied[wid.site] != wid.clock - 1:
            raise AssertionError(
                f"activation violated FIFO: {wid} after clock {self.applied[wid.site]}"
            )
        self.applied[wid.site] = wid.clock
        self._note_applied(wid.site)
        self.last_write_on[var] = wid
        if ctx.history.enabled:
            ctx.history.record_apply(time=ctx.clock.now, site=self.site, var=var, write_id=wid)

    # ------------------------------------------------------------------
    # crash-recovery hooks
    # ------------------------------------------------------------------
    def _snapshot_extra(self) -> dict:
        return {
            "clock": self.clock,
            "applied": list(self.applied),
            "log": self.log.copy(),
            "last_write_on": dict(self.last_write_on),
        }

    def _restore_extra(self, extra: dict) -> None:
        self.clock = extra["clock"]
        # list(...) also normalizes NumPy arrays from pre-refactor blobs
        self.applied = [int(c) for c in extra["applied"]]
        self.log = extra["log"].copy()
        self.last_write_on = dict(extra["last_write_on"])

    def knows_write(self, wid: WriteId) -> Optional[bool]:
        return bool(self.applied[wid.site] >= wid.clock)

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def _view_grow(self, capacity: int) -> None:
        while len(self.applied) < capacity:
            self.applied.append(0)

    def reset_writer_identity(self, site: int) -> None:
        # a donor-forked joiner inherited the donor's scalar write
        # counter; its own write ids must start at clock 1
        self.clock = 0

    # ------------------------------------------------------------------
    def log_size(self) -> int:
        return len(self.log)
