"""Membership exceptions raised by the protocol cores.

These historically lived in :mod:`repro.sim.membership`, but the
protocol layer itself raises :class:`DepartedSiteError` (a departed
site refuses new operations), which made ``repro.core`` depend on
simulator machinery at runtime.  The exception *vocabulary* belongs to
the layer that raises it; the sim keeps re-exporting these names so
existing call sites are unaffected.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "MembershipError",
    "UnknownSiteError",
    "DepartedSiteError",
]


class MembershipError(RuntimeError):
    """Base class for membership/view-change failures."""


class UnknownSiteError(MembershipError, ValueError):
    """A site id that was never part of any view epoch.

    Subclasses ``ValueError`` so callers that historically validated
    site ids with ``ValueError`` keep working unchanged.
    """

    def __init__(self, site: int, capacity: int) -> None:
        self.site = site
        self.capacity = capacity
        super().__init__(
            f"site {site} is unknown: no view epoch ever contained it "
            f"(ids 0..{capacity - 1} have been issued)"
        )


class DepartedSiteError(MembershipError):
    """An operation addressed a site that left or was evicted."""

    def __init__(self, site: int, status: str, epoch: Optional[int] = None) -> None:
        self.site = site
        self.status = status
        self.epoch = epoch
        when = f" in epoch {epoch}" if epoch is not None else ""
        super().__init__(
            f"site {site} is no longer a cluster member: it {status}{when}"
        )
