"""Activation predicates — the heart of causal memory (Section II-B).

When an update message arrives, a site may not apply it immediately: the
*activation predicate* A(m, e) stays false until every causally
preceding update destined to this site has been applied.  All four
protocols use the optimal predicate A_OPT of Baldoni et al., evaluated
over whatever metadata the protocol piggybacks:

* Full-Track — the n x n Write matrix column for this site;
* Opt-Track — the piggybacked KS-log records naming this site;
* Opt-Track-CRP — (writer, clock) 2-tuples plus per-writer FIFO counts;
* optP — the size-n Write vector.

The same predicates gate the completion of remote reads (RM messages)
under partial replication: a fetched value may causally depend on writes
destined to the reader that have not yet been applied there, and
returning it early would let the reader observe a causal future it has
not reached — see DESIGN.md, "gating remote-read returns".

These are pure functions of (metadata, local Apply state) so they can be
unit-tested exhaustively and shared between the SM and RM paths.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .clocks import MatrixClock, VectorClock
from .log import PiggybackEntry

__all__ = [
    "full_track_sm_ready",
    "full_track_rm_ready",
    "opt_track_entries_ready",
    "crp_sm_ready",
    "optp_sm_ready",
]


def full_track_sm_ready(
    matrix: MatrixClock,
    sender: int,
    site: int,
    applied_counts: np.ndarray,
) -> bool:
    """A_OPT for a Full-Track SM at ``site``.

    ``applied_counts[j]`` counts updates written by ap_j applied at this
    site.  The piggybacked matrix was incremented for this very message
    before sending, so the sender's own column entry is discounted by
    one: the message is applicable when it is the *next* update from its
    sender destined here and every other writer's destined-here updates
    have all arrived.
    """
    col = matrix.column(site)
    required = col.copy()
    required[sender] -= 1
    return bool((applied_counts >= required).all())


def full_track_rm_ready(
    matrix: MatrixClock,
    site: int,
    applied_counts: np.ndarray,
) -> bool:
    """Gate for a Full-Track RM at the reading ``site``.

    The piggybacked ``LastWriteOn`` matrix counts, in column ``site``,
    exactly the updates destined here that causally precede the write
    whose value was fetched; all of them must have been applied before
    the read may complete.  (The fetched write itself is never destined
    to the reader — otherwise no fetch would have been issued.)
    """
    return bool((applied_counts >= matrix.column(site)).all())


def opt_track_entries_ready(
    entries: Iterable[PiggybackEntry],
    site: int,
    applied_clocks: np.ndarray,
) -> bool:
    """A_OPT for Opt-Track metadata (both SM logs and RM logs).

    ``applied_clocks[j]`` holds the highest write-clock of ap_j applied
    at this site (clocks of one writer increase monotonically along its
    FIFO channels, so "highest applied" identifies the applied prefix of
    the writes destined here).  The message is applicable when every
    piggybacked record naming this site as a destination has been
    applied.
    """
    for e in entries:
        if site in e.dests and applied_clocks[e.writer] < e.clock:
            return False
    return True


def crp_sm_ready(
    writer: int,
    clock: int,
    log: Iterable[tuple[int, int]],
    applied_clocks: np.ndarray,
) -> bool:
    """A_OPT for an Opt-Track-CRP SM.

    Under full replication every write by ``writer`` reaches every site,
    so the local applied clock must be exactly ``clock - 1`` (the message
    is the writer's next update), and every piggybacked dependency must
    already be applied.
    """
    if applied_clocks[writer] != clock - 1:
        return False
    for j, c in log:
        if applied_clocks[j] < c:
            return False
    return True


def optp_sm_ready(
    writer: int,
    vector: VectorClock,
    applied_counts: np.ndarray,
) -> bool:
    """A_OPT for an optP SM (Baldoni et al.).

    ``W[writer]`` includes the message itself; all other components are
    pure dependencies.
    """
    if applied_counts[writer] != vector[writer] - 1:
        return False
    required = vector.v.copy()
    required[writer] -= 1
    return bool((applied_counts >= required).all())
