"""Activation predicates — the heart of causal memory (Section II-B).

When an update message arrives, a site may not apply it immediately: the
*activation predicate* A(m, e) stays false until every causally
preceding update destined to this site has been applied.  All four
protocols use the optimal predicate A_OPT of Baldoni et al., evaluated
over whatever metadata the protocol piggybacks:

* Full-Track — the n x n Write matrix column for this site;
* Opt-Track — the piggybacked KS-log records naming this site;
* Opt-Track-CRP — (writer, clock) 2-tuples plus per-writer FIFO counts;
* optP — the size-n Write vector.

The same predicates gate the completion of remote reads (RM messages)
under partial replication: a fetched value may causally depend on writes
destined to the reader that have not yet been applied there, and
returning it early would let the reader observe a causal future it has
not reached — see DESIGN.md, "gating remote-read returns".

These are pure functions of (metadata, local Apply state) so they can be
unit-tested exhaustively and shared between the SM and RM paths.

Each ``*_ready`` predicate has a ``*_blocker`` companion feeding the
dependency-indexed wakeup machinery in :mod:`repro.core.base`: when the
predicate is false, the blocker names the *first* unsatisfied
``(writer, threshold)`` pair — a threshold with ``applied[writer] <
threshold`` such that the predicate cannot become true before
``applied[writer]`` reaches it.  Every predicate here is a conjunction
of monotone per-writer comparisons, so the first failing conjunct is a
sound blocker.  (The one exception is the exact-match FIFO conjunct of
CRP/optP: if ``applied[writer]`` *overshot* the expected value — which
FIFO channels make impossible — the blocker returns ``None`` and the
entry falls back to every-pass re-testing rather than waiting forever.)

The predicates iterate plain Python scalars (``applied`` is a Python
list in the protocols, and clocks expose cached ``tolist`` views):
element-wise NumPy comparisons on size-n arrays cost more in ufunc
dispatch than the whole early-exit loop for the n used in the paper's
experiments — see docs/architecture.md, "Hot path & performance model".
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .clocks import MatrixClock, VectorClock
from .log import PiggybackEntry

__all__ = [
    "full_track_sm_ready",
    "full_track_sm_blocker",
    "full_track_rm_ready",
    "full_track_rm_blocker",
    "opt_track_entries_ready",
    "opt_track_entries_blocker",
    "crp_sm_ready",
    "crp_sm_blocker",
    "optp_sm_ready",
    "optp_sm_blocker",
]


def full_track_sm_ready(
    matrix: MatrixClock,
    sender: int,
    site: int,
    applied_counts: Sequence[int],
) -> bool:
    """A_OPT for a Full-Track SM at ``site``.

    ``applied_counts[j]`` counts updates written by ap_j applied at this
    site.  The piggybacked matrix was incremented for this very message
    before sending, so the sender's own column entry is discounted by
    one: the message is applicable when it is the *next* update from its
    sender destined here and every other writer's destined-here updates
    have all arrived.
    """
    col = matrix.column_list(site)
    for j, c in enumerate(col):
        if applied_counts[j] < (c - 1 if j == sender else c):
            return False
    return True


def full_track_sm_blocker(
    matrix: MatrixClock,
    sender: int,
    site: int,
    applied_counts: Sequence[int],
) -> Optional[tuple[int, int]]:
    """First unsatisfied ``(writer, required count)`` of a false SM gate."""
    col = matrix.column_list(site)
    for j, c in enumerate(col):
        required = c - 1 if j == sender else c
        if applied_counts[j] < required:
            return (j, required)
    return None


def full_track_rm_ready(
    matrix: MatrixClock,
    site: int,
    applied_counts: Sequence[int],
) -> bool:
    """Gate for a Full-Track RM at the reading ``site``.

    The piggybacked ``LastWriteOn`` matrix counts, in column ``site``,
    exactly the updates destined here that causally precede the write
    whose value was fetched; all of them must have been applied before
    the read may complete.  (The fetched write itself is never destined
    to the reader — otherwise no fetch would have been issued.)
    """
    col = matrix.column_list(site)
    for j, c in enumerate(col):
        if applied_counts[j] < c:
            return False
    return True


def full_track_rm_blocker(
    matrix: MatrixClock,
    site: int,
    applied_counts: Sequence[int],
) -> Optional[tuple[int, int]]:
    """First unsatisfied ``(writer, required count)`` of a false RM gate."""
    col = matrix.column_list(site)
    for j, c in enumerate(col):
        if applied_counts[j] < c:
            return (j, c)
    return None


def opt_track_entries_ready(
    entries: Iterable[PiggybackEntry],
    site: int,
    applied_clocks: Sequence[int],
) -> bool:
    """A_OPT for Opt-Track metadata (both SM logs and RM logs).

    ``applied_clocks[j]`` holds the highest write-clock of ap_j applied
    at this site (clocks of one writer increase monotonically along its
    FIFO channels, so "highest applied" identifies the applied prefix of
    the writes destined here).  The message is applicable when every
    piggybacked record naming this site as a destination has been
    applied.
    """
    for e in entries:
        if site in e.dests and applied_clocks[e.writer] < e.clock:
            return False
    return True


def opt_track_entries_blocker(
    entries: Iterable[PiggybackEntry],
    site: int,
    applied_clocks: Sequence[int],
) -> Optional[tuple[int, int]]:
    """First unapplied ``(writer, clock)`` record naming this site."""
    for e in entries:
        if site in e.dests and applied_clocks[e.writer] < e.clock:
            return (e.writer, e.clock)
    return None


def crp_sm_ready(
    writer: int,
    clock: int,
    log: Iterable[tuple[int, int]],
    applied_clocks: Sequence[int],
) -> bool:
    """A_OPT for an Opt-Track-CRP SM.

    Under full replication every write by ``writer`` reaches every site,
    so the local applied clock must be exactly ``clock - 1`` (the message
    is the writer's next update), and every piggybacked dependency must
    already be applied.
    """
    if applied_clocks[writer] != clock - 1:
        return False
    for j, c in log:
        if applied_clocks[j] < c:
            return False
    return True


def crp_sm_blocker(
    writer: int,
    clock: int,
    log: Iterable[tuple[int, int]],
    applied_clocks: Sequence[int],
) -> Optional[tuple[int, int]]:
    """First unsatisfied threshold of a false CRP gate.

    ``None`` on FIFO overshoot (``applied_clocks[writer] > clock - 1``,
    impossible over FIFO channels): the exact-match conjunct can never
    recover, so the entry is left to the every-pass fallback.
    """
    if applied_clocks[writer] < clock - 1:
        return (writer, clock - 1)
    if applied_clocks[writer] != clock - 1:
        return None
    for j, c in log:
        if applied_clocks[j] < c:
            return (j, c)
    return None


def optp_sm_ready(
    writer: int,
    vector: VectorClock,
    applied_counts: Sequence[int],
) -> bool:
    """A_OPT for an optP SM (Baldoni et al.).

    ``W[writer]`` includes the message itself; all other components are
    pure dependencies.
    """
    vec = vector.as_list()
    if applied_counts[writer] != vec[writer] - 1:
        return False
    for j, c in enumerate(vec):
        if j != writer and applied_counts[j] < c:
            return False
    return True


def optp_sm_blocker(
    writer: int,
    vector: VectorClock,
    applied_counts: Sequence[int],
) -> Optional[tuple[int, int]]:
    """First unsatisfied threshold of a false optP gate (``None`` on
    FIFO overshoot, as for :func:`crp_sm_blocker`)."""
    vec = vector.as_list()
    if applied_counts[writer] < vec[writer] - 1:
        return (writer, vec[writer] - 1)
    if applied_counts[writer] != vec[writer] - 1:
        return None
    for j, c in enumerate(vec):
        if j != writer and applied_counts[j] < c:
            return (j, c)
    return None
