"""Logical clocks tracking the ->co relation.

Two clock structures appear in the protocols:

* :class:`MatrixClock` — the n x n ``Write`` matrix of Full-Track.
  ``Write[j][k] = c`` means "c updates sent by application process ap_j to
  site s_k causally happened before (under ->co)".
* :class:`VectorClock` — the size-n ``Write`` vector of optP (Baldoni et
  al.), the full-replication degenerate case where all of ap_j's updates
  go to every site, so one counter per writer suffices.

Both track the *->co* relation rather than Lamport's happened-before:
piggybacked clocks are **not** merged at message receipt, only when a
later read returns the value that travelled with the message (Section
III-A).  The classes here are pure data structures; that merge-on-read
policy lives in the protocols.

NumPy arrays back both clocks: entrywise max over an n x n matrix is the
hot operation in Full-Track runs and vectorizes to a single ufunc call.
(Measured on the micro harness: a list-of-lists merge at n = 40 is ~50x
slower than ``np.maximum(..., out=...)``, so merges stay vectorized.)
Scalar *reads*, by contrast, are ~2x faster from plain Python ints than
from NumPy scalars, so the activation predicates consume lazily-cached
``tolist`` views — :meth:`MatrixClock.column_list` and
:meth:`VectorClock.as_list` — that the mutators invalidate.  Piggybacked
clocks are immutable by protocol convention, so a message's cached view
survives for its whole buffered lifetime.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["MatrixClock", "VectorClock"]


class MatrixClock:
    """An n x n matrix of update counters, indexed [writer][destination]."""

    __slots__ = ("n", "m", "_cols")

    def __init__(self, n: int, values: np.ndarray | None = None) -> None:
        if n <= 0:
            raise ValueError("matrix clock needs n >= 1")
        self.n = n
        if values is None:
            self.m = np.zeros((n, n), dtype=np.int64)
        else:
            arr = np.asarray(values, dtype=np.int64)
            if arr.shape != (n, n):
                raise ValueError(f"expected shape {(n, n)}, got {arr.shape}")
            if (arr < 0).any():
                raise ValueError("clock entries cannot be negative")
            self.m = arr.copy()
        #: per-destination ``column(...).tolist()`` cache (hot-path reads)
        self._cols: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    def increment(self, writer: int, dests: Iterable[int]) -> None:
        """Record one write by ``writer`` multicast to ``dests``."""
        for d in dests:
            self.m[writer, d] += 1
        if self._cols:
            self._cols.clear()

    def merge(self, other: "MatrixClock") -> None:
        """Entrywise max — the join of the ->co knowledge lattice.

        A smaller ``other`` (piggybacked in an earlier view epoch, before
        this site's clock grew) merges into the top-left block; sites
        that never existed when ``other`` was stamped implicitly carry
        zero entries.  Merging a *larger* clock is still an error — the
        receiver must be grown (``on_view_change``) first.
        """
        if other.n == self.n:
            np.maximum(self.m, other.m, out=self.m)
        elif other.n < self.n:
            k = other.n
            sub = self.m[:k, :k]
            np.maximum(sub, other.m, out=sub)
        else:
            raise ValueError("cannot merge clocks of different dimension")
        if self._cols:
            self._cols.clear()

    def grow(self, n: int) -> None:
        """Pad to dimension ``n`` with zero counters (view epoch grew).

        Idempotent: growing to the current (or a smaller) dimension is a
        no-op, so recovery can always re-grow to the live capacity.
        """
        if n <= self.n:
            return
        m = np.zeros((n, n), dtype=np.int64)
        m[: self.n, : self.n] = self.m
        self.m = m
        self.n = n
        if self._cols:
            self._cols.clear()

    def copy(self) -> "MatrixClock":
        return MatrixClock(self.n, self.m)

    def column(self, dest: int) -> np.ndarray:
        """Counters of updates destined to ``dest``, per writer (a view).

        ``dest`` beyond the matrix dimension reads as all zeros: a clock
        stamped before ``dest`` joined the view (a frozen piggybacked
        snapshot from an earlier epoch) knows no writes destined to it.
        This is the read-side mirror of the zero-padding in :meth:`grow`
        and the top-left-block rule in :meth:`merge`.
        """
        if dest >= self.n:
            return np.zeros(self.n, dtype=np.int64)
        return self.m[:, dest]

    def column_list(self, dest: int) -> list[int]:
        """:meth:`column` as cached plain ints (activation hot path)."""
        col = self._cols.get(dest)
        if col is None:
            if dest >= self.n:
                col = [0] * self.n
            else:
                col = self.m[:, dest].tolist()
            self._cols[dest] = col
        return col

    def __getitem__(self, idx: tuple[int, int]) -> int:
        return int(self.m[idx])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MatrixClock)
            and self.n == other.n
            and bool(np.array_equal(self.m, other.m))
        )

    def dominates(self, other: "MatrixClock") -> bool:
        """True when self >= other entrywise (lattice order)."""
        return bool((self.m >= other.m).all())

    def __repr__(self) -> str:
        return f"MatrixClock(n={self.n}, sum={int(self.m.sum())})"


class VectorClock:
    """A size-n vector of per-writer update counters (optP)."""

    __slots__ = ("n", "v", "_list")

    def __init__(self, n: int, values: Sequence[int] | np.ndarray | None = None) -> None:
        if n <= 0:
            raise ValueError("vector clock needs n >= 1")
        self.n = n
        if values is None:
            self.v = np.zeros(n, dtype=np.int64)
        else:
            arr = np.asarray(values, dtype=np.int64)
            if arr.shape != (n,):
                raise ValueError(f"expected shape {(n,)}, got {arr.shape}")
            if (arr < 0).any():
                raise ValueError("clock entries cannot be negative")
            self.v = arr.copy()
        #: ``v.tolist()`` cache (activation hot path)
        self._list: list[int] | None = None

    def increment(self, writer: int) -> int:
        """Count one write by ``writer``; returns the new counter value."""
        self.v[writer] += 1
        self._list = None
        return int(self.v[writer])

    def merge(self, other: "VectorClock") -> None:
        """Entrywise max (join).

        As with :meth:`MatrixClock.merge`, a smaller ``other`` (stamped
        in an earlier view epoch) merges into the prefix; a larger one
        is an error.
        """
        if other.n == self.n:
            np.maximum(self.v, other.v, out=self.v)
        elif other.n < self.n:
            k = other.n
            sub = self.v[:k]
            np.maximum(sub, other.v, out=sub)
        else:
            raise ValueError("cannot merge clocks of different dimension")
        self._list = None

    def grow(self, n: int) -> None:
        """Pad to size ``n`` with zero counters (idempotent)."""
        if n <= self.n:
            return
        v = np.zeros(n, dtype=np.int64)
        v[: self.n] = self.v
        self.v = v
        self.n = n
        self._list = None

    def as_list(self) -> list[int]:
        """The vector as cached plain ints (activation hot path)."""
        lst = self._list
        if lst is None:
            lst = self.v.tolist()
            self._list = lst
        return lst

    def copy(self) -> "VectorClock":
        return VectorClock(self.n, self.v)

    def __getitem__(self, writer: int) -> int:
        return int(self.v[writer])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, VectorClock)
            and self.n == other.n
            and bool(np.array_equal(self.v, other.v))
        )

    def dominates(self, other: "VectorClock") -> bool:
        return bool((self.v >= other.v).all())

    def __repr__(self) -> str:
        return f"VectorClock({self.v.tolist()})"
