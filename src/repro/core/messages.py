"""Message types exchanged by the protocols (Table I of the paper).

Three classes of messages exist:

* **SM** — multicast update carrying a write's value plus the protocol's
  causality metadata (a Write matrix, a KS log, a 2-tuple log, or a
  Write vector depending on the protocol);
* **FM** — constant-size remote-fetch request for a variable not
  replicated at the reader;
* **RM** — remote return carrying the value and the ``LastWriteOn<h>``
  metadata stored with it at the serving replica.

Every message knows how to price its own metadata against a
:class:`~repro.metrics.sizing.SizeModel`; the collector records that
size at *send* time, matching the paper's accounting (total size of all
messages generated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..memory.store import WriteId
from ..metrics.sizing import SizeModel
from .clocks import MatrixClock, VectorClock
from .log import PiggybackEntry

__all__ = [
    "FetchMessage",
    "FullTrackSM",
    "FullTrackRM",
    "OptTrackSM",
    "OptTrackRM",
    "CRPSM",
    "OptPSM",
]


@dataclass(frozen=True, slots=True)
class FetchMessage:
    """FM(x_h): ask a predesignated replica for x_h's value.

    ``request_id`` lets the reader pair the eventual RM with the blocked
    read operation (multiple outstanding fetches never happen for a
    sequential application process, but the id keeps the pairing explicit
    and checkable).

    ``requirements`` closes a soundness gap in the protocols as
    literally specified (see DESIGN.md, "gating fetch service"): it
    lists ``(writer, threshold)`` pairs — the writes in the reader's
    causal past destined to the serving site — and the server defers its
    reply until it has applied all of them.  Without this the server can
    answer with a value causally behind the reader's own knowledge
    (e.g. behind the reader's own still-buffered write to the same
    variable).  Message counts are unaffected: still one FM and one RM
    per remote read.
    """

    var: int
    reader: int
    request_id: int
    requirements: tuple[tuple[int, int], ...] = ()

    def metadata_size(self, model: SizeModel) -> int:
        return model.fm() + model.fm_requirement * len(self.requirements)


# ----------------------------------------------------------------------
# Full-Track (partial replication, matrix clocks)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class FullTrackSM:
    """SM(x_h, v, Write): update multicast with the full n x n matrix."""

    var: int
    value: object
    write_id: WriteId
    matrix: MatrixClock
    #: simulated issue time (ms); lets receivers report visibility lag
    issued_at: float = 0.0

    def metadata_size(self, model: SizeModel) -> int:
        return model.sm_full_track(self.matrix.n)


@dataclass(frozen=True, slots=True)
class FullTrackRM:
    """RM(v, LastWriteOn<h>): remote return with the stored matrix."""

    var: int
    value: object
    write_id: Optional[WriteId]
    matrix: MatrixClock
    request_id: int

    def metadata_size(self, model: SizeModel) -> int:
        return model.rm_full_track(self.matrix.n)


# ----------------------------------------------------------------------
# Opt-Track (partial replication, KS logs)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class OptTrackSM:
    """SM(x_h, v, site, clock, L_w): update multicast with a pruned log.

    ``log`` is the per-destination piggyback view produced by
    :meth:`~repro.core.log.OptTrackLog.piggyback_for` — different copies
    of the same write may carry differently pruned logs.
    """

    var: int
    value: object
    write_id: WriteId
    log: tuple[PiggybackEntry, ...]
    #: simulated issue time (ms); lets receivers report visibility lag
    issued_at: float = 0.0

    def metadata_size(self, model: SizeModel) -> int:
        total_dests = 0
        for e in self.log:  # explicit loop: sized on every send (hot)
            total_dests += len(e.dests)
        return (
            model.envelope_opt_track + model.var_id + model.value
            + model.site_id + model.clock
            + model.opt_track_log_shape(len(self.log), total_dests)
        )


@dataclass(frozen=True, slots=True)
class OptTrackRM:
    """RM(v, LastWriteOn<h>): value + the write's id and piggybacked log.

    ``write_id``/``log`` are ``None``/empty when the variable was never
    written (the read returns |bot| and establishes no dependency).
    """

    var: int
    value: object
    write_id: Optional[WriteId]
    log: tuple[PiggybackEntry, ...]
    request_id: int

    def metadata_size(self, model: SizeModel) -> int:
        total_dests = 0
        for e in self.log:  # explicit loop: sized on every send (hot)
            total_dests += len(e.dests)
        return (
            model.envelope_opt_track + model.value
            + model.site_id + model.clock
            + model.opt_track_log_shape(len(self.log), total_dests)
        )


# ----------------------------------------------------------------------
# Opt-Track-CRP (full replication, 2-tuple logs)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CRPSM:
    """SM(x_h, v, site, clock, LOG): update with (writer, clock) 2-tuples."""

    var: int
    value: object
    write_id: WriteId
    log: tuple[tuple[int, int], ...]
    #: simulated issue time (ms); lets receivers report visibility lag
    issued_at: float = 0.0

    def metadata_size(self, model: SizeModel) -> int:
        return model.sm_opt_track_crp(len(self.log))


# ----------------------------------------------------------------------
# optP (full replication, vector clocks) — Baldoni et al. baseline
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class OptPSM:
    """SM(x_h, v, site, Write): update with the size-n Write vector."""

    var: int
    value: object
    write_id: WriteId
    vector: VectorClock
    #: simulated issue time (ms); lets receivers report visibility lag
    issued_at: float = 0.0

    def metadata_size(self, model: SizeModel) -> int:
        return model.sm_optp(self.vector.n)
