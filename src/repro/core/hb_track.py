"""HB-Track: the non-optimal baseline that tracks happened-before.

The paper's protocols all track the ->co relation of Baldoni et al.: a
piggybacked clock joins the local clock only when a *read* returns the
value that travelled with it.  The classical alternative — what a causal
*broadcast* layer (Birman–Schiper–Stephenson style) does — merges the
piggybacked clock at message **receipt**, thereby tracking Lamport's
happened-before relation ->, a strict superset of ->co.

Every dependency ->co induces is also induced by ->, so HB-Track is
still causally consistent (safety is preserved; the property tests hold
it to the same checker).  What it adds is **false causality**: updates
wait for other updates merely because their writers had *received*
unrelated messages, not read them.  Under full replication the metadata
is the same size-n vector as optP, so the difference between optP and
HB-Track isolates exactly what the optimal activation predicate buys:
shorter activation buffering and lower visibility latency, measured by
``benchmarks/bench_ablation_false_causality.py``.

This protocol exists for that ablation; it is not part of the paper's
suite.
"""

from __future__ import annotations

from typing import Optional

from ..memory.store import WriteId
from ..metrics.collector import MessageKind
from .activation import optp_sm_blocker, optp_sm_ready
from .base import CausalProtocol, ProtocolContext, register_protocol
from .clocks import VectorClock
from .messages import FetchMessage, OptPSM

__all__ = ["HBTrackProtocol"]


@register_protocol
class HBTrackProtocol(CausalProtocol):
    """Full-replication causal memory tracking -> instead of ->co."""

    name = "hb-track"
    full_replication = True

    def __init__(self, ctx: ProtocolContext) -> None:
        super().__init__(ctx)
        self.write_clock = VectorClock(self.n)
        # plain list: the activation hot path reads scalars, and Python
        # ints index ~2x faster than NumPy scalars (docs/architecture.md)
        self.applied: list[int] = [0] * self.n
        self.last_write_on: dict[int, WriteId] = {}

    # ------------------------------------------------------------------
    # application subsystem
    # ------------------------------------------------------------------
    def _perform_write(
        self, var: int, value: object, *, op_index: Optional[int] = None
    ) -> WriteId:
        ctx = self.ctx
        clock = self.write_clock.increment(self.site)
        wid = WriteId(self.site, clock)
        snapshot = self.write_clock.copy()

        ctx.collector.record_operation(True)
        ctx.history.record_write_op(
            time=ctx.clock.now, site=self.site, var=var, value=value,
            write_id=wid, op_index=op_index,
        )
        if ctx.tracer is not None:
            ctx.tracer.write_issued(self.site, ctx.clock.now, writer=wid.site,
                                    clock=wid.clock, var=var)
        sm = OptPSM(var=var, value=value, write_id=wid, vector=snapshot,
                    issued_at=ctx.clock.now)
        self._multicast(range(self.n), lambda d: sm, MessageKind.SM)

        self._apply_value(var, value, wid, snapshot)
        self._drain()
        return wid

    def _local_read(self, var: int) -> tuple[object, Optional[WriteId]]:
        # no merge here: under -> tracking the dependency was already
        # absorbed when the update message was received
        slot = self.ctx.store.read(var)
        return slot.value, slot.write_id

    # ------------------------------------------------------------------
    # message receipt subsystem
    # ------------------------------------------------------------------
    def _is_rm(self, message: object) -> bool:
        return False

    def _serve_fetch(self, src: int, message: FetchMessage) -> None:
        raise RuntimeError("hb-track must never receive fetch requests")

    def _sm_ready(self, src: int, message: object) -> bool:
        assert isinstance(message, OptPSM)
        return optp_sm_ready(message.write_id.site, message.vector, self.applied)

    def _sm_blocker(self, src: int, message: object) -> Optional[tuple[int, int]]:
        assert isinstance(message, OptPSM)
        return optp_sm_blocker(message.write_id.site, message.vector, self.applied)

    def _apply_sm(self, src: int, message: object) -> None:
        assert isinstance(message, OptPSM)
        self.ctx.collector.record_visibility(self.ctx.clock.now - message.issued_at)
        self._apply_value(message.var, message.value, message.write_id,
                          message.vector)

    def _apply_value(
        self, var: int, value: object, wid: WriteId, vector: VectorClock
    ) -> None:
        ctx = self.ctx
        ctx.store.apply(var, value, wid, ctx.clock.now)
        if self.applied[wid.site] != wid.clock - 1:
            raise AssertionError(
                f"activation violated FIFO: {wid} after count {self.applied[wid.site]}"
            )
        self.applied[wid.site] = wid.clock
        self._note_applied(wid.site)
        self.last_write_on[var] = wid
        # merge-on-receipt: THE defining difference — every applied
        # update becomes a dependency of all future local writes,
        # whether or not its value is ever read (false causality)
        self.write_clock.merge(vector)
        if ctx.history.enabled:
            ctx.history.record_apply(time=ctx.clock.now, site=self.site, var=var, write_id=wid)

    # ------------------------------------------------------------------
    # crash-recovery hooks
    # ------------------------------------------------------------------
    def _snapshot_extra(self) -> dict:
        return {
            "write_clock": self.write_clock.copy(),
            "applied": list(self.applied),
            "last_write_on": dict(self.last_write_on),
        }

    def _restore_extra(self, extra: dict) -> None:
        self.write_clock = extra["write_clock"].copy()
        # list(...) also normalizes NumPy arrays from pre-refactor blobs
        self.applied = [int(c) for c in extra["applied"]]
        self.last_write_on = dict(extra["last_write_on"])

    def knows_write(self, wid: WriteId) -> Optional[bool]:
        return bool(self.applied[wid.site] >= wid.clock)

    # ------------------------------------------------------------------
    def log_size(self) -> int:
        return self.n
