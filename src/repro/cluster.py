"""Interactive facade: drive a replicated cluster operation by operation.

:func:`repro.experiments.runner.run_simulation` executes pre-planned
workloads; :class:`CausalCluster` instead exposes the protocols as a
library a downstream application would call directly::

    from repro import CausalCluster

    cluster = CausalCluster(n_sites=5, protocol="opt-track", n_vars=8)
    cluster.write(0, var=3, value=42)
    cluster.settle()                  # deliver everything in flight
    assert cluster.read(4, var=3) == 42
    cluster.check().raise_if_violated()

Operations execute at the cluster's current simulated time; ``advance``
moves time forward (delivering messages along the way), ``settle`` runs
to quiescence.  ``read`` drives the simulator just far enough for the
read to complete when it must fetch remotely, so it can simply return
the value.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .core.base import CausalProtocol, ProtocolContext, create_protocol, get_protocol_class
from .experiments.runner import build_placement  # reuse placement resolution
from .experiments.runner import SimulationConfig
from .memory.store import SiteStore, WriteId
from .metrics.collector import MetricsCollector
from .metrics.sizing import DEFAULT_SIZE_MODEL, SizeModel
from .obs.metrics import MetricsRegistry
from .obs.tracer import Tracer
from .sim.crash import CatchupPolicy, CrashRecoveryManager, install_crash_recovery
from .sim.engine import Simulator
from .sim.failure_detector import DetectorPolicy
from .sim.faults import FaultInjector, FaultPlan
from .sim.membership import (
    DepartedSiteError,
    MembershipPolicy,
    UnknownSiteError,
    View,
    ViewManager,
)
from .sim.network import LatencyModel, Network, UniformLatency
from .sim.reliable import RetransmitPolicy
from .verify.causal_checker import CheckReport, check_causal_consistency
from .verify.history import HistoryRecorder

__all__ = ["CausalCluster"]


class CausalCluster:
    """A causally consistent replicated key-value memory, driven manually."""

    def __init__(
        self,
        n_sites: int,
        *,
        protocol: str = "opt-track",
        n_vars: int = 16,
        replication_factor: Optional[int] = None,
        latency: Optional[LatencyModel] = None,
        bandwidth_bytes_per_ms: Optional[float] = None,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
        placement: str = "round-robin",
        seed: int = 0,
        record_history: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        fault_seed: int = 0,
        retransmit: Optional[RetransmitPolicy] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        crash_recovery: bool = False,
        checkpoint_interval_ms: Optional[float] = None,
        detector: Optional[DetectorPolicy] = None,
        catchup: Optional[CatchupPolicy] = None,
        membership_policy: Optional[MembershipPolicy] = None,
        auto_evict_after_ms: Optional[float] = None,
    ) -> None:
        # Reuse SimulationConfig purely for validation + placement logic.
        config = SimulationConfig(
            protocol=protocol,
            n_sites=n_sites,
            n_vars=n_vars,
            replication_factor=replication_factor,
            placement=placement,
            seed=seed,
            latency=latency if latency is not None else UniformLatency(),
            bandwidth_bytes_per_ms=bandwidth_bytes_per_ms,
            size_model=size_model,
            fault_plan=fault_plan,
            fault_seed=fault_seed,
            retransmit=retransmit,
            checkpoint_interval_ms=checkpoint_interval_ms,
            detector=detector,
            catchup=catchup,
        )
        self.config = config
        self.placement = build_placement(config)
        self.sim = Simulator()
        self.collector = MetricsCollector()
        self.faults: Optional[FaultInjector] = None
        if fault_plan is not None:
            self.faults = FaultInjector(
                fault_plan,
                rng=np.random.default_rng(
                    np.random.SeedSequence(fault_seed).spawn(1)[0]
                ),
            )
        self.tracer = tracer
        if tracer is not None:
            self.sim.observer = tracer.on_sim_event
            tracer.meta.setdefault("protocol", protocol)
            tracer.meta.setdefault("n_sites", n_sites)
            tracer.meta.setdefault("seed", seed)
        self.registry = registry
        if registry is not None:
            if registry.ledger.base_n is None:
                registry.ledger.base_n = n_sites
            registry.install_kernel_hook(self.sim)
        self.network = Network(
            self.sim, n_sites, config.latency,
            rng=np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0]),
            bandwidth_bytes_per_ms=bandwidth_bytes_per_ms,
            faults=self.faults, collector=self.collector, retransmit=retransmit,
            tracer=tracer, registry=registry,
        )
        self.collector.start_measuring()  # no warm-up in interactive mode
        if registry is not None:
            registry.ledger.mark_measuring()
        self.history = HistoryRecorder(enabled=record_history)
        self.protocols: list[CausalProtocol] = []
        for i in range(n_sites):
            ctx = ProtocolContext(
                site=i,
                n_sites=n_sites,
                placement=self.placement,
                store=SiteStore(i, self.placement.vars_at(i)),
                network=self.network,
                clock=self.sim,
                collector=self.collector,
                size_model=size_model,
                history=self.history,
                tracer=tracer,
                registry=registry,
            )
            proto = create_protocol(protocol, ctx)
            self.network.register(i, proto.on_message)
            self.protocols.append(proto)
        # Crash-recovery machinery must attach at construction time:
        # checkpoints and the WAL only cover operations issued after the
        # durability layer hooks in, so enabling it lazily at the first
        # crash_site() would restore from an incomplete history.
        self.crash_manager: Optional[CrashRecoveryManager] = None
        plan_crashes = fault_plan.crashes if fault_plan is not None else ()
        if crash_recovery or checkpoint_interval_ms is not None or plan_crashes:
            self.crash_manager = install_crash_recovery(
                self.sim, self.network, self.protocols,
                sites=None,  # no pre-planned schedules in interactive mode
                crashes=plan_crashes,
                checkpoint_interval_ms=checkpoint_interval_ms,
                detector_policy=detector,
                catchup=catchup,
                # interactive crashes need the detector: it is what pauses
                # retransmission into the dead site so settle() terminates
                with_detector=(
                    True if self.network.transport is not None
                    and (crash_recovery or bool(plan_crashes)) else None
                ),
                collector=self.collector,
                tracer=tracer,
            )
            if registry is not None:
                self.crash_manager.attach_registry(registry)
        self._op_counter = 0
        # Elastic membership: the view manager is built lazily on first
        # use so static clusters stay byte-identical to the seed path.
        self._membership_policy = membership_policy
        self.view_manager: Optional[ViewManager] = None
        if auto_evict_after_ms is not None:
            self._ensure_view_manager().enable_eviction(auto_evict_after_ms)

    # ------------------------------------------------------------------
    @property
    def n_sites(self) -> int:
        """Current id-space size (grows when sites join; never shrinks)."""
        return self.network.n_sites

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.sim.now

    def _check_site(self, site: int) -> None:
        if self.view_manager is not None:
            # typed membership errors: UnknownSiteError for never-issued
            # ids, DepartedSiteError for left/evicted ones
            self.view_manager.check_member(site)
            return
        if not 0 <= site < self.n_sites:
            # subclasses ValueError, so pre-membership callers still work
            raise UnknownSiteError(site, self.n_sites)

    def _check_up(self, site: int) -> None:
        if self.crash_manager is not None and self.crash_manager.is_down(site):
            raise RuntimeError(
                f"site {site} is down; recover_site({site}) first"
            )

    def _wake(self) -> None:
        """Restart infrastructure ticks that stopped at quiescence."""
        if self.crash_manager is not None:
            self.crash_manager.wake()

    # ------------------------------------------------------------------
    def write(self, site: int, var: int, value: object) -> WriteId:
        """Issue w(x_var)value at ``site`` at the current simulated time.

        Interactive writes go through overload admission: once the
        site's outbound transport backlog exceeds the retransmit
        policy's shed threshold the write is refused with
        :class:`~repro.sim.reliable.OverloadError` (graceful shedding)
        instead of queuing unboundedly.  Advance the simulation to let
        the backlog drain, then retry.
        """
        self._check_site(site)
        self._check_up(site)
        self.protocols[site].admit_put()
        self._wake()
        self._op_counter += 1
        return self.protocols[site].write(var, value, op_index=self._op_counter)

    def read(self, site: int, var: int) -> object:
        """Issue r(x_var) at ``site``; returns the value (driving the
        simulator forward if a remote fetch is needed)."""
        value, _ = self.read_with_id(site, var)
        return value

    def read_with_id(self, site: int, var: int) -> tuple[object, Optional[WriteId]]:
        """Like :meth:`read` but also returns the write id of the value."""
        self._check_site(site)
        self._check_up(site)
        self._wake()
        self._op_counter += 1
        done: list[tuple[object, Optional[WriteId]]] = []

        def on_complete(value: object, wid: Optional[WriteId], was_remote: bool) -> None:
            done.append((value, wid))

        self.protocols[site].read(var, on_complete, op_index=self._op_counter)
        while not done:
            if not self.sim.step():
                raise RuntimeError(
                    f"read of var {var} at site {site} can never complete "
                    "(no events left — protocol deadlock?)"
                )
        return done[0]

    # ------------------------------------------------------------------
    def advance(self, delta_ms: float) -> None:
        """Run the simulation ``delta_ms`` ms forward."""
        if delta_ms < 0:
            raise ValueError("cannot advance by a negative duration")
        self.sim.run(until=self.sim.now + delta_ms)

    def settle(self) -> None:
        """Run until every in-flight message is delivered and applied."""
        transport = self.network.transport
        if transport is not None:
            blocked = transport.blocked_channels(self.sim.now)
            if blocked:
                raise RuntimeError(
                    f"cluster cannot settle while a partition is active "
                    f"(channels blocked: {sorted(blocked)}); call heal() first"
                )
        self.sim.run()
        if self.crash_manager is not None and self.crash_manager.down:
            raise RuntimeError(
                f"cluster cannot settle while sites are down "
                f"({sorted(self.crash_manager.down)}); recover them first"
            )
        held = self._held_by_site()
        if held:
            raise RuntimeError(
                f"cluster cannot settle while sites are paused "
                f"(held messages per site: {held}); resume them first"
            )
        undrained = {p.site: p.pending_count for p in self.protocols if p.pending_count}
        if undrained:
            raise RuntimeError(
                f"cluster cannot settle; buffers stuck: {undrained} "
                f"(held messages per site: {self._held_by_site()})"
            )

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def pause_site(self, site: int) -> None:
        """Hold all deliveries to ``site`` (model a stalled process)."""
        self._check_site(site)
        self._wake()  # the failure detector must be running to notice
        self.network.pause_site(site)

    def resume_site(self, site: int) -> None:
        """Flush held deliveries to ``site`` (through the event loop, so
        run ``settle``/``advance`` to observe them) and resume normal flow."""
        self._check_site(site)
        self._wake()
        self.network.resume_site(site)

    def partition(self, sites: "set[int] | Sequence[int]") -> None:
        """Cut ``sites`` off from the rest of the cluster, starting now.

        Requires the chaos transport (build the cluster with a
        ``fault_plan=`` — ``FaultPlan()`` is fine): without the reliable
        ack/retransmit layer, severed messages would simply be lost and
        the protocols could never recover.  Heal with :meth:`heal`.
        """
        if self.faults is None:
            raise RuntimeError(
                "partition() needs the chaos transport; construct the "
                "cluster with fault_plan=FaultPlan() (or richer) first"
            )
        group = set(sites)
        for s in group:
            self._check_site(s)
        self._wake()  # severed heartbeats must be noticed by the detector
        self.faults.start_partition(group, self.sim.now)

    def heal(self) -> None:
        """Heal every active interactive partition; severed traffic is
        retransmitted eagerly and per-site recovery latency is recorded."""
        if self.faults is None:
            return
        self._wake()
        healed = self.faults.heal_partitions(self.sim.now)
        transport = self.network.transport
        for group in healed:
            transport.on_heal(self.sim.now, group)

    # ------------------------------------------------------------------
    # crash-recovery (interactive)
    # ------------------------------------------------------------------
    def crash_site(self, site: int) -> None:
        """Kill ``site`` now: volatile state (buffers, timers, an
        in-progress fetch) is lost; checkpoints and the WAL survive.

        Requires the cluster to have been built with
        ``crash_recovery=True`` (plus a ``fault_plan=`` for the chaos
        transport) so the durability layer has been journaling since
        construction.
        """
        self._check_site(site)
        if self.crash_manager is None:
            raise RuntimeError(
                "crash_site() needs the crash-recovery machinery; build "
                "the cluster with crash_recovery=True and fault_plan=..."
            )
        self._wake()
        self.crash_manager.crash(site)

    def recover_site(self, site: int) -> None:
        """Restore ``site`` from its checkpoint + WAL and start catch-up.

        The rejoin (anti-entropy rounds, backlog retransmission) runs
        through the event loop — ``advance``/``settle`` to let it finish;
        :meth:`pending_breakdown` shows the backlog draining.
        """
        self._check_site(site)
        if self.crash_manager is None:
            raise RuntimeError("no crash-recovery machinery installed")
        self._wake()
        self.crash_manager.recover(site)

    def down_sites(self) -> set[int]:
        """Sites currently crashed (empty without crash machinery)."""
        if self.crash_manager is None:
            return set()
        return set(self.crash_manager.down)

    # ------------------------------------------------------------------
    # elastic membership (see repro.sim.membership / docs/membership.md)
    # ------------------------------------------------------------------
    def _protocol_factory(self, new_id: int) -> CausalProtocol:
        """Build a joiner's protocol (called after placement + network
        have already been grown, so per-site derived state is correct)."""
        ctx = ProtocolContext(
            site=new_id,
            n_sites=self.network.n_sites,
            placement=self.placement,
            store=SiteStore(new_id, self.placement.vars_at(new_id)),
            network=self.network,
            clock=self.sim,
            collector=self.collector,
            size_model=self.config.size_model,
            history=self.history,
            tracer=self.tracer,
            registry=self.registry,
        )
        return create_protocol(self.config.protocol, ctx)

    def _ensure_view_manager(self) -> ViewManager:
        if self.view_manager is None:
            self.view_manager = ViewManager(
                self.sim, self.network, self.placement, self.protocols,
                protocol_factory=self._protocol_factory,
                crash_manager=self.crash_manager,
                policy=self._membership_policy,
            )
            if self.registry is not None:
                self.view_manager.registry = self.registry
        return self.view_manager

    @property
    def view(self) -> View:
        """The current membership view (epoch 0 covers a static cluster)."""
        if self.view_manager is not None:
            return self.view_manager.view
        return View(epoch=0, members=tuple(range(self.n_sites)),
                    capacity=self.n_sites)

    def membership_status(self, site: int) -> str:
        """``"member"``, ``"left"``, ``"evicted"``, or ``"unknown"``."""
        if self.view_manager is not None:
            return self.view_manager.membership_status(site)
        return "member" if 0 <= site < self.n_sites else "unknown"

    def join_site(self) -> int:
        """Admit a new site now (fence, drain, bootstrap, new epoch).

        Returns the joiner's id.  The view change runs synchronously:
        the simulator is stepped until in-flight work drains, then the
        membership mutates and a new epoch is announced.
        """
        self._wake()
        view = self._ensure_view_manager().run_change("join")
        return view.capacity - 1

    def leave_site(self, site: int) -> None:
        """Retire ``site`` gracefully: drain, hand off solely-held
        replicas to its successor, announce the new epoch."""
        self._check_site(site)
        self._wake()
        self._ensure_view_manager().run_change("leave", site)

    def evict_site(self, site: int) -> None:
        """Force a crash-stopped ``site`` out of the view.  Variables
        whose only replica it held degrade to None (counted in
        ``view_manager.stats.lost_variables``)."""
        self._check_site(site)
        self._wake()
        self._ensure_view_manager().run_change("evict", site)

    def _held_by_site(self) -> dict[int, int]:
        return {
            s: self.network.held_count(s)
            for s in range(self.n_sites)
            if self.network.held_count(s)
        }

    def pending_breakdown(self) -> dict[str, int]:
        """Where every not-yet-applied message currently lives.

        * ``buffered`` — delivered but parked in an activation buffer;
        * ``held_for_paused`` — delivery withheld for a paused site;
        * ``held_for_crashed`` — durably queued at senders for a crashed
          site (re-counted into ``in_flight`` as the rejoin drains it);
        * ``in_flight`` — unacked on the wire between live sites.
        """
        buffered = sum(p.pending_count for p in self.protocols)
        held_paused = sum(self._held_by_site().values())
        held_crashed = 0
        in_flight = 0
        transport = self.network.transport
        if transport is not None:
            down = self.crash_manager.down if self.crash_manager else set()
            held_crashed = sum(transport.unacked_to(d) for d in down)
            in_flight = transport.unacked_count() - held_crashed
        return {
            "buffered": buffered,
            "held_for_paused": held_paused,
            "held_for_crashed": held_crashed,
            "in_flight": in_flight,
        }

    def pending_messages(self) -> int:
        """Messages accepted but not yet applied cluster-wide: buffered
        by activation predicates, held for paused sites, or held durably
        at senders for crashed sites.  (In-flight packets between live
        sites are excluded — they are the network's business, not a
        backlog.)"""
        b = self.pending_breakdown()
        return b["buffered"] + b["held_for_paused"] + b["held_for_crashed"]

    # ------------------------------------------------------------------
    def check(self) -> CheckReport:
        """Run the causal-consistency checker over everything so far."""
        if not self.history.enabled:
            raise RuntimeError("cluster was built with record_history=False")
        return check_causal_consistency(self.history, self.placement)

    def __repr__(self) -> str:
        cls = get_protocol_class(self.config.protocol).__name__
        return (
            f"CausalCluster(n={self.n_sites}, protocol={cls}, "
            f"q={self.config.n_vars}, p={self.placement.replication_factor}, "
            f"t={self.now:.1f}ms)"
        )
