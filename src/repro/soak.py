"""Chaos-soak harness: sustained adversity over all four protocols.

The chaos suite (tests/test_chaos.py) proves the protocols survive each
fault class in isolation; the soak harness layers them — sustained
drops, duplicate storms, latency spikes, a rolling partition schedule,
and seeded flash crowds hitting the protocol layer directly — and holds
the run to *liveness* invariants the overload-robustness layer exists to
provide:

* **eventual quiescence** — the run drains completely (the runner's
  strict mode enforces it; the harness re-checks protocol buffers);
* **bounded queues** — peak per-channel in-flight occupancy never
  exceeds ``send_window`` and peak reassembly occupancy never exceeds
  ``reorder_window``;
* **no lost acked ops** — every write applies exactly once at exactly
  its replica set, the causal checker passes, and replicas converge;
* **determinism** — a same-seed double run produces a byte-identical
  summary;
* **the chaos was real** — drops, retransmissions, and flash-crowd
  injections all actually happened (a soak that quietly tested nothing
  is a failure, not a pass).

It also carries the adaptive-vs-fixed RTO comparison: on a drop-free
latency-spike plan every timer-driven retransmission is redundant by
construction (the original packet is still en route), so the spurious
counter isolates retransmission-timer quality.  The Jacobson/Karels
estimator must beat the fixed ``base_rto_ms`` policy there.

Exposed on the CLI as ``repro soak`` (report JSON + per-run metrics
artifacts); CI runs a bounded matrix of it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from .experiments.runner import RunResult, SimulationConfig, run_simulation
from .obs.export import write_prometheus, write_snapshot_json
from .obs.metrics import MetricsRegistry
from .sim.events import EventKind
from .sim.faults import FaultPlan, OverloadEvent, Partition
from .sim.network import UniformLatency
from .sim.reliable import RetransmitPolicy
from .verify.causal_checker import check_causal_consistency
from .verify.convergence import check_convergence

__all__ = [
    "SOAK_PROTOCOLS",
    "SOAK_POLICY",
    "build_soak_plan",
    "build_spike_plan",
    "soak_config",
    "soak_run",
    "check_soak_invariants",
    "canonical_summary",
    "SoakCell",
    "SoakReport",
    "soak_matrix",
    "compare_rto_policies",
]

SOAK_PROTOCOLS = ("full-track", "opt-track", "opt-track-crp", "optp")

#: soak transport policy: short timers keep simulated time cheap, tight
#: windows make flow control + backpressure + shedding actually engage
SOAK_POLICY = RetransmitPolicy(
    base_rto_ms=120.0,
    max_rto_ms=2000.0,
    jitter_ms=10.0,
    min_rto_ms=40.0,
    send_window=24,
    reorder_window=48,
    heal_burst=8,
    breaker_failures=4,
    backpressure_delay_ms=5.0,
    backpressure_limit=64,
    shed_backlog=64,
)


def build_soak_plan(n_sites: int = 5) -> FaultPlan:
    """Sustained drop+dup+spike+partition+flash-crowd schedule.

    Every fault heals in finite time (quiescence must be reachable);
    the flash crowds overlap the partition window on purpose — load
    arrives exactly while channels are severed and backlogs grow.
    """
    if n_sites < 2:
        raise ValueError("the soak plan needs at least two sites")
    partitions = [Partition([0, 1], 600.0, 2200.0)]
    if n_sites >= 4:
        partitions.append(Partition([2, 3], 2800.0, 3600.0))
    flash_sites = (0, n_sites - 1)
    return FaultPlan.uniform(
        drop_rate=0.12,
        dup_rate=0.05,
        spike_rate=0.08,
        spike_ms=(40.0, 320.0),
        partitions=partitions,
        overloads=(
            OverloadEvent(flash_sites, 900.0, 2600.0, 25.0),
            OverloadEvent((n_sites - 1,), 3200.0, 3900.0, 15.0),
        ),
    )


def build_spike_plan() -> FaultPlan:
    """Drop-free latency-spike plan for the RTO comparison.

    Nothing is ever lost, so every timer-driven retransmission is
    spurious by construction — the spurious counter measures nothing
    but how well the retransmission timer tracks the channel.
    """
    return FaultPlan.uniform(spike_rate=0.5, spike_ms=(250.0, 900.0))


def soak_config(
    protocol: str,
    seed: int,
    *,
    n_sites: int = 5,
    ops: int = 40,
    n_vars: int = 10,
    plan: Optional[FaultPlan] = None,
    policy: Optional[RetransmitPolicy] = None,
) -> SimulationConfig:
    """One soak run's configuration (dense schedule, chaos-aligned)."""
    return SimulationConfig(
        protocol=protocol,
        n_sites=n_sites,
        n_vars=n_vars,
        ops_per_process=ops,
        # dense operation gaps keep the whole schedule inside the chaos
        # window — "sustained" means the faults overlap the load
        gap_range_ms=(5.0, 120.0),
        seed=seed,
        latency=UniformLatency(5.0, 60.0),
        record_history=True,
        fault_plan=plan if plan is not None else build_soak_plan(n_sites),
        fault_seed=seed,
        retransmit=policy if policy is not None else SOAK_POLICY,
    )


def soak_run(
    config: SimulationConfig,
    registry: Optional[MetricsRegistry] = None,
) -> tuple[RunResult, MetricsRegistry]:
    """Execute one soak run with a metrics registry attached."""
    if registry is None:
        registry = MetricsRegistry()
    result = run_simulation(config, registry=registry)
    return result, registry


def canonical_summary(result: RunResult) -> str:
    """Deterministic JSON rendering of a run's summary — the object the
    double-run determinism invariant compares byte-for-byte."""
    return json.dumps(result.summary(), sort_keys=True, default=repr)


def check_soak_invariants(result: RunResult) -> list[str]:
    """All liveness/correctness invariants for one completed soak run.

    Returns human-readable problem strings; an empty list is a pass.
    """
    problems: list[str] = []
    policy = result.config.retransmit
    assert policy is not None

    # eventual quiescence: the strict runner already raises on stuck
    # schedules; re-check the buffers so a non-strict caller still fails
    undrained = {p.site: p.pending_count for p in result.protocols
                 if p.pending_count}
    if undrained:
        problems.append(f"protocol buffers not drained: {undrained}")

    # bounded queues: peaks must respect the configured windows
    transport = result.protocols[0].ctx.network.transport
    if transport is None:
        problems.append("no chaos transport attached — nothing was soaked")
    else:
        for (src, dst) in sorted(transport._channels):
            ch = transport._channels[(src, dst)]
            if ch.unacked_peak > policy.send_window:
                problems.append(
                    f"channel {src}->{dst}: unacked peak {ch.unacked_peak} "
                    f"exceeds send_window {policy.send_window}"
                )
            if ch.reorder_peak > policy.reorder_window:
                problems.append(
                    f"channel {src}->{dst}: reorder peak {ch.reorder_peak} "
                    f"exceeds reorder_window {policy.reorder_window}"
                )

    # no lost acked ops: exactly-once apply at exactly the replica set
    applies: dict[tuple[int, object], int] = {}
    for ev in result.history.of_kind(EventKind.APPLY):
        key = (ev.site, ev.write_id)
        applies[key] = applies.get(key, 0) + 1
    dup = {k: c for k, c in applies.items() if c > 1}
    if dup:
        problems.append(f"duplicate applies leaked above the transport: {dup}")
    for w in result.history.writes():
        replicas = set(result.placement.replicas(w.var))
        applied_sites = {site for (site, wid) in applies if wid == w.write_id}
        if applied_sites != replicas:
            problems.append(
                f"write {w.write_id} applied at {sorted(applied_sites)}, "
                f"expected replicas {sorted(replicas)}"
            )

    causal = check_causal_consistency(result.history, result.placement)
    if causal.violations:
        problems.append(
            f"{len(causal.violations)} causal violation(s); first: "
            f"{causal.violations[0]}"
        )
    conv = check_convergence(result.protocols, result.history)
    if not conv.ok:
        problems.append(f"replicas diverged: {conv.illegitimate[:3]}")

    # the chaos must actually have happened
    col = result.collector
    if col.injected_drops == 0:
        problems.append("fault injector dropped nothing — not a soak")
    if col.retransmissions == 0:
        problems.append("no retransmissions — the reliable layer was idle")
    if col.overload_injected == 0:
        problems.append("no flash-crowd writes were injected")
    return problems


@dataclass
class SoakCell:
    """Outcome of one protocol x seed soak run."""

    protocol: str
    seed: int
    ok: bool
    problems: list[str]
    deterministic: bool
    summary: dict

    def as_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "seed": self.seed,
            "ok": self.ok,
            "problems": list(self.problems),
            "deterministic": self.deterministic,
            "summary": self.summary,
        }


@dataclass
class SoakReport:
    """Full soak-matrix outcome (report JSON + CI artifact payload)."""

    cells: list[SoakCell] = field(default_factory=list)
    rto_comparison: Optional[dict] = None

    @property
    def ok(self) -> bool:
        cells_ok = all(c.ok and c.deterministic for c in self.cells)
        rto_ok = (self.rto_comparison is None
                  or bool(self.rto_comparison.get("adaptive_fewer_spurious")))
        return bool(self.cells) and cells_ok and rto_ok

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "cells": [c.as_dict() for c in self.cells],
            "rto_comparison": self.rto_comparison,
        }


def _counter_total(registry: MetricsRegistry, name: str) -> float:
    fam = registry.get(name)
    if fam is None:
        return 0.0
    return sum(child.value for _, child in fam.samples())  # type: ignore[union-attr]


def compare_rto_policies(
    protocol: str = "opt-track",
    seed: int = 3,
    *,
    n_sites: int = 5,
    ops: int = 40,
) -> dict:
    """Adaptive vs fixed RTO on the drop-free spike plan.

    Returns both policies' retransmission counters (read from the
    metrics registry) plus the verdict the acceptance criterion needs:
    the adaptive estimator must retransmit spuriously less often.
    """
    plan = build_spike_plan()
    shared = dict(
        base_rto_ms=120.0, max_rto_ms=4000.0, jitter_ms=10.0,
        send_window=32, reorder_window=64, heal_burst=8,
    )
    policies = {
        "fixed": RetransmitPolicy(adaptive=False, **shared),  # type: ignore[arg-type]
        "adaptive": RetransmitPolicy(adaptive=True, min_rto_ms=60.0, **shared),  # type: ignore[arg-type]
    }
    out: dict = {}
    for name, pol in policies.items():
        config = soak_config(protocol, seed, n_sites=n_sites, ops=ops,
                             plan=plan, policy=pol)
        _, registry = soak_run(config)
        out[name] = {
            "retransmissions": _counter_total(
                registry, "net_retransmissions_total"),
            "spurious_retransmissions": _counter_total(
                registry, "net_spurious_retransmissions_total"),
        }
    out["adaptive_fewer_spurious"] = (
        out["adaptive"]["spurious_retransmissions"]
        < out["fixed"]["spurious_retransmissions"]
    )
    return out


def soak_matrix(
    protocols: Sequence[str] = SOAK_PROTOCOLS,
    seeds: Sequence[int] = (1, 2, 3),
    *,
    n_sites: int = 5,
    ops: int = 40,
    check_determinism: bool = True,
    compare_rto: bool = True,
    out_dir: Optional[Path] = None,
) -> SoakReport:
    """Run the full soak matrix; optionally write report + artifacts.

    ``out_dir`` receives ``soak_report.json`` plus per-run Prometheus
    text and JSON metrics snapshots (the CI artifacts).
    """
    report = SoakReport()
    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
    for protocol in protocols:
        for seed in seeds:
            config = soak_config(protocol, seed, n_sites=n_sites, ops=ops)
            result, registry = soak_run(config)
            problems = check_soak_invariants(result)
            deterministic = True
            if check_determinism:
                rerun, _ = soak_run(soak_config(protocol, seed,
                                                n_sites=n_sites, ops=ops))
                deterministic = (canonical_summary(result)
                                 == canonical_summary(rerun))
                if not deterministic:
                    problems.append("same-seed rerun summary differs")
            report.cells.append(SoakCell(
                protocol=protocol, seed=seed, ok=not problems,
                problems=problems, deterministic=deterministic,
                summary=result.summary(),
            ))
            if out_dir is not None:
                stem = f"soak_{protocol}_s{seed}"
                write_prometheus(registry, out_dir / f"{stem}.prom")
                write_snapshot_json(
                    registry, out_dir / f"{stem}.json",
                    meta={"protocol": protocol, "seed": seed})
    if compare_rto:
        report.rto_comparison = compare_rto_policies(
            n_sites=n_sites, ops=ops)
    if out_dir is not None:
        (out_dir / "soak_report.json").write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True,
                       default=repr))
    return report
