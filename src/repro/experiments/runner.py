"""Simulation runner: configuration -> wired system -> measured run.

This is the reproduction's equivalent of the paper's JDK benchmark
driver: it builds the workload, the placement, the network, one protocol
instance per site, runs the discrete-event loop to quiescence, enforces
the warm-up window (first 15% of operation events unmeasured), and
returns the measured metrics.

``run_simulation`` is strict by default: at the end of a run every site
must have finished its schedule and every protocol buffer must have
drained — a protocol bug that deadlocks an activation predicate fails
the run instead of silently under-reporting messages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from ..core.base import (
    CausalProtocol,
    ProtocolContext,
    create_protocol,
    get_protocol_class,
)
from ..memory.replication import (
    HashPlacement,
    Placement,
    RandomPlacement,
    RoundRobinPlacement,
    paper_replication_factor,
)
from ..memory.store import SiteStore
from ..metrics.collector import MetricsCollector
from ..metrics.sizing import DEFAULT_SIZE_MODEL, SizeModel
from ..obs.export import HeartbeatReporter
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from ..sim.crash import (
    CatchupPolicy,
    CrashRecoveryManager,
    install_crash_recovery,
)
from ..sim.engine import Simulator
from ..sim.failure_detector import DetectorPolicy
from ..sim.faults import FaultInjector, FaultPlan, JoinEvent
from ..sim.membership import MembershipPolicy, ViewManager
from ..sim.network import LatencyModel, Network, PerPairLatency, UniformLatency
from ..sim.overload import OverloadDriver
from ..sim.process import Site
from ..sim.reliable import ReliableTransport, RetransmitPolicy
from ..verify.history import HistoryRecorder
from ..workload.generator import generate_workload
from ..workload.schedule import Workload

__all__ = ["SimulationConfig", "RunResult", "run_simulation", "build_placement"]

#: paper warm-up fraction (Section V)
PAPER_WARMUP_FRACTION = 0.15

_PLACEMENTS = {
    "round-robin": RoundRobinPlacement,
    "hash": HashPlacement,
}


@dataclass(frozen=True)
class SimulationConfig:
    """Everything defining one simulation run.

    ``replication_factor=None`` resolves to the protocol's natural
    default: p = n for full-replication protocols, the paper's
    p = round(0.3 n) for partial-replication ones.
    """

    protocol: str
    n_sites: int
    n_vars: int = 100
    replication_factor: Optional[int] = None
    write_rate: float = 0.5
    ops_per_process: int = 600
    gap_range_ms: tuple[float, float] = (5.0, 2005.0)
    #: "uniform" (the paper's setting) or "zipf" (skewed popularity)
    var_distribution: str = "uniform"
    zipf_s: float = 1.1
    warmup_fraction: float = PAPER_WARMUP_FRACTION
    seed: int = 0
    latency: LatencyModel = field(default_factory=UniformLatency)
    #: bytes/ms each sender's uplink can push (None = infinite, the
    #: paper's model where metadata size never affects timing)
    bandwidth_bytes_per_ms: Optional[float] = None
    size_model: SizeModel = DEFAULT_SIZE_MODEL
    placement: str = "round-robin"
    record_history: bool = False
    strict: bool = True
    max_events: Optional[int] = None
    #: chaos layer: ``None`` keeps the seed's reliable FIFO path exactly
    #: (zero overhead); a plan routes every message through the
    #: ack/retransmit transport over the lossy substrate
    fault_plan: Optional[FaultPlan] = None
    #: seed of the injector's dedicated RNG stream — fault schedules
    #: replay bit-identically, independent of latency sampling
    fault_seed: int = 0
    retransmit: Optional[RetransmitPolicy] = None
    #: durable-state layer: ``None`` disables checkpointing entirely
    #: *unless* the fault plan schedules crashes (which force it on at
    #: the default interval); crash-free runs with it disabled stay
    #: byte-identical to the seed
    checkpoint_interval_ms: Optional[float] = None
    #: heartbeat failure-detector tuning (None = defaults when crashes
    #: are planned; no detector at all otherwise)
    detector: Optional[DetectorPolicy] = None
    #: anti-entropy catch-up tuning for the rejoin path
    catchup: Optional[CatchupPolicy] = None
    #: elastic membership: escalate a persistently-suspected crash-stopped
    #: site into an eviction after this long (None = never auto-evict)
    auto_evict_after_ms: Optional[float] = None
    #: view-change fence / eviction tunables (None = defaults)
    membership_policy: Optional[MembershipPolicy] = None
    #: route all traffic through the frozen-message sanitizer
    #: (:mod:`repro.check.sanitizer`): every message is fingerprinted at
    #: send and verified at each delivery — any post-send mutation of
    #: aliased metadata raises.  Off by default (costs a deep copy +
    #: hash per message); the simulation itself is unchanged either way.
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.n_sites <= 0:
            raise ValueError("n_sites must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup fraction must be in [0, 1)")
        if self.placement not in _PLACEMENTS and self.placement != "random":
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"known: {sorted(_PLACEMENTS) + ['random']}"
            )
        get_protocol_class(self.protocol)  # fail fast on typos

    def resolved_replication_factor(self) -> int:
        if self.replication_factor is not None:
            return self.replication_factor
        if get_protocol_class(self.protocol).full_replication:
            return self.n_sites
        return paper_replication_factor(self.n_sites)

    def with_protocol(self, protocol: str) -> "SimulationConfig":
        """Same run, different protocol (Table IV-style comparisons)."""
        return replace(self, protocol=protocol)


@dataclass
class RunResult:
    """Output of one simulation run."""

    config: SimulationConfig
    collector: MetricsCollector
    workload: Workload
    history: HistoryRecorder
    placement: Placement
    protocols: list[CausalProtocol]
    sim_time_ms: float
    total_sim_events: int
    #: crash-recovery orchestrator (None when no crash machinery ran)
    crash_manager: Optional[CrashRecoveryManager] = None
    #: elastic-membership orchestrator (None for static-membership runs)
    view_manager: Optional[ViewManager] = None
    #: flash-crowd driver (None when the plan has no overload events)
    overload_driver: Optional[OverloadDriver] = None

    @property
    def final_log_sizes(self) -> list[int]:
        """Causality-metadata size per site at quiescence."""
        return [p.log_size() for p in self.protocols]

    def summary(self) -> dict:
        """Flat dict of the headline numbers (reports, CSV rows)."""
        out = {
            "protocol": self.config.protocol,
            "n": self.config.n_sites,
            "p": self.placement.replication_factor,
            "q": self.config.n_vars,
            "write_rate": self.config.write_rate,
            "seed": self.config.seed,
            "sim_time_ms": self.sim_time_ms,
        }
        out.update(self.collector.as_dict())
        return out


def build_placement(config: SimulationConfig) -> Placement:
    """Construct the replica placement a config describes."""
    p = config.resolved_replication_factor()
    if config.placement == "random":
        return RandomPlacement(config.n_sites, config.n_vars, p, seed=config.seed)
    return _PLACEMENTS[config.placement](config.n_sites, config.n_vars, p)


def _sample_final_metrics(
    registry: MetricsRegistry,
    sim: Simulator,
    protocols: list[CausalProtocol],
    end_time: float,
    transport: Optional[ReliableTransport] = None,
    overload_driver: Optional[OverloadDriver] = None,
) -> None:
    """Record end-of-run totals that are cheaper to sample than to stream.

    Kernel counters, per-site terminal log sizes, opt-track purge
    tallies and the peak activation-buffer depth are all read once at
    quiescence — instrumenting their hot paths would buy nothing but
    overhead.
    """
    registry.inc("kernel_events_total", sim.processed_events,
                 help_text="events processed by the simulation kernel")
    registry.inc("kernel_compactions_total", sim.compactions,
                 help_text="tombstone compaction sweeps of the event heap")
    registry.set_gauge("run_sim_time_ms", end_time,
                       help_text="simulated wall-clock at quiescence")
    for proto in protocols:
        registry.set_gauge(
            "proto_final_log_entries", proto.log_size(),
            help_text="causal-metadata log entries held at quiescence",
            protocol=proto.name, site=proto.site)
        registry.set_gauge(
            "proto_pending_sm_peak", proto.pending_sm_peak,
            help_text="peak activation-buffer depth over the run",
            protocol=proto.name, site=proto.site)
        log = getattr(proto, "log", None)
        purged = getattr(log, "purged_records", None)
        if purged is not None:
            registry.inc(
                "proto_purged_log_records_total", purged,
                help_text="KS log records dropped by destination pruning",
                protocol=proto.name, site=proto.site)
    if transport is not None:
        transport.sample_channel_metrics(registry)
    if overload_driver is not None:
        registry.inc("overload_injected_total", overload_driver.injected,
                     help_text="flash-crowd writes that reached a protocol")
        registry.inc("overload_sheds_total", overload_driver.sheds,
                     help_text="flash-crowd writes refused by admission")
        registry.inc("overload_skipped_total", overload_driver.skipped,
                     help_text="flash-crowd ticks aimed at down/held sites")


def run_simulation(
    config: SimulationConfig,
    workload: Optional[Workload] = None,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    heartbeat: Optional[HeartbeatReporter] = None,
) -> RunResult:
    """Execute one full simulation run and return its measurements.

    A caller-provided ``workload`` overrides generation — that is how
    the *same* schedule is replayed through different protocols.

    A caller-provided ``tracer`` records causally-linked span events for
    every operation and message hop; ``None`` (the default) keeps the
    instrumented paths byte-identical to the untraced seed behavior,
    mirroring the ``fault_plan=None`` contract.

    A caller-provided ``registry`` turns on the metrics layer: labeled
    instruments across kernel/network/protocols/crash/membership plus
    the per-component metadata-byte ledger; ``None`` is again the
    zero-overhead path.  A ``heartbeat`` reporter (usually paired with a
    registry) emits periodic progress lines while the run executes.
    """
    # Elastic membership: the id space (capacity) covers every site that
    # will ever exist this run, so the workload is generated for joiners
    # too — their schedules simply start once they are admitted.
    membership_events = (
        config.fault_plan.membership if config.fault_plan is not None else ()
    )
    n_joins = sum(1 for ev in membership_events if isinstance(ev, JoinEvent))
    capacity = config.n_sites + n_joins
    churn = bool(membership_events) or config.auto_evict_after_ms is not None
    if churn and isinstance(config.latency, PerPairLatency):
        raise ValueError(
            "PerPairLatency has a fixed delay matrix and cannot model "
            "membership churn; use a sampled latency model"
        )
    if workload is None:
        workload = generate_workload(
            capacity,
            n_vars=config.n_vars,
            write_rate=config.write_rate,
            ops_per_process=config.ops_per_process,
            gap_range_ms=config.gap_range_ms,
            seed=config.seed,
            var_distribution=config.var_distribution,
            zipf_s=config.zipf_s,
        )
    if workload.n_sites != capacity:
        raise ValueError(
            f"workload has {workload.n_sites} sites, config wants {capacity} "
            f"({config.n_sites} initial + {n_joins} joiner(s))"
        )
    if workload.n_vars > config.n_vars:
        raise ValueError("workload touches more variables than the config declares")

    placement = build_placement(config)
    sim = Simulator(max_events=config.max_events)
    net_rng = np.random.default_rng(np.random.SeedSequence(config.seed).spawn(1)[0])
    collector = MetricsCollector()
    faults = None
    overload_rng: Optional[np.random.Generator] = None
    if config.fault_plan is not None:
        # two children: [0] is byte-identical to the pre-overload
        # .spawn(1)[0] stream (spawn keys are positional), so attaching
        # the overload driver's dedicated stream never perturbs the
        # injector's fault schedule
        fault_children = np.random.SeedSequence(config.fault_seed).spawn(2)
        fault_rng = np.random.default_rng(fault_children[0])
        faults = FaultInjector(config.fault_plan, rng=fault_rng)
        if config.fault_plan.overloads:
            overload_rng = np.random.default_rng(fault_children[1])
    network = Network(sim, config.n_sites, config.latency, rng=net_rng,
                      bandwidth_bytes_per_ms=config.bandwidth_bytes_per_ms,
                      faults=faults, collector=collector,
                      retransmit=config.retransmit, tracer=tracer,
                      registry=registry)
    # the sanitizer wrapper proxies the network; keep a direct handle on
    # the chaos transport for end-of-run channel metrics
    transport = network.transport
    if config.sanitize:
        from ..check.sanitizer import SanitizedNetwork

        network = SanitizedNetwork(network)  # type: ignore[assignment]
    history = HistoryRecorder(enabled=config.record_history)
    if tracer is not None:
        sim.observer = tracer.on_sim_event
        tracer.meta.setdefault("protocol", config.protocol)
        tracer.meta.setdefault("n_sites", config.n_sites)
        tracer.meta.setdefault("ops_per_process", config.ops_per_process)
        tracer.meta.setdefault("seed", config.seed)
    if registry is not None:
        if registry.ledger.base_n is None:
            # clock growth past the initial site count is epoch padding
            registry.ledger.base_n = config.n_sites
        registry.install_kernel_hook(sim)
    if heartbeat is not None:
        if heartbeat.registry is None:
            heartbeat.registry = registry
        if sim.observer is None:
            sim.observer = heartbeat.on_sim_event
        else:
            # compose: tracer sampling first, then the heartbeat
            tracer_observer = sim.observer
            hb_observer = heartbeat.on_sim_event

            def _observe(ts: float, pending: int) -> None:
                tracer_observer(ts, pending)
                hb_observer(ts, pending)

            sim.observer = _observe

    # Warm-up gate: open the measurement window once the first
    # ceil(fraction * total) operations have *started* (paper Sec. V).
    total_ops = workload.total_operations
    warmup_ops = math.ceil(config.warmup_fraction * total_ops)
    started = 0

    def on_operation(site_id: int) -> None:
        nonlocal started
        started += 1
        if started == warmup_ops + 1 or (warmup_ops == 0 and started == 1):
            collector.start_measuring()
            if registry is not None:
                registry.ledger.mark_measuring()

    if warmup_ops == 0:
        collector.start_measuring()
        if registry is not None:
            registry.ledger.mark_measuring()

    protocols: list[CausalProtocol] = []
    sites: list[Site] = []
    for i in range(config.n_sites):
        ctx = ProtocolContext(
            site=i,
            n_sites=config.n_sites,
            placement=placement,
            store=SiteStore(i, placement.vars_at(i)),
            network=network,
            clock=sim,
            collector=collector,
            size_model=config.size_model,
            history=history,
            tracer=tracer,
            registry=registry,
        )
        proto = create_protocol(config.protocol, ctx)
        network.register(i, proto.on_message)
        protocols.append(proto)
        sites.append(Site(proto, workload.for_site(i), sim,
                          on_operation=on_operation, tracer=tracer))
    if heartbeat is not None:
        heartbeat.bind(network=network, protocols=protocols)

    crash_manager: Optional[CrashRecoveryManager] = None
    planned_crashes = config.fault_plan.crashes if config.fault_plan else ()
    if planned_crashes or churn or config.checkpoint_interval_ms is not None:
        if planned_crashes or membership_events:
            # a crash or membership event scheduled after the workload
            # can ever end would stall quiescence (or silently test
            # nothing); reject early
            horizon = max(
                (s.items[-1][0] for s in (workload.for_site(i)
                                          for i in range(workload.n_sites))
                 if len(s)),
                default=0.0,
            )
            config.fault_plan.validate(horizon_ms=horizon)
        crash_manager = install_crash_recovery(
            sim, network, protocols,
            sites=sites,
            crashes=planned_crashes,
            checkpoint_interval_ms=config.checkpoint_interval_ms,
            detector_policy=config.detector,
            catchup=config.catchup,
            # eviction escalation chains onto detector suspicions
            with_detector=(
                True if config.auto_evict_after_ms is not None else None
            ),
            collector=collector,
            tracer=tracer,
        )
        if registry is not None:
            crash_manager.attach_registry(registry)

    view_manager: Optional[ViewManager] = None
    if churn:

        def protocol_factory(new_id: int) -> CausalProtocol:
            # called after placement + network have grown to include
            # new_id, so the per-site derived state is already correct
            joiner_ctx = ProtocolContext(
                site=new_id,
                n_sites=network.n_sites,
                placement=placement,
                store=SiteStore(new_id, placement.vars_at(new_id)),
                network=network,
                clock=sim,
                collector=collector,
                size_model=config.size_model,
                history=history,
                tracer=tracer,
                registry=registry,
            )
            return create_protocol(config.protocol, joiner_ctx)

        def site_factory(new_id: int, proto: CausalProtocol) -> Site:
            return Site(proto, workload.for_site(new_id), sim,
                        on_operation=on_operation, tracer=tracer)

        view_manager = ViewManager(
            sim, network, placement, protocols,
            protocol_factory=protocol_factory,
            site_factory=site_factory,
            sites=sites,
            crash_manager=crash_manager,
            policy=config.membership_policy,
        )
        view_manager.schedule_plan(membership_events)
        if config.auto_evict_after_ms is not None:
            view_manager.enable_eviction(config.auto_evict_after_ms)
        if registry is not None:
            view_manager.registry = registry

    overload_driver: Optional[OverloadDriver] = None
    if overload_rng is not None:
        assert config.fault_plan is not None
        overload_driver = OverloadDriver(
            sim, config.fault_plan, protocols, sites,
            config.n_vars, overload_rng,
        )

    for site in sites:
        site.start()
    end_time = sim.run()

    if overload_driver is not None:
        collector.record_overload_injected(overload_driver.injected)
    if registry is not None:
        _sample_final_metrics(registry, sim, protocols, end_time,
                              transport=transport,
                              overload_driver=overload_driver)

    dead_forever: set[int] = set()
    departed: set[int] = set()
    if crash_manager is not None:
        dead_forever = crash_manager.down_forever()
        departed = set(crash_manager.departed)
        lost = crash_manager.lost_operations()
        if lost:
            collector.record_lost_ops(lost)
    if config.strict and not dead_forever and not departed:
        # crash-stop runs are exempt: a dead-forever site strands its own
        # schedule, and live sites can be legitimately stuck on state
        # frozen inside the dead site's outbound queue (those operations
        # are accounted as lost above); a departed site exempts likewise —
        # live sites may hold buffered updates depending on state that
        # left with the victim; every other run — including full
        # crash-recovery plans — must finish and drain completely
        stuck_sites = [s.site_id for s in sites if not s.finished]
        if stuck_sites:
            raise RuntimeError(f"sites never finished their schedules: {stuck_sites}")
        undrained = {p.site: p.pending_count for p in protocols if p.pending_count}
        if undrained:
            raise RuntimeError(
                f"protocol buffers not drained at quiescence: {undrained}"
            )

    return RunResult(
        config=config,
        collector=collector,
        workload=workload,
        history=history,
        placement=placement,
        protocols=protocols,
        sim_time_ms=end_time,
        total_sim_events=sim.processed_events,
        crash_manager=crash_manager,
        view_manager=view_manager,
        overload_driver=overload_driver,
    )
