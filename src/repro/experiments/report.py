"""Report formatting: text tables, CSV files, ASCII charts.

Matplotlib is intentionally not a dependency (the reproduction targets
offline environments); figures are emitted as CSV series plus quick
ASCII line/bar charts so "regenerating Fig. 3" still produces something
a human can eyeball against the paper.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Mapping, Optional, Sequence

__all__ = ["format_table", "write_csv", "csv_text", "ascii_chart", "format_kv"]


def _fmt(value: object, float_digits: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping],
    columns: Optional[Sequence[str]] = None,
    *,
    float_digits: int = 3,
    title: str = "",
) -> str:
    """Render row dicts as an aligned monospace table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_fmt(row.get(c, ""), float_digits) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(line[i]) for line in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.rjust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(line, widths)))
    return "\n".join(lines)


def csv_text(rows: Sequence[Mapping], columns: Optional[Sequence[str]] = None) -> str:
    """Rows as CSV text (header + data)."""
    if not rows:
        return ""
    cols = list(columns) if columns is not None else list(rows[0].keys())
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=cols, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({c: row.get(c, "") for c in cols})
    return buf.getvalue()


def write_csv(
    rows: Sequence[Mapping], path: str, columns: Optional[Sequence[str]] = None
) -> None:
    """Write rows to ``path`` as CSV."""
    with open(path, "w", newline="") as fh:
        fh.write(csv_text(rows, columns))


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A small multi-series scatter/line chart in ASCII.

    ``series`` maps a label to (x, y) points; each series is drawn with
    its own marker character.  Good enough to eyeball "quadratic vs
    linear" against the paper's figures.
    """
    markers = "ox+*#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, ch: str) -> None:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = ch

    for (label, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            place(x, y, marker)

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} in [{y_lo:g}, {y_hi:g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} in [{x_lo:g}, {x_hi:g}]")
    legend = "  ".join(
        f"{marker}={label}" for (label, _), marker in zip(series.items(), markers)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def format_kv(data: Mapping, *, float_digits: int = 3) -> str:
    """Key/value block for run summaries."""
    width = max((len(str(k)) for k in data), default=0)
    return "\n".join(
        f"{str(k).ljust(width)} : {_fmt(v, float_digits)}" for k, v in data.items()
    )
