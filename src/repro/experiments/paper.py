"""Drivers regenerating every table and figure of the paper.

Each ``figN_rows`` / ``tableN_rows`` function runs the simulations for
that exhibit and returns plain row dicts; the benchmark harness and the
CLI format them (and EXPERIMENTS.md records them against the paper's
numbers).  All functions accept ``ops_per_process`` and ``seeds`` so the
same code serves quick CI runs and full paper-scale reproduction.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..analysis.tradeoff import crossover_write_rate
from .configs import FULL_NS, PARTIAL_NS, WRITE_RATES
from .sweep import averaged_cell, paired_runs

__all__ = [
    "fig1_rows",
    "partial_avg_size_rows",
    "table2_rows",
    "fig5_rows",
    "full_avg_size_rows",
    "table3_rows",
    "table4_rows",
    "eq2_rows",
]


def fig1_rows(
    *,
    ops_per_process: int,
    seeds: Iterable[int] = (0,),
    n_values: Sequence[int] = PARTIAL_NS,
    write_rates: Sequence[float] = WRITE_RATES,
) -> list[dict]:
    """Fig. 1: total metadata ratio Opt-Track / Full-Track vs (n, w_rate)."""
    rows = []
    for wr in write_rates:
        for n in n_values:
            ot = averaged_cell("opt-track", n, wr,
                               ops_per_process=ops_per_process, seeds=seeds)
            ft = averaged_cell("full-track", n, wr,
                               ops_per_process=ops_per_process, seeds=seeds)
            rows.append({
                "n": n,
                "write_rate": wr,
                "opt_track_bytes": ot.total_bytes,
                "full_track_bytes": ft.total_bytes,
                "ratio": ot.total_bytes / ft.total_bytes if ft.total_bytes else float("nan"),
            })
    return rows


def partial_avg_size_rows(
    write_rate: float,
    *,
    ops_per_process: int,
    seeds: Iterable[int] = (0,),
    n_values: Sequence[int] = PARTIAL_NS,
) -> list[dict]:
    """Figs. 2-4: average SM/RM/FM metadata size vs n, partial replication."""
    rows = []
    for n in n_values:
        for protocol in ("opt-track", "full-track"):
            cell = averaged_cell(protocol, n, write_rate,
                                 ops_per_process=ops_per_process, seeds=seeds)
            rows.append({
                "n": n,
                "protocol": protocol,
                "write_rate": write_rate,
                "sm_bytes": cell.mean_sm,
                "rm_bytes": cell.mean_rm,
                "fm_bytes": cell.mean_fm,
            })
    return rows


def table2_rows(
    *,
    ops_per_process: int,
    seeds: Iterable[int] = (0,),
    n_values: Sequence[int] = PARTIAL_NS,
    write_rates: Sequence[float] = WRITE_RATES,
) -> list[dict]:
    """Table II: average SM and RM overheads (KB) for both partial protocols."""
    rows = []
    for protocol in ("opt-track", "full-track"):
        for kind in ("SM", "RM"):
            for wr in write_rates:
                row = {"protocol": protocol, "kind": kind, "write_rate": wr}
                for n in n_values:
                    cell = averaged_cell(protocol, n, wr,
                                         ops_per_process=ops_per_process, seeds=seeds)
                    row[f"n{n}"] = cell[f"{kind}_mean_bytes"] / 1000.0  # KB
                rows.append(row)
    return rows


def fig5_rows(
    *,
    ops_per_process: int,
    seeds: Iterable[int] = (0,),
    n_values: Sequence[int] = FULL_NS,
    write_rates: Sequence[float] = WRITE_RATES,
) -> list[dict]:
    """Fig. 5: total SM metadata ratio Opt-Track-CRP / optP vs (n, w_rate)."""
    rows = []
    for wr in write_rates:
        for n in n_values:
            crp = averaged_cell("opt-track-crp", n, wr,
                                ops_per_process=ops_per_process, seeds=seeds)
            optp = averaged_cell("optp", n, wr,
                                 ops_per_process=ops_per_process, seeds=seeds)
            rows.append({
                "n": n,
                "write_rate": wr,
                "crp_sm_bytes": crp["SM_bytes"],
                "optp_sm_bytes": optp["SM_bytes"],
                "ratio": crp["SM_bytes"] / optp["SM_bytes"] if optp["SM_bytes"] else float("nan"),
            })
    return rows


def full_avg_size_rows(
    write_rate: float,
    *,
    ops_per_process: int,
    seeds: Iterable[int] = (0,),
    n_values: Sequence[int] = FULL_NS,
) -> list[dict]:
    """Figs. 6-8: average SM metadata size vs n, full replication."""
    rows = []
    for n in n_values:
        for protocol in ("opt-track-crp", "optp"):
            cell = averaged_cell(protocol, n, write_rate,
                                 ops_per_process=ops_per_process, seeds=seeds)
            rows.append({
                "n": n,
                "protocol": protocol,
                "write_rate": write_rate,
                "sm_bytes": cell.mean_sm,
            })
    return rows


def table3_rows(
    *,
    ops_per_process: int,
    seeds: Iterable[int] = (0,),
    n_values: Sequence[int] = FULL_NS,
    write_rates: Sequence[float] = WRITE_RATES,
) -> list[dict]:
    """Table III: average SM bytes for Opt-Track-CRP per write rate, vs optP."""
    rows = []
    for n in n_values:
        row: dict = {"n": n}
        for wr in write_rates:
            cell = averaged_cell("opt-track-crp", n, wr,
                                 ops_per_process=ops_per_process, seeds=seeds)
            row[f"crp_wrate_{wr}"] = cell.mean_sm
        optp = averaged_cell("optp", n, write_rates[0],
                             ops_per_process=ops_per_process, seeds=seeds)
        row["optp"] = optp.mean_sm  # optP's SM size is n-determined, w_rate-free
        rows.append(row)
    return rows


def table4_rows(
    *,
    ops_per_process: int,
    seeds: Iterable[int] = (0,),
    n_values: Sequence[int] = PARTIAL_NS,
    write_rates: Sequence[float] = WRITE_RATES,
) -> list[dict]:
    """Table IV: total message counts, same schedule through both protocols."""
    rows = []
    for n in n_values:
        row: dict = {"n": n}
        for wr in write_rates:
            full_counts, partial_counts = [], []
            for seed in seeds:
                runs = paired_runs(("opt-track-crp", "opt-track"), n, wr,
                                   ops_per_process=ops_per_process, seed=seed)
                full_counts.append(runs["opt-track-crp"].collector.total_message_count)
                partial_counts.append(runs["opt-track"].collector.total_message_count)
            row[f"full_{wr}"] = sum(full_counts) / len(full_counts)
            row[f"partial_{wr}"] = sum(partial_counts) / len(partial_counts)
        rows.append(row)
    return rows


def eq2_rows(
    *,
    ops_per_process: int,
    seeds: Iterable[int] = (0,),
    n_values: Sequence[int] = PARTIAL_NS,
    write_rates: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
) -> list[dict]:
    """Eq. (2) validation: simulated count ratio vs the analytic crossover.

    For each (n, w_rate) the row records whether partial replication beat
    full replication in simulation and whether eq. (2) predicted it.
    """
    rows = []
    for n in n_values:
        threshold = crossover_write_rate(n)
        for wr in write_rates:
            ratios = []
            for seed in seeds:
                runs = paired_runs(("opt-track-crp", "opt-track"), n, wr,
                                   ops_per_process=ops_per_process, seed=seed)
                full = runs["opt-track-crp"].collector.total_message_count
                partial = runs["opt-track"].collector.total_message_count
                ratios.append(partial / full if full else float("inf"))
            ratio = sum(ratios) / len(ratios)
            rows.append({
                "n": n,
                "write_rate": wr,
                "count_ratio": ratio,
                "partial_wins_simulated": ratio < 1.0,
                "partial_wins_predicted": wr > threshold,
                "analytic_threshold": threshold,
            })
    return rows
