"""One-shot reproduction driver: every exhibit to files.

``reproduce_all`` regenerates all twelve paper exhibits (and nothing
else — ablations live in the benchmark suite), writing per-exhibit CSVs,
ASCII charts for the figures, and a combined Markdown report to an
output directory.  It is the engine behind ``repro reproduce``.

matplotlib is not a dependency; the CSVs are ready for any plotting
tool, and the ASCII charts are enough to eyeball shapes against the
paper.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Optional, Sequence

from . import paper
from .configs import EXPERIMENTS
from .report import ascii_chart, csv_text, format_table

__all__ = ["reproduce_all", "EXHIBIT_RUNNERS"]


def _fig1_chart(rows) -> str:
    rates = sorted({r["write_rate"] for r in rows})
    return ascii_chart(
        {f"w={wr}": [(r["n"], r["ratio"]) for r in rows if r["write_rate"] == wr]
         for wr in rates},
        title="Opt-Track / Full-Track total metadata ratio",
        x_label="n", y_label="ratio",
    )


def _partial_chart(rows) -> str:
    by_proto: dict[str, list] = {}
    for r in rows:
        label = "OT SM" if r["protocol"] == "opt-track" else "FT SM"
        by_proto.setdefault(label, []).append((r["n"], r["sm_bytes"]))
    return ascii_chart(by_proto, title="average SM metadata bytes vs n",
                       x_label="n", y_label="bytes")


def _fig5_chart(rows) -> str:
    rates = sorted({r["write_rate"] for r in rows})
    return ascii_chart(
        {f"w={wr}": [(r["n"], r["ratio"]) for r in rows if r["write_rate"] == wr]
         for wr in rates},
        title="Opt-Track-CRP / optP total SM ratio",
        x_label="n", y_label="ratio",
    )


def _full_chart(rows) -> str:
    by_proto: dict[str, list] = {}
    for r in rows:
        label = "CRP" if r["protocol"] == "opt-track-crp" else "optP"
        by_proto.setdefault(label, []).append((r["n"], r["sm_bytes"]))
    return ascii_chart(by_proto, title="average SM metadata bytes vs n",
                       x_label="n", y_label="bytes")


#: exhibit id -> (row producer, optional chart renderer)
EXHIBIT_RUNNERS: dict[str, tuple[Callable[..., list], Optional[Callable]]] = {
    "fig1": (paper.fig1_rows, _fig1_chart),
    "fig2": (lambda **kw: paper.partial_avg_size_rows(0.2, **kw), _partial_chart),
    "fig3": (lambda **kw: paper.partial_avg_size_rows(0.5, **kw), _partial_chart),
    "fig4": (lambda **kw: paper.partial_avg_size_rows(0.8, **kw), _partial_chart),
    "table2": (paper.table2_rows, None),
    "fig5": (paper.fig5_rows, _fig5_chart),
    "fig6": (lambda **kw: paper.full_avg_size_rows(0.2, **kw), _full_chart),
    "fig7": (lambda **kw: paper.full_avg_size_rows(0.5, **kw), _full_chart),
    "fig8": (lambda **kw: paper.full_avg_size_rows(0.8, **kw), _full_chart),
    "table3": (paper.table3_rows, None),
    "table4": (paper.table4_rows, None),
    "eq2": (paper.eq2_rows, None),
}


def reproduce_all(
    outdir: str | Path,
    *,
    ops_per_process: int = 600,
    seeds: Sequence[int] = (0,),
    exhibits: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Path:
    """Regenerate exhibits into ``outdir``; returns the report path.

    ``exhibits`` restricts the set (default: everything).  ``progress``
    receives one line per exhibit as it completes.
    """
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    chosen = list(exhibits) if exhibits is not None else list(EXHIBIT_RUNNERS)
    unknown = [e for e in chosen if e not in EXHIBIT_RUNNERS]
    if unknown:
        raise ValueError(f"unknown exhibits: {unknown}")

    report_lines = [
        "# Reproduction report",
        "",
        f"ops per process: {ops_per_process} (paper: 600); "
        f"seeds averaged: {len(list(seeds))}",
        "",
    ]
    for exhibit in chosen:
        runner, chart = EXHIBIT_RUNNERS[exhibit]
        # simcheck: ignore[SIM001] -- wall-clock reporting of exhibit cost; never feeds simulated results
        started = time.perf_counter()
        rows = runner(ops_per_process=ops_per_process, seeds=tuple(seeds))
        elapsed = time.perf_counter() - started  # simcheck: ignore[SIM001] -- see above
        (out / f"{exhibit}.csv").write_text(csv_text(rows))
        spec = EXPERIMENTS.get(exhibit)
        title = spec.title if spec else exhibit
        report_lines += [f"## {exhibit}: {title}", ""]
        report_lines += ["```", format_table(rows), "```", ""]
        if chart is not None:
            rendered = chart(rows)
            (out / f"{exhibit}.txt").write_text(rendered)
            report_lines += ["```", rendered, "```", ""]
        if progress is not None:
            progress(f"{exhibit}: {len(rows)} rows in {elapsed:.1f}s")

    report = out / "REPORT.md"
    report.write_text("\n".join(report_lines))
    return report
