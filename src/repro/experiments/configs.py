"""Parameter grids for every experiment in the paper's Section V.

One :class:`ExperimentSpec` per figure/table, with the exact parameter
grid the paper swept.  ``ops_per_process`` and ``seeds`` default to the
paper's values but are overridable everywhere — the pytest-benchmark
harness runs reduced scales by default (see ``benchmarks/README`` inside
each bench file) with environment knobs to go full scale:

* ``REPRO_BENCH_OPS``   — operations per process (paper: 600)
* ``REPRO_BENCH_SEEDS`` — number of independent runs averaged (paper:
  "multiple runs", <=1% variation)
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "ExperimentSpec",
    "EXPERIMENTS",
    "PARTIAL_NS",
    "FULL_NS",
    "WRITE_RATES",
    "bench_ops",
    "bench_seeds",
]

#: process counts the paper sweeps under partial replication (Figs 1-4, Tab II/IV)
PARTIAL_NS = (5, 10, 20, 30, 40)
#: process counts the paper sweeps under full replication (Figs 5-8, Tab III)
FULL_NS = (5, 10, 20, 30, 35, 40)
#: write rates used throughout
WRITE_RATES = (0.2, 0.5, 0.8)

#: paper defaults
PAPER_OPS = 600
PAPER_N_VARS = 100


def bench_ops(default: int = 120) -> int:
    """Operations per process for benchmark runs (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_OPS", default))


def bench_seeds(default: int = 1) -> int:
    """Independent seeds averaged per cell (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_SEEDS", default))


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one paper experiment."""

    id: str
    title: str
    protocols: tuple[str, ...]
    n_values: tuple[int, ...]
    write_rates: tuple[float, ...]
    metric: str
    notes: str = ""
    n_vars: int = PAPER_N_VARS

    def cells(self):
        """Iterate the full (protocol, n, write_rate) grid."""
        for protocol in self.protocols:
            for n in self.n_values:
                for wr in self.write_rates:
                    yield protocol, n, wr


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.id: spec
    for spec in [
        ExperimentSpec(
            id="fig1",
            title="Total message meta-data overhead ratio, Opt-Track / Full-Track",
            protocols=("opt-track", "full-track"),
            n_values=PARTIAL_NS,
            write_rates=WRITE_RATES,
            metric="total_metadata_bytes ratio",
            notes="Partial replication, p = round(0.3 n). Ratio falls with "
                  "n and with write rate.",
        ),
        ExperimentSpec(
            id="fig2",
            title="Average per-message meta-data size vs n (w_rate = 0.2)",
            protocols=("opt-track", "full-track"),
            n_values=PARTIAL_NS,
            write_rates=(0.2,),
            metric="mean SM/RM/FM bytes",
        ),
        ExperimentSpec(
            id="fig3",
            title="Average per-message meta-data size vs n (w_rate = 0.5)",
            protocols=("opt-track", "full-track"),
            n_values=PARTIAL_NS,
            write_rates=(0.5,),
            metric="mean SM/RM/FM bytes",
        ),
        ExperimentSpec(
            id="fig4",
            title="Average per-message meta-data size vs n (w_rate = 0.8)",
            protocols=("opt-track", "full-track"),
            n_values=PARTIAL_NS,
            write_rates=(0.8,),
            metric="mean SM/RM/FM bytes",
        ),
        ExperimentSpec(
            id="table2",
            title="Average SM and RM space overhead, Full-Track and Opt-Track (KB)",
            protocols=("opt-track", "full-track"),
            n_values=PARTIAL_NS,
            write_rates=WRITE_RATES,
            metric="mean SM/RM KB",
        ),
        ExperimentSpec(
            id="fig5",
            title="Total SM meta-data overhead ratio, Opt-Track-CRP / optP",
            protocols=("opt-track-crp", "optp"),
            n_values=FULL_NS,
            write_rates=WRITE_RATES,
            metric="total SM bytes ratio",
            notes="Full replication.",
        ),
        ExperimentSpec(
            id="fig6",
            title="Average SM meta-data size vs n, full replication (w_rate = 0.2)",
            protocols=("opt-track-crp", "optp"),
            n_values=FULL_NS,
            write_rates=(0.2,),
            metric="mean SM bytes",
        ),
        ExperimentSpec(
            id="fig7",
            title="Average SM meta-data size vs n, full replication (w_rate = 0.5)",
            protocols=("opt-track-crp", "optp"),
            n_values=FULL_NS,
            write_rates=(0.5,),
            metric="mean SM bytes",
        ),
        ExperimentSpec(
            id="fig8",
            title="Average SM meta-data size vs n, full replication (w_rate = 0.8)",
            protocols=("opt-track-crp", "optp"),
            n_values=FULL_NS,
            write_rates=(0.8,),
            metric="mean SM bytes",
        ),
        ExperimentSpec(
            id="table3",
            title="Average SM space overhead, Opt-Track-CRP (bytes) vs optP",
            protocols=("opt-track-crp", "optp"),
            n_values=FULL_NS,
            write_rates=WRITE_RATES,
            metric="mean SM bytes",
        ),
        ExperimentSpec(
            id="table4",
            title="Total message count, partial (Opt-Track) vs full (Opt-Track-CRP)",
            protocols=("opt-track", "opt-track-crp"),
            n_values=PARTIAL_NS,
            write_rates=WRITE_RATES,
            metric="total message count",
            notes="Same operation schedule replayed through both protocols; "
                  "compare with eq. (2): partial wins iff w_rate > 2/(n+1).",
        ),
        ExperimentSpec(
            id="eq2",
            title="Analytic crossover w_rate > 2/(n+1), validated by simulation",
            protocols=("opt-track", "opt-track-crp"),
            n_values=PARTIAL_NS,
            write_rates=(0.1, 0.2, 0.3, 0.4, 0.5),
            metric="message count ratio vs analytic prediction",
        ),
    ]
}
