"""Grid sweep driver with multi-seed averaging.

The paper runs each parameter combination several times and reports the
mean ("the experimental results of all the runs did not have more than
one percent variation").  :func:`averaged_cell` reproduces that: run the
same cell under independent seeds and average every numeric metric.

For protocol *comparisons on the same schedule* (Table IV), use
:func:`paired_runs`, which generates the workload once per seed and
replays it through each protocol.
"""

from __future__ import annotations

import time
from typing import Iterable

from ..workload.generator import generate_workload
from .runner import RunResult, SimulationConfig, run_simulation

__all__ = ["CellResult", "averaged_cell", "paired_runs", "cell_config"]


class CellResult(dict):
    """Averaged metrics of one grid cell (a plain dict with helpers)."""

    @property
    def mean_sm(self) -> float:
        return self["SM_mean_bytes"]

    @property
    def mean_rm(self) -> float:
        return self["RM_mean_bytes"]

    @property
    def mean_fm(self) -> float:
        return self["FM_mean_bytes"]

    @property
    def total_bytes(self) -> float:
        return self["total_metadata_bytes"]

    @property
    def total_count(self) -> float:
        return self["total_message_count"]


def cell_config(
    protocol: str,
    n: int,
    write_rate: float,
    *,
    ops_per_process: int,
    seed: int = 0,
    n_vars: int = 100,
    **overrides,
) -> SimulationConfig:
    """The canonical config for one paper grid cell."""
    return SimulationConfig(
        protocol=protocol,
        n_sites=n,
        n_vars=n_vars,
        write_rate=write_rate,
        ops_per_process=ops_per_process,
        seed=seed,
        **overrides,
    )


def _numeric_mean(dicts: list[dict]) -> CellResult:
    out = CellResult()
    for key in dicts[0]:
        vals = [d[key] for d in dicts]
        if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in vals):
            out[key] = sum(vals) / len(vals)
        else:
            out[key] = vals[0]
    out["n_runs"] = len(dicts)
    return out


def averaged_cell(
    protocol: str,
    n: int,
    write_rate: float,
    *,
    ops_per_process: int,
    seeds: Iterable[int] = (0,),
    n_vars: int = 100,
    **overrides,
) -> CellResult:
    """Run one cell under several seeds and average every numeric metric."""
    summaries = []
    for seed in seeds:
        cfg = cell_config(
            protocol, n, write_rate,
            ops_per_process=ops_per_process, seed=seed, n_vars=n_vars, **overrides,
        )
        # simcheck: ignore[SIM001] -- wall-clock throughput reporting; kept out of the deterministic summary
        t0 = time.perf_counter()
        result = run_simulation(cfg)
        wall_s = time.perf_counter() - t0  # simcheck: ignore[SIM001] -- see above
        summary = result.summary()
        # host-side throughput: wall-clock cost of the cell and how fast
        # the event loop chewed through it (kept out of RunResult.summary,
        # which must stay deterministic per seed)
        summary["wall_ms"] = wall_s * 1e3
        summary["events_per_sec"] = (
            result.total_sim_events / wall_s if wall_s > 0 else 0.0
        )
        summaries.append(summary)
    if not summaries:
        raise ValueError("need at least one seed")
    return _numeric_mean(summaries)


def paired_runs(
    protocols: tuple[str, ...],
    n: int,
    write_rate: float,
    *,
    ops_per_process: int,
    seed: int = 0,
    n_vars: int = 100,
    **overrides,
) -> dict[str, RunResult]:
    """Replay one generated schedule through several protocols.

    This is the paper's Table IV methodology: "the results of running
    the same operation event scheduling using Opt-Track-CRP and
    Opt-Track".
    """
    workload = generate_workload(
        n, n_vars=n_vars, write_rate=write_rate,
        ops_per_process=ops_per_process, seed=seed,
    )
    out: dict[str, RunResult] = {}
    for protocol in protocols:
        cfg = cell_config(
            protocol, n, write_rate,
            ops_per_process=ops_per_process, seed=seed, n_vars=n_vars, **overrides,
        )
        out[protocol] = run_simulation(cfg, workload=workload)
    return out
