"""Paper experiment configurations, sweep driver, and report formatting."""

from . import paper
from .figures import reproduce_all
from .configs import EXPERIMENTS, ExperimentSpec, bench_ops, bench_seeds
from .report import ascii_chart, csv_text, format_kv, format_table, write_csv
from .runner import RunResult, SimulationConfig, build_placement, run_simulation
from .sweep import CellResult, averaged_cell, cell_config, paired_runs

__all__ = [
    "SimulationConfig",
    "RunResult",
    "run_simulation",
    "build_placement",
    "EXPERIMENTS",
    "ExperimentSpec",
    "bench_ops",
    "bench_seeds",
    "averaged_cell",
    "paired_runs",
    "cell_config",
    "CellResult",
    "format_table",
    "format_kv",
    "csv_text",
    "write_csv",
    "ascii_chart",
    "paper",
    "reproduce_all",
]
