"""repro — causal consistency for partially replicated distributed shared memory.

A from-scratch Python reproduction of

    T. Y. Hsu and A. D. Kshemkalyani,
    "Performance of Causal Consistency Algorithms for Partially
    Replicated Systems", IPDPS Workshops 2016,

including the four protocols it evaluates (Full-Track, Opt-Track,
Opt-Track-CRP, and the Baldoni et al. optP baseline), the
discrete-event simulation substrate that replaces the paper's JDK/TCP
testbed, a causal-consistency checker, the analytic cost models, and a
benchmark harness regenerating every table and figure of the paper's
evaluation section.

Quickstart::

    from repro import SimulationConfig, run_simulation

    result = run_simulation(SimulationConfig(
        protocol="opt-track", n_sites=10, write_rate=0.5,
        ops_per_process=100, seed=42,
    ))
    print(result.summary())

For interactive, step-by-step use (no pre-planned workload) see
:class:`repro.cluster.CausalCluster`.
"""

from .analysis.model import (
    full_replication_message_count,
    partial_replication_message_count,
)
from .analysis.tradeoff import crossover_write_rate, partial_beats_full
from .cluster import CausalCluster
from .core.base import (
    CausalProtocol,
    ProtocolContext,
    create_protocol,
    get_protocol_class,
    protocol_names,
)
from .core.full_track import FullTrackProtocol
from .core.opt_track import OptTrackProtocol
from .core.opt_track_crp import OptTrackCRPProtocol
from .core.optp import OptPProtocol
from .experiments.runner import RunResult, SimulationConfig, run_simulation
from .memory.replication import (
    HashPlacement,
    Placement,
    RandomPlacement,
    RoundRobinPlacement,
    full_replication,
    paper_replication_factor,
)
from .memory.store import BOTTOM, SiteStore, WriteId
from .metrics.collector import MessageKind, MetricsCollector
from .metrics.sizing import DEFAULT_SIZE_MODEL, SizeModel
from .sim.checkpoint import DEFAULT_CHECKPOINT_INTERVAL_MS, DurabilityLayer
from .sim.crash import CatchupPolicy, CrashRecoveryManager, install_crash_recovery
from .sim.engine import Simulator
from .sim.failure_detector import DetectorPolicy, FailureDetector
from .sim.faults import (
    ChannelFaults,
    CrashEvent,
    FaultInjector,
    FaultPlan,
    OverloadEvent,
    Partition,
    seeded_crashes,
)
from .sim.network import (
    AdversarialLatency,
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    Network,
    PerPairLatency,
    UniformLatency,
)
from .sim.reliable import OverloadError, RetransmitPolicy
from .verify.causal_checker import CausalityViolation, check_causal_consistency
from .verify.sessions import check_all_session_guarantees
from .workload.generator import generate_workload
from .workload.schedule import Operation, OpKind, SiteSchedule, Workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # protocols
    "CausalProtocol",
    "ProtocolContext",
    "FullTrackProtocol",
    "OptTrackProtocol",
    "OptTrackCRPProtocol",
    "OptPProtocol",
    "create_protocol",
    "get_protocol_class",
    "protocol_names",
    # simulation
    "Simulator",
    "Network",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "PerPairLatency",
    "AdversarialLatency",
    # chaos / fault injection
    "ChannelFaults",
    "Partition",
    "FaultPlan",
    "FaultInjector",
    "RetransmitPolicy",
    "OverloadEvent",
    "OverloadError",
    # crash-recovery
    "CrashEvent",
    "seeded_crashes",
    "DurabilityLayer",
    "DEFAULT_CHECKPOINT_INTERVAL_MS",
    "DetectorPolicy",
    "FailureDetector",
    "CatchupPolicy",
    "CrashRecoveryManager",
    "install_crash_recovery",
    # memory
    "Placement",
    "RoundRobinPlacement",
    "RandomPlacement",
    "HashPlacement",
    "full_replication",
    "paper_replication_factor",
    "SiteStore",
    "WriteId",
    "BOTTOM",
    # workload
    "Workload",
    "SiteSchedule",
    "Operation",
    "OpKind",
    "generate_workload",
    # metrics
    "SizeModel",
    "DEFAULT_SIZE_MODEL",
    "MetricsCollector",
    "MessageKind",
    # running experiments
    "SimulationConfig",
    "RunResult",
    "run_simulation",
    # verification
    "check_causal_consistency",
    "CausalityViolation",
    "check_all_session_guarantees",
    # analysis
    "partial_replication_message_count",
    "full_replication_message_count",
    "crossover_write_rate",
    "partial_beats_full",
    # interactive
    "CausalCluster",
]
