"""Replication advisor: the paper's models turned into a planning tool.

Given a workload profile (system size, write rate, payload size, and
optionally measured metadata shapes), recommend full vs partial
replication and a protocol, with the quantitative ledger behind the
recommendation — the Section V-C discussion ("partial replication
generates much less messages ... full replication might improve the
latency") made executable.

The advisor applies three criteria, in the paper's own terms:

1. **message count** — eq. (2): partial wins iff ``w_rate > 2/(n+1)``;
2. **transfer volume** — metadata (from the cost models) plus payload
   (each SM/RM carries the object) per measured operation mix;
3. **storage** — p copies versus n copies of every object.

Read latency is reported as the trade-off the caller must accept:
partial replication turns a fraction ``(n-p)/n`` of reads into remote
round trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..memory.replication import paper_replication_factor
from ..metrics.sizing import DEFAULT_SIZE_MODEL, SizeModel
from .model import (
    full_replication_message_count,
    opt_track_crp_total_size,
    opt_track_total_size,
    partial_replication_message_count,
)
from .tradeoff import crossover_write_rate

__all__ = ["WorkloadProfile", "Recommendation", "recommend_replication"]


@dataclass(frozen=True)
class WorkloadProfile:
    """What the advisor needs to know about a deployment."""

    n_sites: int
    write_rate: float
    #: operations per unit time (any unit; only ratios matter)
    operations: float = 1000.0
    #: mean application payload bytes carried by an update (0 = metadata only)
    payload_bytes: float = 0.0
    #: candidate replication factor (default: the paper's 0.3 n)
    replication_factor: Optional[int] = None
    size_model: SizeModel = DEFAULT_SIZE_MODEL

    def __post_init__(self) -> None:
        if self.n_sites < 2:
            raise ValueError("advice needs at least two sites")
        if not 0.0 <= self.write_rate <= 1.0:
            raise ValueError("write rate must be in [0, 1]")
        if self.operations <= 0:
            raise ValueError("operations must be positive")
        if self.payload_bytes < 0:
            raise ValueError("payload bytes cannot be negative")

    @property
    def p(self) -> int:
        if self.replication_factor is not None:
            return self.replication_factor
        return paper_replication_factor(self.n_sites)

    @property
    def writes(self) -> float:
        return self.write_rate * self.operations

    @property
    def reads(self) -> float:
        return (1.0 - self.write_rate) * self.operations


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict plus its quantitative ledger."""

    replication: str                 #: "partial" or "full"
    protocol: str                    #: recommended protocol name
    partial_messages: float
    full_messages: float
    partial_transfer_bytes: float
    full_transfer_bytes: float
    storage_copies_partial: int
    storage_copies_full: int
    remote_read_fraction: float      #: reads that become round trips (partial)
    crossover_write_rate: float
    rationale: tuple[str, ...]

    @property
    def message_ratio(self) -> float:
        """partial / full message count (< 1: partial wins)."""
        if self.full_messages == 0:
            return float("inf") if self.partial_messages else 1.0
        return self.partial_messages / self.full_messages


def recommend_replication(profile: WorkloadProfile) -> Recommendation:
    """Apply the paper's models to a workload profile."""
    n, p = profile.n_sites, profile.p
    w, r = profile.writes, profile.reads
    model = profile.size_model

    partial_msgs = partial_replication_message_count(n, p, w, r)
    full_msgs = full_replication_message_count(n, w)

    partial_cost = opt_track_total_size(n, p, w, r, model)
    full_cost = opt_track_crp_total_size(n, w, model)
    # payload rides on every SM (replicating the object) and every RM
    partial_transfer = partial_cost.total_bytes + profile.payload_bytes * (
        partial_cost.sm_count + partial_cost.rm_count
    )
    full_transfer = full_cost.total_bytes + profile.payload_bytes * full_cost.sm_count

    threshold = crossover_write_rate(n)
    remote_fraction = (n - p) / n

    rationale: list[str] = []
    if profile.write_rate > threshold:
        rationale.append(
            f"eq. (2): write rate {profile.write_rate:.2f} exceeds the "
            f"crossover 2/(n+1) = {threshold:.3f}; partial replication "
            "sends fewer messages"
        )
    else:
        rationale.append(
            f"eq. (2): write rate {profile.write_rate:.2f} is below the "
            f"crossover {threshold:.3f}; full replication sends fewer messages"
        )
    if partial_transfer < full_transfer:
        rationale.append(
            f"transfer volume favours partial replication "
            f"({partial_transfer / 1e6:.2f} MB vs {full_transfer / 1e6:.2f} MB)"
        )
    else:
        rationale.append(
            f"transfer volume favours full replication "
            f"({full_transfer / 1e6:.2f} MB vs {partial_transfer / 1e6:.2f} MB)"
        )
    rationale.append(
        f"storage: {p} copies per object instead of {n} under partial "
        f"replication ({n / p:.1f}x saving)"
    )
    rationale.append(
        f"latency cost of partial replication: {remote_fraction:.0%} of reads "
        "become remote round trips"
    )

    # Decision rule: the two quantitative criteria vote; on a split the
    # transfer criterion wins because it includes the payload — the factor
    # Section V-C argues dominates in practice.
    count_favors_partial = profile.write_rate > threshold
    transfer_favors_partial = partial_transfer < full_transfer
    if count_favors_partial == transfer_favors_partial:
        partial_wins = count_favors_partial
    else:
        partial_wins = transfer_favors_partial
        rationale.append(
            "criteria split: following the transfer-volume criterion "
            "(it includes the payload)"
        )
    return Recommendation(
        replication="partial" if partial_wins else "full",
        protocol="opt-track" if partial_wins else "opt-track-crp",
        partial_messages=partial_msgs,
        full_messages=full_msgs,
        partial_transfer_bytes=partial_transfer,
        full_transfer_bytes=full_transfer,
        storage_copies_partial=p,
        storage_copies_full=n,
        remote_read_fraction=remote_fraction,
        crossover_write_rate=threshold,
        rationale=tuple(rationale),
    )
