"""Closed-form cost models from Section V of the paper.

These are the analytic counterparts of the simulation: expected message
counts and total metadata sizes as functions of (n, p, w, r) and the
size model.  The benchmark harness prints analytic and simulated values
side by side; integration tests assert the simulated counts match these
formulas exactly in expectation (and exactly, for deterministic
placements, once the workload's per-write locality is accounted for).

Count formulas (writes multicast to p replicas; a write by a site that
locally replicates the variable sends p-1 messages, otherwise p, and
with even replication the local-replica probability is p/n; a read is
remote with probability (n-p)/n and then costs one FM + one RM):

* partial replication:  ((p-1) + (n-p)/n) * w + 2 * r * (n-p)/n
* full replication:     (n-1) * w
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.sizing import DEFAULT_SIZE_MODEL, SizeModel

__all__ = [
    "partial_replication_message_count",
    "full_replication_message_count",
    "full_track_total_size",
    "opt_track_total_size",
    "opt_track_crp_total_size",
    "optp_total_size",
    "CostBreakdown",
]


def _validate(n: int, p: int, w: float, r: float) -> None:
    if n <= 0:
        raise ValueError("n must be positive")
    if not 1 <= p <= n:
        raise ValueError(f"p must be in [1, n]; got p={p}, n={n}")
    if w < 0 or r < 0:
        raise ValueError("operation counts cannot be negative")


def partial_replication_message_count(n: int, p: int, w: float, r: float) -> float:
    """Expected messages for w writes + r reads under partial replication."""
    _validate(n, p, w, r)
    sm = ((p - 1) + (n - p) / n) * w
    fetch_pairs = 2 * r * (n - p) / n
    return sm + fetch_pairs


def full_replication_message_count(n: int, w: float, r: float = 0.0) -> float:
    """Expected messages under full replication: reads are free."""
    _validate(n, n, w, r)
    return (n - 1) * w


@dataclass(frozen=True)
class CostBreakdown:
    """Expected counts and byte totals per message kind."""

    sm_count: float
    fm_count: float
    rm_count: float
    sm_bytes: float
    fm_bytes: float
    rm_bytes: float

    @property
    def total_count(self) -> float:
        return self.sm_count + self.fm_count + self.rm_count

    @property
    def total_bytes(self) -> float:
        return self.sm_bytes + self.fm_bytes + self.rm_bytes


def _partial_counts(n: int, p: int, w: float, r: float) -> tuple[float, float]:
    sm = ((p - 1) + (n - p) / n) * w
    remote_reads = r * (n - p) / n
    return sm, remote_reads


def full_track_total_size(
    n: int, p: int, w: float, r: float, model: SizeModel = DEFAULT_SIZE_MODEL
) -> CostBreakdown:
    """Full-Track: every SM and RM carries the n x n matrix — Θ(n²) each,
    for the paper's O(n² p w + n r (n - p)) total."""
    _validate(n, p, w, r)
    sm_count, remote = _partial_counts(n, p, w, r)
    return CostBreakdown(
        sm_count=sm_count,
        fm_count=remote,
        rm_count=remote,
        sm_bytes=sm_count * model.sm_full_track(n),
        fm_bytes=remote * model.fm(),
        rm_bytes=remote * model.rm_full_track(n),
    )


def opt_track_total_size(
    n: int,
    p: int,
    w: float,
    r: float,
    model: SizeModel = DEFAULT_SIZE_MODEL,
    *,
    amortized_log_entries: float | None = None,
    mean_dests_per_entry: float | None = None,
) -> CostBreakdown:
    """Opt-Track: SM/RM carry the amortized-O(n) log (Chandra et al. [18]).

    ``amortized_log_entries`` defaults to n (the amortized bound);
    ``mean_dests_per_entry`` defaults to 1 (destination lists are pruned
    aggressively, so surviving entries carry few destinations).  Pass
    measured values from a simulation for a calibrated prediction.
    """
    _validate(n, p, w, r)
    entries = float(n) if amortized_log_entries is None else amortized_log_entries
    dests = 1.0 if mean_dests_per_entry is None else mean_dests_per_entry
    if entries < 0 or dests < 0:
        raise ValueError("log shape parameters cannot be negative")
    log_bytes = entries * (model.log_entry_overhead + model.dest_id * dests)
    sm_size = (
        model.envelope_opt_track + model.var_id + model.value
        + model.site_id + model.clock + log_bytes
    )
    rm_size = (
        model.envelope_opt_track + model.value
        + model.site_id + model.clock + log_bytes
    )
    sm_count, remote = _partial_counts(n, p, w, r)
    return CostBreakdown(
        sm_count=sm_count,
        fm_count=remote,
        rm_count=remote,
        sm_bytes=sm_count * sm_size,
        fm_bytes=remote * model.fm(),
        rm_bytes=remote * rm_size,
    )


def opt_track_crp_total_size(
    n: int,
    w: float,
    model: SizeModel = DEFAULT_SIZE_MODEL,
    *,
    mean_log_entries: float = 2.0,
) -> CostBreakdown:
    """Opt-Track-CRP: (n-1) SMs per write, each O(d) — total O(n w d).

    ``mean_log_entries`` is the paper's d + 1; it is a small constant in
    practice (the log resets on every write).
    """
    _validate(n, n, w, 0.0)
    if mean_log_entries < 0:
        raise ValueError("log size cannot be negative")
    sm_size = (
        model.envelope_crp + model.var_id + model.value
        + model.site_id + model.clock + model.tuple_entry * mean_log_entries
    )
    sm_count = (n - 1) * w
    return CostBreakdown(sm_count, 0.0, 0.0, sm_count * sm_size, 0.0, 0.0)


def optp_total_size(
    n: int, w: float, model: SizeModel = DEFAULT_SIZE_MODEL
) -> CostBreakdown:
    """optP: (n-1) SMs per write, each carrying the size-n vector — O(n² w)."""
    _validate(n, n, w, 0.0)
    sm_count = (n - 1) * w
    return CostBreakdown(sm_count, 0.0, 0.0, sm_count * model.sm_optp(n), 0.0, 0.0)
