"""Structural introspection of Opt-Track logs.

The amortized-O(n) log is the load-bearing claim behind Opt-Track's
scalability (Figs. 2-4 rest on it).  This module dissects the live logs
of a finished run so the claim can be *inspected*, not just averaged:
per-site entry counts, destination-list histograms, per-writer entry
distribution, entry staleness (how far behind the site's applied clock
a record's write is), and tombstone accounting.

Used by ``repro run --protocol opt-track`` reporting, by tests, and
handy in a REPL when studying pruning behaviour.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..metrics.stats import summarize

if TYPE_CHECKING:
    from ..core.opt_track import OptTrackProtocol

__all__ = ["LogSnapshot", "snapshot_logs", "format_log_report"]


@dataclass(frozen=True)
class LogSnapshot:
    """Structural summary of the Opt-Track logs across a run's sites."""

    n_sites: int
    entries_per_site: tuple[int, ...]
    tombstones_per_site: tuple[int, ...]
    dest_list_histogram: dict[int, int]
    entries_per_writer: dict[int, int]
    #: per-record staleness: holder's applied clock of the record's
    #: writer minus the record's clock (>= 0 once applied; < 0 while the
    #: write is still in flight to the holder or not destined to it)
    staleness: tuple[int, ...]

    @property
    def mean_entries(self) -> float:
        if not self.entries_per_site:
            return 0.0
        return sum(self.entries_per_site) / len(self.entries_per_site)

    @property
    def max_entries(self) -> int:
        return max(self.entries_per_site, default=0)

    @property
    def mean_dests(self) -> float:
        total = sum(k * v for k, v in self.dest_list_histogram.items())
        count = sum(self.dest_list_histogram.values())
        return total / count if count else 0.0

    @property
    def empty_marker_fraction(self) -> float:
        """Share of records that are pure ∅-markers (newest-per-writer)."""
        count = sum(self.dest_list_histogram.values())
        if not count:
            return 0.0
        return self.dest_list_histogram.get(0, 0) / count


def snapshot_logs(protocols: Sequence["OptTrackProtocol"]) -> LogSnapshot:
    """Capture the structural state of every site's log."""
    entries_per_site: list[int] = []
    tombstones: list[int] = []
    dest_hist: Counter = Counter()
    per_writer: Counter = Counter()
    staleness: list[int] = []
    for proto in protocols:
        log = getattr(proto, "log", None)
        if log is None or not hasattr(log, "entries"):
            raise TypeError(
                f"protocol {type(proto).__name__} has no inspectable log"
            )
        entries = list(log.entries())
        entries_per_site.append(len(entries))
        tombstones.append(len(getattr(log, "_emptied", ())))
        for e in entries:
            dest_hist[len(e.dests)] += 1
            per_writer[e.writer] += 1
            staleness.append(int(proto.applied[e.writer]) - e.clock)
    return LogSnapshot(
        n_sites=len(list(protocols)),
        entries_per_site=tuple(entries_per_site),
        tombstones_per_site=tuple(tombstones),
        dest_list_histogram=dict(sorted(dest_hist.items())),
        entries_per_writer=dict(sorted(per_writer.items())),
        staleness=tuple(staleness),
    )


def format_log_report(snap: LogSnapshot) -> str:
    """Human-readable multi-line report of a log snapshot."""
    lines = [
        f"opt-track log structure across {snap.n_sites} sites",
        f"  entries/site : mean {snap.mean_entries:.1f}, max {snap.max_entries}",
        f"  tombstones   : {sum(snap.tombstones_per_site)} total",
        f"  dest lists   : mean {snap.mean_dests:.2f} destinations, "
        f"{snap.empty_marker_fraction:.0%} pure ∅-markers",
    ]
    if snap.staleness:
        s = summarize(snap.staleness)
        lines.append(
            f"  staleness    : median {s.p50:.0f} writes behind the "
            f"holder's applied clock (p95 {s.p95:.0f})"
        )
    hist = ", ".join(f"{k}:{v}" for k, v in snap.dest_list_histogram.items())
    lines.append(f"  |Dests| hist : {hist or '(empty)'}")
    return "\n".join(lines)
