"""Size-model calibration: deriving envelope constants from reference data.

The size model prices messages from their logical structure plus fixed
per-class envelopes (transport + serialization framing).  The envelopes
were calibrated once against the paper's own tables; this module keeps
that derivation *executable* so the calibration can be audited, redone
against a different reference (e.g. measurements of a real serializer),
or extended to new message classes.

The structural coefficients are knowable a priori (a Write matrix has
n² entries, a vector n entries); fitting therefore reduces to linear
regression of reference sizes against the structural term:

    size(n) ≈ envelope' + coefficient · term(n)

where ``envelope'`` absorbs the fixed fields (var id, value, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..metrics.sizing import DEFAULT_SIZE_MODEL, SizeModel

__all__ = [
    "LinearFit",
    "fit_linear",
    "fit_optp_envelope",
    "fit_full_track_envelope",
    "PAPER_OPTP_REFERENCE",
    "PAPER_FULL_TRACK_SM_REFERENCE",
]

#: Table III of the paper: optP per-SM bytes by n (exactly 209 + 10 n).
PAPER_OPTP_REFERENCE: dict[int, float] = {
    5: 259, 10: 309, 20: 409, 30: 509, 35: 559, 40: 609,
}

#: Table II of the paper: Full-Track per-SM bytes by n, w_rate=0.2.
PAPER_FULL_TRACK_SM_REFERENCE: dict[int, float] = {
    5: 518, 10: 1252, 20: 3870, 30: 8028, 40: 13547,
}


@dataclass(frozen=True)
class LinearFit:
    """Least-squares fit of sizes against one structural term."""

    intercept: float
    slope: float
    residual_rms: float
    max_relative_error: float

    def predict(self, term: float) -> float:
        return self.intercept + self.slope * term


def fit_linear(terms: Sequence[float], sizes: Sequence[float]) -> LinearFit:
    """Least-squares ``size ≈ intercept + slope * term``."""
    t = np.asarray(terms, dtype=float)
    s = np.asarray(sizes, dtype=float)
    if t.shape != s.shape or t.size < 2:
        raise ValueError("need matching term/size sequences of length >= 2")
    design = np.stack([np.ones_like(t), t], axis=1)
    coef, *_ = np.linalg.lstsq(design, s, rcond=None)
    intercept, slope = float(coef[0]), float(coef[1])
    predicted = intercept + slope * t
    residual_rms = float(np.sqrt(np.mean((predicted - s) ** 2)))
    max_rel = float(np.max(np.abs(predicted - s) / s))
    return LinearFit(intercept, slope, residual_rms, max_rel)


def fit_optp_envelope(
    reference: dict[int, float] | None = None,
) -> LinearFit:
    """Fit optP's SM size against n (term = vector length).

    Against the paper's Table III the fit is exact: slope 10 (bytes per
    vector entry), intercept 209 (envelope + var id + value).
    """
    ref = PAPER_OPTP_REFERENCE if reference is None else reference
    ns = sorted(ref)
    return fit_linear(ns, [ref[n] for n in ns])


def fit_full_track_envelope(
    reference: dict[int, float] | None = None,
) -> LinearFit:
    """Fit Full-Track's SM size against n² (term = matrix cells).

    Against the paper's Table II (w=0.2) the slope lands near 8 bytes
    per matrix cell with an intercept near the low hundreds — the basis
    for the default ``matrix_entry=8`` / ``envelope_full_track=306``.
    """
    ref = PAPER_FULL_TRACK_SM_REFERENCE if reference is None else reference
    ns = sorted(ref)
    return fit_linear([n * n for n in ns], [ref[n] for n in ns])


def verify_default_calibration(model: SizeModel = DEFAULT_SIZE_MODEL) -> dict:
    """How far the default model sits from the paper references.

    Returns per-anchor relative errors; used by tests to pin the
    calibration contract (optP exact; Full-Track within a few percent).
    """
    out: dict[str, float] = {}
    for n, ref in PAPER_OPTP_REFERENCE.items():
        out[f"optp_n{n}"] = abs(model.sm_optp(n) - ref) / ref
    for n, ref in PAPER_FULL_TRACK_SM_REFERENCE.items():
        out[f"full_track_n{n}"] = abs(model.sm_full_track(n) - ref) / ref
    return out
