"""Closed-form cost models and the partial-vs-full trade-off analysis."""

from .advisor import Recommendation, WorkloadProfile, recommend_replication
from .calibration import (
    LinearFit,
    fit_full_track_envelope,
    fit_linear,
    fit_optp_envelope,
    verify_default_calibration,
)
from .logstats import LogSnapshot, format_log_report, snapshot_logs
from .model import (
    full_replication_message_count,
    full_track_total_size,
    opt_track_crp_total_size,
    opt_track_total_size,
    optp_total_size,
    partial_replication_message_count,
)
from .tradeoff import (
    crossover_write_rate,
    message_count_ratio,
    partial_beats_full,
)

__all__ = [
    "partial_replication_message_count",
    "full_replication_message_count",
    "full_track_total_size",
    "opt_track_total_size",
    "opt_track_crp_total_size",
    "optp_total_size",
    "crossover_write_rate",
    "partial_beats_full",
    "message_count_ratio",
    "WorkloadProfile",
    "Recommendation",
    "recommend_replication",
    "LogSnapshot",
    "snapshot_logs",
    "format_log_report",
    "LinearFit",
    "fit_linear",
    "fit_optp_envelope",
    "fit_full_track_envelope",
    "verify_default_calibration",
]
