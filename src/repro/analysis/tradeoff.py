"""The partial-vs-full replication trade-off (Section V-C).

The paper's analytic contribution: comparing the message-count formulas
of Opt-Track (partial) and Opt-Track-CRP (full) yields the necessary
condition under which partial replication sends fewer messages,

    ((p-1) + (n-p)/n) w + 2 r (n-p)/n  <  (n-1) w
        <=>   w > 2 r / (n - 1)                       (eq. 1)
        <=>   w_rate > 2 / (n + 1)                    (eq. 2)

— remarkably independent of the replication factor p (the p-dependence
cancels:  both sides lose (n-p)(1 - 1/n) w when rearranged).  These
helpers evaluate the exact inequality, the closed-form threshold, and
the ratio curve the crossover bench sweeps.
"""

from __future__ import annotations

from .model import (
    full_replication_message_count,
    partial_replication_message_count,
)

__all__ = [
    "crossover_write_rate",
    "partial_beats_full",
    "message_count_ratio",
    "min_sites_for_write_rate",
]


def crossover_write_rate(n: int) -> float:
    """Eq. (2): the write rate above which partial replication wins."""
    if n < 1:
        raise ValueError("n must be at least 1")
    return 2.0 / (1 + n)


def partial_beats_full(n: int, p: int, w: float, r: float) -> bool:
    """Exact eq. (1): does partial replication send strictly fewer messages?"""
    return partial_replication_message_count(n, p, w, r) < (
        full_replication_message_count(n, w)
    )


def message_count_ratio(n: int, p: int, write_rate: float, total_ops: float = 1.0) -> float:
    """Partial / full message-count ratio at a given write rate.

    < 1 means partial replication wins.  Undefined (inf) for a pure-read
    workload, where full replication sends nothing at all.
    """
    if not 0.0 <= write_rate <= 1.0:
        raise ValueError("write rate must be in [0, 1]")
    w = write_rate * total_ops
    r = (1.0 - write_rate) * total_ops
    full = full_replication_message_count(n, w)
    partial = partial_replication_message_count(n, p, w, r)
    if full == 0:
        return float("inf") if partial > 0 else 1.0
    return partial / full


def min_sites_for_write_rate(write_rate: float) -> int:
    """Smallest n at which a given write rate favours partial replication.

    Inverse of eq. (2): n > 2 / w_rate - 1.
    """
    if not 0.0 < write_rate <= 1.0:
        raise ValueError("write rate must be in (0, 1]")
    n = int(2.0 / write_rate - 1.0) + 1
    # handle exact-threshold cases: the inequality is strict
    while crossover_write_rate(n) >= write_rate:
        n += 1
    return max(n, 1)
