"""Execution-history recording.

The verifier needs three relations out of a run:

* **program order** — per-site sequence of read/write operations;
* **read-from order** — which write each read returned (via write ids);
* **apply order** — per-site sequence in which update messages were
  locally applied (to check the activation predicates did their job).

:class:`HistoryRecorder` accumulates :class:`~repro.sim.events.EventRecord`
rows for all of these.  Recording is optional (``enabled=False`` turns
every method into a no-op) so large benchmark runs pay nothing for it.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..memory.store import WriteId
from ..sim.events import EventKind, EventRecord

__all__ = ["HistoryRecorder"]


class HistoryRecorder:
    """Accumulates the observable events of one simulation run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[EventRecord] = []

    # ------------------------------------------------------------------
    def record_write_op(
        self,
        *,
        time: float,
        site: int,
        var: int,
        value: object,
        write_id: WriteId,
        op_index: Optional[int] = None,
        dests: Optional[Iterable[int]] = None,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            EventRecord(
                kind=EventKind.WRITE_OP,
                time=time,
                site=site,
                var=var,
                value=value,
                write_id=write_id.as_tuple(),
                op_index=op_index,
                dests=tuple(sorted(dests)) if dests is not None else None,
            )
        )

    def record_read_op(
        self,
        *,
        time: float,
        site: int,
        var: int,
        value: object,
        write_id: Optional[WriteId],
        op_index: Optional[int] = None,
        remote: bool = False,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            EventRecord(
                kind=EventKind.READ_OP,
                time=time,
                site=site,
                var=var,
                value=value,
                write_id=write_id.as_tuple() if write_id is not None else None,
                op_index=op_index,
                detail="remote" if remote else "local",
            )
        )

    def record_apply(
        self,
        *,
        time: float,
        site: int,
        var: int,
        write_id: WriteId,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            EventRecord(
                kind=EventKind.APPLY,
                time=time,
                site=site,
                var=var,
                write_id=write_id.as_tuple(),
            )
        )

    def record_send(self, *, time: float, site: int, peer: int, detail: str = "") -> None:
        if not self.enabled:
            return
        self.events.append(
            EventRecord(kind=EventKind.SEND, time=time, site=site, peer=peer, detail=detail)
        )

    def record_fetch(self, *, time: float, site: int, peer: int, var: int) -> None:
        if not self.enabled:
            return
        self.events.append(
            EventRecord(kind=EventKind.FETCH, time=time, site=site, peer=peer, var=var)
        )

    def record_remote_return(self, *, time: float, site: int, peer: int, var: int) -> None:
        if not self.enabled:
            return
        self.events.append(
            EventRecord(kind=EventKind.REMOTE_RETURN, time=time, site=site, peer=peer, var=var)
        )

    # ------------------------------------------------------------------
    # views used by the checker
    # ------------------------------------------------------------------
    def of_kind(self, kind: EventKind) -> list[EventRecord]:
        return [e for e in self.events if e.kind is kind]

    def operations(self, site: Optional[int] = None) -> list[EventRecord]:
        """Read/write operations, in recording (== completion-time) order."""
        ops = [
            e
            for e in self.events
            if e.kind in (EventKind.WRITE_OP, EventKind.READ_OP)
            and (site is None or e.site == site)
        ]
        return ops

    def applies_at(self, site: int) -> list[EventRecord]:
        return [e for e in self.events if e.kind is EventKind.APPLY and e.site == site]

    def writes(self) -> list[EventRecord]:
        return self.of_kind(EventKind.WRITE_OP)

    def reads(self) -> list[EventRecord]:
        return self.of_kind(EventKind.READ_OP)

    def extend(self, events: Iterable[EventRecord]) -> None:
        if self.enabled:
            self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)
