"""Session-guarantee checkers.

Causal memory subsumes the four classic session guarantees (Terry et
al.), so every protocol in this repository must satisfy all of them —
but checking them *separately* localizes failures far better than the
full causal-memory checker, and the guarantees are meaningful to
downstream users on their own:

* **read your writes** — a read observes the issuing site's own latest
  preceding write to that variable, or something causally newer;
* **monotonic reads** — successive reads of a variable by one site never
  go causally backwards;
* **monotonic writes** — one site's writes are applied everywhere in
  issue order (per destination site);
* **writes follow reads** — a write issued after a read is ordered after
  the read's source write at every common destination.

All checkers consume the same :class:`~repro.verify.history.HistoryRecorder`
as the main checker and return lists of violation strings (empty = pass).
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from ..memory.replication import Placement
from ..sim.events import EventKind
from .graph import causality_graph, write_node
from .history import HistoryRecorder

__all__ = [
    "check_read_your_writes",
    "check_monotonic_reads",
    "check_monotonic_writes",
    "check_writes_follow_reads",
    "check_all_session_guarantees",
]


def _write_order(history: HistoryRecorder) -> tuple[nx.DiGraph, dict]:
    """Causality DAG plus a write -> descendant-writes reachability map."""
    g = causality_graph(history)
    if not nx.is_directed_acyclic_graph(g):
        raise ValueError("history is cyclic; run the main checker first")
    writes = [n for n, d in g.nodes(data=True) if d["kind"] == "w"]
    reach = {w: nx.descendants(g, w) for w in writes}
    return g, reach


def check_read_your_writes(history: HistoryRecorder) -> list[str]:
    """A site never reads causally *behind* its own preceding write.

    The causal-memory formulation: after writing w', a read of the same
    variable may return w' itself or any write not causally before w'
    (concurrent writes are legal — some causal serialization orders them
    after w'), but never ⊥ and never a strict causal ancestor of w'.
    """
    g, reach = _write_order(history)
    violations: list[str] = []
    last_own_write: dict[tuple[int, int], tuple] = {}  # (site, var) -> node
    for ev in history.operations():
        if ev.kind is EventKind.WRITE_OP:
            last_own_write[(ev.site, ev.var)] = write_node(*ev.write_id)
            continue
        own = last_own_write.get((ev.site, ev.var))
        if own is None:
            continue
        if ev.write_id is None:
            violations.append(
                f"site {ev.site} read ⊥ from var {ev.var} after writing it ({own})"
            )
            continue
        returned = write_node(*ev.write_id)
        if returned != own and own in reach.get(returned, set()):
            violations.append(
                f"site {ev.site} read {returned} from var {ev.var}, a strict "
                f"causal ancestor of its own write {own}"
            )
    return violations


def check_monotonic_reads(history: HistoryRecorder) -> list[str]:
    """Per (site, var): the sequence of writes returned by reads never
    steps to a causal predecessor of an already-observed write."""
    g, reach = _write_order(history)
    violations: list[str] = []
    last_seen: dict[tuple[int, int], tuple] = {}
    for ev in history.reads():
        key = (ev.site, ev.var)
        prev = last_seen.get(key)
        if ev.write_id is None:
            if prev is not None:
                violations.append(
                    f"site {ev.site} read ⊥ from var {ev.var} after observing {prev}"
                )
            continue
        current = write_node(*ev.write_id)
        if prev is not None and current != prev:
            # regression = current is a strict causal ancestor of prev
            if prev in reach.get(current, set()):
                violations.append(
                    f"site {ev.site} var {ev.var}: read regressed from "
                    f"{prev} to its causal ancestor {current}"
                )
        last_seen[key] = current
    return violations


def check_monotonic_writes(
    history: HistoryRecorder, placement: Optional[Placement] = None
) -> list[str]:
    """Each site's writes are applied at every site in issue order."""
    violations: list[str] = []
    applies: dict[int, list[tuple[int, int]]] = {}
    for ev in history.of_kind(EventKind.APPLY):
        applies.setdefault(ev.site, []).append(ev.write_id)  # type: ignore[arg-type]
    for site, seq in applies.items():
        last_clock: dict[int, int] = {}
        for writer, clock in seq:
            if clock <= last_clock.get(writer, 0):
                violations.append(
                    f"site {site} applied writer {writer}'s clock {clock} "
                    f"after {last_clock[writer]}"
                )
            else:
                last_clock[writer] = clock
    return violations


def check_writes_follow_reads(
    history: HistoryRecorder, placement: Optional[Placement] = None
) -> list[str]:
    """A write issued after reading value v is applied after v's write at
    every site applying both."""
    violations: list[str] = []
    # w2 (issued after site read w1) must follow w1 wherever both apply
    constraints: list[tuple[tuple, tuple]] = []
    last_read_source: dict[int, list] = {}
    for ev in history.operations():
        if ev.kind is EventKind.READ_OP:
            if ev.write_id is not None:
                last_read_source.setdefault(ev.site, []).append(ev.write_id)
        else:
            for source in last_read_source.get(ev.site, ()):
                constraints.append((source, ev.write_id))  # type: ignore[arg-type]
    positions: dict[int, dict[tuple, int]] = {}
    for ev in history.of_kind(EventKind.APPLY):
        site_positions = positions.setdefault(ev.site, {})
        site_positions[ev.write_id] = len(site_positions)
    for before, after in constraints:
        for site, pos in positions.items():
            if before in pos and after in pos and pos[before] > pos[after]:
                violations.append(
                    f"site {site} applied {after} (writes-follow-reads "
                    f"successor) before {before}"
                )
    return violations


def check_all_session_guarantees(
    history: HistoryRecorder, placement: Optional[Placement] = None
) -> dict[str, list[str]]:
    """Run all four checkers; returns {guarantee: violations}."""
    return {
        "read_your_writes": check_read_your_writes(history),
        "monotonic_reads": check_monotonic_reads(history),
        "monotonic_writes": check_monotonic_writes(history, placement),
        "writes_follow_reads": check_writes_follow_reads(history, placement),
    }
