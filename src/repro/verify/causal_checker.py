"""Causal-memory checker.

Validates a recorded execution against the causal memory model of
Ahamad et al. (Section II-A).  Three families of conditions are checked:

1. **Order sanity** — the po ∪ rf relation must be acyclic (an operation
   cannot causally depend on its own effects), and every read must
   return either |bot| or a value actually written to that variable.
2. **No stale reads** — for a read r(x)v returning write w, no other
   write w' to x may satisfy w ->co w' ->co r: the value was overwritten
   in the read's own causal past.  A read returning |bot| must have no
   write to x in its causal past at all.  This is the standard
   operational characterization of causal consistency violations.
3. **Causal apply order** — at every site, updates destined to it must
   be applied in an order extending ->co (this is what the activation
   predicates enforce; checking it catches predicate bugs even when no
   read happens to observe them).

Reachability over the causality DAG is computed once, in topological
order, with per-node ancestor bitmasks over write indices — O(V·E/w)
words — which keeps the checker usable on histories with thousands of
operations (integration-test scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx

from ..memory.replication import Placement
from ..sim.events import EventKind
from .graph import causality_graph, write_node
from .history import HistoryRecorder

__all__ = ["CausalityViolation", "CheckReport", "check_causal_consistency"]


@dataclass(frozen=True)
class CausalityViolation:
    """One detected violation of the causal memory model."""

    kind: str
    description: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.description}"


@dataclass
class CheckReport:
    """Outcome of a checker run."""

    violations: list[CausalityViolation]
    n_operations: int
    n_writes: int
    n_reads: int
    n_applies: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_violated(self) -> None:
        if self.violations:
            shown = "\n".join(str(v) for v in self.violations[:10])
            more = len(self.violations) - 10
            suffix = f"\n... and {more} more" if more > 0 else ""
            raise AssertionError(
                f"{len(self.violations)} causal consistency violation(s):\n"
                f"{shown}{suffix}"
            )


def _ancestor_masks(g: nx.DiGraph, write_index: dict[tuple, int]) -> dict[tuple, int]:
    """Per-node bitmask of causally preceding writes (strict ancestors)."""
    masks: dict[tuple, int] = {}
    for node in nx.topological_sort(g):
        mask = 0
        for pred in g.predecessors(node):
            mask |= masks[pred]
            idx = write_index.get(pred)
            if idx is not None:
                mask |= 1 << idx
        masks[node] = mask
    return masks


def check_causal_consistency(
    history: HistoryRecorder,
    placement: Optional[Placement] = None,
) -> CheckReport:
    """Check a recorded run; returns a report listing every violation.

    ``placement`` enables the apply-order check (condition 3), which
    needs to know each write's destination set; without it only the
    read-centric conditions are checked.
    """
    violations: list[CausalityViolation] = []
    g = causality_graph(history)

    if not nx.is_directed_acyclic_graph(g):
        cycle = nx.find_cycle(g)
        return CheckReport(
            violations=[
                CausalityViolation(
                    "cyclic-causality",
                    f"po ∪ rf contains a cycle, e.g. {cycle[:4]}",
                )
            ],
            n_operations=g.number_of_nodes(),
            n_writes=sum(1 for _, d in g.nodes(data=True) if d["kind"] == "w"),
            n_reads=sum(1 for _, d in g.nodes(data=True) if d["kind"] == "r"),
            n_applies=len(history.of_kind(EventKind.APPLY)),
        )

    writes = [n for n, d in g.nodes(data=True) if d["kind"] == "w"]
    reads = [n for n, d in g.nodes(data=True) if d["kind"] == "r"]
    write_index = {w: i for i, w in enumerate(writes)}
    writes_by_var: dict[int, list[tuple]] = {}
    for w in writes:
        writes_by_var.setdefault(g.nodes[w]["var"], []).append(w)

    masks = _ancestor_masks(g, write_index)

    # ------------------------------------------------------------------
    # condition 2: no stale reads
    # ------------------------------------------------------------------
    for r in reads:
        data = g.nodes[r]
        var = data["var"]
        rf = data["rf"]
        r_mask = masks[r]
        if rf is None:
            for w2 in writes_by_var.get(var, ()):  # any causally-past write is fatal
                if r_mask >> write_index[w2] & 1:
                    violations.append(
                        CausalityViolation(
                            "stale-bottom-read",
                            f"read {r} returned ⊥ but write {w2} to var {var} "
                            "is in its causal past",
                        )
                    )
            continue
        w = write_node(*rf)
        w_idx = write_index[w]
        for w2 in writes_by_var.get(var, ()):
            if w2 == w:
                continue
            i2 = write_index[w2]
            # w' in causal past of r, and w ->co w'  =>  r saw an
            # overwritten value
            if (r_mask >> i2 & 1) and (masks[w2] >> w_idx & 1):
                violations.append(
                    CausalityViolation(
                        "stale-read",
                        f"read {r} returned write {w} but {w2} overwrote "
                        f"var {var} in the read's causal past",
                    )
                )

    # ------------------------------------------------------------------
    # condition 3: per-site apply order extends ->co
    # ------------------------------------------------------------------
    n_applies = 0
    if placement is not None:
        applies_by_site: dict[int, list[tuple]] = {}
        for ev in history.of_kind(EventKind.APPLY):
            n_applies += 1
            applies_by_site.setdefault(ev.site, []).append(write_node(*ev.write_id))
        for site, applied_seq in applies_by_site.items():
            position = {w: k for k, w in enumerate(applied_seq)}
            applied_set = set(applied_seq)
            for w in applied_seq:
                if w not in write_index:
                    violations.append(
                        CausalityViolation(
                            "phantom-apply",
                            f"site {site} applied unknown write {w}",
                        )
                    )
                    continue
                mask = masks[w]
                for w2, i2 in write_index.items():
                    if not (mask >> i2 & 1):
                        continue
                    w2_dests = g.nodes[w2].get("dests")
                    if w2_dests is not None:
                        # recorded at write time — authoritative under
                        # elastic membership, where the final placement
                        # may disagree with the one the write used
                        if site not in w2_dests:
                            continue
                    elif not placement.is_replicated_at(g.nodes[w2]["var"], site):
                        continue  # not destined here; nothing to order
                    if w2 not in applied_set:
                        violations.append(
                            CausalityViolation(
                                "missing-apply",
                                f"site {site} applied {w} but not its causal "
                                f"predecessor {w2} destined to it",
                            )
                        )
                    elif position[w2] > position[w]:
                        violations.append(
                            CausalityViolation(
                                "apply-order",
                                f"site {site} applied {w} before its causal "
                                f"predecessor {w2}",
                            )
                        )
    else:
        n_applies = len(history.of_kind(EventKind.APPLY))

    return CheckReport(
        violations=violations,
        n_operations=len(writes) + len(reads),
        n_writes=len(writes),
        n_reads=len(reads),
        n_applies=n_applies,
    )
