"""Causal-consistency verification over recorded execution histories."""

from .causal_checker import (
    CausalityViolation,
    CheckReport,
    check_causal_consistency,
)
from .convergence import ConvergenceReport, check_convergence, divergent_variables
from .graph import causality_graph
from .history import HistoryRecorder
from .sessions import (
    check_all_session_guarantees,
    check_monotonic_reads,
    check_monotonic_writes,
    check_read_your_writes,
    check_writes_follow_reads,
)

__all__ = [
    "HistoryRecorder",
    "causality_graph",
    "check_causal_consistency",
    "CausalityViolation",
    "CheckReport",
    "check_all_session_guarantees",
    "check_read_your_writes",
    "check_monotonic_reads",
    "check_monotonic_writes",
    "check_writes_follow_reads",
    "check_convergence",
    "ConvergenceReport",
    "divergent_variables",
]
