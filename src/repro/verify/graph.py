"""Causality-order graph construction.

The causality order ->co of Section II-A is the transitive closure of
program order (per-process operation sequence) united with read-from
order (a read is ordered after the write whose value it returned).  This
module materializes that order as a ``networkx`` DiGraph over operation
nodes, which the checker — and any analysis interested in causal
structure (depth, fan-out, concurrency width) — can then traverse.

Node naming:

* a write is ``("w", site, clock)`` — its globally unique write id;
* a read is ``("r", site, k)`` — the k-th *operation* of that site.

Every node carries ``site``, ``var``, and (for reads) the ``rf`` write id
it returned, as attributes.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from ..sim.events import EventKind
from .history import HistoryRecorder

__all__ = ["causality_graph", "write_node", "read_node"]


def write_node(site: int, clock: int) -> tuple:
    return ("w", site, clock)


def read_node(site: int, k: int) -> tuple:
    return ("r", site, k)


def causality_graph(history: HistoryRecorder) -> nx.DiGraph:
    """Build the po ∪ rf edge relation (whose closure is ->co).

    Operations are taken in each site's recorded order, which equals
    program order because application processes are sequential.  The
    graph also receives an ``op_node`` index attribute mapping
    (site, per-site op position) -> node, used by the checker.
    """
    g = nx.DiGraph()
    per_site_ops: dict[int, list[Hashable]] = {}

    # first pass: create nodes in program order
    per_site_count: dict[int, int] = {}
    for ev in history.operations():
        k = per_site_count.get(ev.site, 0)
        per_site_count[ev.site] = k + 1
        if ev.kind is EventKind.WRITE_OP:
            node = write_node(*ev.write_id)  # type: ignore[misc]
            g.add_node(
                node, site=ev.site, var=ev.var, kind="w", value=ev.value,
                dests=ev.dests,
            )
        else:
            node = read_node(ev.site, k)
            g.add_node(
                node, site=ev.site, var=ev.var, kind="r",
                rf=ev.write_id, value=ev.value,
            )
        per_site_ops.setdefault(ev.site, []).append(node)

    # program-order edges
    for ops in per_site_ops.values():
        for a, b in zip(ops, ops[1:]):
            g.add_edge(a, b, order="po")

    # read-from edges
    for node, data in list(g.nodes(data=True)):
        if data["kind"] == "r" and data["rf"] is not None:
            w = write_node(*data["rf"])
            if w not in g:
                raise ValueError(
                    f"read {node} returned unknown write id {data['rf']}"
                )
            if g.nodes[w]["var"] != data["var"]:
                raise ValueError(
                    f"read {node} of var {data['var']} returned a write to "
                    f"var {g.nodes[w]['var']}"
                )
            g.add_edge(w, node, order="rf")

    return g
