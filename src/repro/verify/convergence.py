"""Replica convergence analysis.

Causal memory deliberately does **not** imply convergence: two writes
that are concurrent under ->co may be applied in different orders at
different replicas, leaving their final values divergent (that is the
price of low latency; "causal+" systems bolt on convergent conflict
handling to fix it — Lloyd et al.'s COPS being the canonical example).

This module measures, at quiescence, which variables diverged across
replicas and verifies the divergence is *legitimate*: the distinct final
values must come from causally concurrent writes.  A divergence between
causally *ordered* writes would mean an activation-predicate bug —
exactly the condition :func:`check_convergence` flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import networkx as nx

from .graph import causality_graph, write_node
from .history import HistoryRecorder

if TYPE_CHECKING:  # avoid a runtime cycle: core.base imports verify.history
    from ..core.base import CausalProtocol

__all__ = ["ConvergenceReport", "check_convergence", "divergent_variables"]


@dataclass
class ConvergenceReport:
    """Outcome of a convergence analysis at quiescence."""

    #: var -> {write id or None} of final values across its replicas
    final_values: dict[int, set]
    #: variables whose replicas ended with different values
    divergent: list[int]
    #: divergences between causally ORDERED writes — always a bug
    illegitimate: list[str]

    @property
    def ok(self) -> bool:
        """True when any divergence is between concurrent writes only."""
        return not self.illegitimate

    @property
    def divergence_rate(self) -> float:
        """Fraction of written variables with divergent replicas."""
        written = [v for v, vals in self.final_values.items() if vals != {None}]
        if not written:
            return 0.0
        return len(self.divergent) / len(written)


def divergent_variables(protocols: Sequence["CausalProtocol"]) -> dict[int, set]:
    """Final write id per variable per replica, collapsed to sets.

    Keys every variable any site replicates; a value set with more than
    one element means the replicas disagree at quiescence.
    """
    finals: dict[int, set] = {}
    for proto in protocols:
        store = proto.ctx.store
        for var in store.variables:
            slot = store.read(var)
            finals.setdefault(var, set()).add(slot.write_id)
    return finals


def check_convergence(
    protocols: Sequence["CausalProtocol"],
    history: Optional[HistoryRecorder] = None,
) -> ConvergenceReport:
    """Analyze replica agreement at quiescence.

    With a recorded ``history``, divergent values are checked for
    causal concurrency: two causally ordered writes ending up as
    different replicas' final values is reported as illegitimate.
    """
    finals = divergent_variables(protocols)
    divergent = sorted(v for v, vals in finals.items() if len(vals) > 1)

    illegitimate: list[str] = []
    if history is not None and divergent:
        g = causality_graph(history)
        reach = {
            n: nx.descendants(g, n)
            for n, d in g.nodes(data=True)
            if d["kind"] == "w"
        }
        for var in divergent:
            if None in finals[var]:
                # at quiescence every replica has applied every write to
                # its variable; an untouched replica next to written ones
                # is a missed apply, never legitimate concurrency
                illegitimate.append(
                    f"var {var}: some replica still holds ⊥ while others "
                    f"hold {sorted(w for w in finals[var] if w)}"
                )
            ids = [w for w in finals[var] if w is not None]
            for i, a in enumerate(ids):
                for b in ids[i + 1:]:
                    na, nb = write_node(*a.as_tuple()), write_node(*b.as_tuple())
                    if nb in reach.get(na, set()) or na in reach.get(nb, set()):
                        illegitimate.append(
                            f"var {var}: final values {a} and {b} are causally "
                            "ordered — replicas applying both must agree"
                        )
    return ConvergenceReport(
        final_values=finals, divergent=divergent, illegitimate=illegitimate
    )
