"""Durable-state layer for crash–recovery: checkpoints + write-ahead log.

The crash model (see :mod:`repro.sim.crash`) wipes a site's volatile
protocol state — clocks, KS logs, pending buffers, replica values — the
instant it crashes.  What survives is the site's *disk*: the last
periodic checkpoint (a :meth:`~repro.core.base.CausalProtocol.snapshot`
blob) plus a write-ahead log of every externally visible input the
protocol consumed since that checkpoint (messages received, writes and
reads issued locally).

Recovery is deterministic re-execution: restore the checkpoint, then
replay the WAL records in order through the normal protocol code paths
(with sends and metrics suppressed — the originals already happened and
the outbound reliable-channel queues are themselves durable).  Because
every protocol here is a deterministic state machine over its inputs,
replay reconstructs the exact pre-crash logical state.

The durability invariant that makes this safe is *ack-implies-durable*:
the reliable transport delivers a packet to the application (which
WAL-logs it synchronously) **before** sending the cumulative ack, so a
sender never retires a message the receiver could still forget.

Zero-overhead contract: a protocol with ``_wal is None`` (the default)
skips every logging branch — the seed path is byte-identical, mirroring
the ``tracer=None`` and ``fault_plan=None`` contracts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.base import CausalProtocol
    from ..metrics.collector import MetricsCollector
    from ..obs.metrics import MetricsRegistry
    from .engine import ScheduledEvent, Simulator

__all__ = [
    "DEFAULT_CHECKPOINT_INTERVAL_MS",
    "WalRecord",
    "SiteDisk",
    "DurabilityLayer",
]

#: applied when a crash plan is present but no interval was configured
DEFAULT_CHECKPOINT_INTERVAL_MS = 250.0


@dataclass(frozen=True)
class WalRecord:
    """One durable input to the protocol state machine.

    ``kind`` is ``"recv"`` (message delivered from ``src``), ``"write"``
    (local write of ``value`` to ``var``) or ``"read"`` (local read of
    ``var`` — logged because reads merge causal metadata on this family
    of protocols and bump the fetch-request counter).
    """

    kind: str
    src: int = -1
    var: int = -1
    value: object = None
    message: object = None


class SiteDisk:
    """The durable storage of one site: checkpoint blob + WAL tail.

    Installed as ``protocol._wal``; the protocol calls the ``log_*``
    methods from its input paths.  ``install_checkpoint`` atomically
    replaces the blob and truncates the log (a checkpoint subsumes every
    input replayed into it).
    """

    def __init__(self, site: int) -> None:
        self.site = site
        self.checkpoint: Optional[dict] = None
        self.checkpoint_time: float = 0.0
        self.wal: list[WalRecord] = []
        # lifetime counters (survive checkpoint truncation)
        self.checkpoints_taken = 0
        self.wal_appends = 0

    # -- logging (hot path; called only when a durability layer is on) --
    def log_recv(self, src: int, message: object) -> None:
        self.wal.append(WalRecord("recv", src=src, message=message))
        self.wal_appends += 1

    def log_write(self, var: int, value: object) -> None:
        self.wal.append(WalRecord("write", var=var, value=value))
        self.wal_appends += 1

    def log_read(self, var: int) -> None:
        self.wal.append(WalRecord("read", var=var))
        self.wal_appends += 1

    # ------------------------------------------------------------------
    def install_checkpoint(self, state: dict, now: float) -> None:
        self.checkpoint = state
        self.checkpoint_time = now
        self.wal.clear()
        self.checkpoints_taken += 1

    def __repr__(self) -> str:
        return (
            f"<SiteDisk site={self.site} checkpoints={self.checkpoints_taken} "
            f"wal={len(self.wal)}>"
        )


@dataclass
class CheckpointPolicy:
    """How often the durability layer checkpoints live sites."""

    interval_ms: float = DEFAULT_CHECKPOINT_INTERVAL_MS

    def __post_init__(self) -> None:
        if self.interval_ms <= 0:
            raise ValueError("checkpoint interval must be positive")


class DurabilityLayer:
    """Periodic checkpointing of every live site's protocol state.

    One global tick checkpoints all live sites each ``interval_ms`` —
    checkpoints cost nothing in simulated time (the paper's model prices
    only network traffic), so synchronising them keeps the event count
    low and the schedule deterministic.

    The tick is self-perpetuating, which would keep the simulator alive
    forever; it therefore consults ``quiescent()`` (supplied by the
    crash-recovery manager) and stops rescheduling once the run has
    nothing left to do.  ``wake()`` restarts it — used by the
    interactive cluster when new operations arrive after a lull.
    """

    def __init__(
        self,
        sim: "Simulator",
        protocols: "list[CausalProtocol]",
        *,
        interval_ms: float = DEFAULT_CHECKPOINT_INTERVAL_MS,
        collector: "Optional[MetricsCollector]" = None,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.sim = sim
        self.protocols = protocols
        self.interval_ms = float(interval_ms)
        self.collector = collector
        self.disks: list[SiteDisk] = []
        #: ground truth for "is this site down right now"; wired by the
        #: crash-recovery manager (always-up when running standalone)
        self.is_down: Callable[[int], bool] = lambda site: False
        #: stop predicate for the periodic tick; wired by the manager
        self.quiescent: Callable[[], bool] = lambda: False
        self._tick_event: "Optional[ScheduledEvent]" = None
        self._stopped = False
        self._attached = False
        #: metrics registry (wired post-construction by the runner;
        #: None is the zero-overhead path)
        self.registry: "Optional[MetricsRegistry]" = None

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Install a disk on every protocol and take checkpoint zero.

        The initial checkpoint guarantees recovery is possible even if a
        site crashes before the first periodic tick fires.
        """
        if self._attached:
            raise RuntimeError("durability layer already attached")
        self._attached = True
        for proto in self.protocols:
            disk = SiteDisk(proto.site)
            disk.install_checkpoint(proto.snapshot(), self.sim.now)
            proto._wal = disk
            self.disks.append(disk)
        self._tick_event = self.sim.schedule(
            self.interval_ms, self._tick, label="checkpoint.tick"
        )

    def disk(self, site: int) -> SiteDisk:
        return self.disks[site]

    def add_site(self, proto: "CausalProtocol", state: dict,
                 now: float) -> SiteDisk:
        """Elastic membership: give a joiner a disk seeded with ``state``.

        ``state`` (the donor fork, or a fresh snapshot under partial
        replication) becomes checkpoint zero, so the joiner is crash-
        recoverable from the instant it is announced.  Disks stay
        indexed by site id because joiner ids are allocated in order.
        """
        if not self._attached:
            raise RuntimeError("durability layer not attached")
        disk = SiteDisk(proto.site)
        disk.install_checkpoint(state, now)
        proto._wal = disk
        if proto not in self.protocols:
            self.protocols.append(proto)
        self.disks.append(disk)
        return disk

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._tick_event = None
        quiescent = self.quiescent()
        now = self.sim.now
        for proto, disk in zip(self.protocols, self.disks):
            if self.is_down(proto.site):
                continue  # a crashed site cannot write its own disk
            if proto._departed_status is not None:
                continue  # a departed site's disk is frozen history
            if quiescent and not disk.wal:
                continue  # nothing new since the last checkpoint
            wal_len = len(disk.wal)
            disk.install_checkpoint(proto.snapshot(), now)
            if self.collector is not None:
                self.collector.record_checkpoint()
            if self.registry is not None:
                self.registry.inc(
                    "wal_checkpoints_total",
                    help_text="checkpoints installed across all sites")
                self.registry.observe(
                    "wal_tail_records", wal_len,
                    help_text="WAL records truncated by each checkpoint")
        if quiescent:
            # one final checkpoint above truncated every WAL, so a later
            # crash (interactive drivers) replays only post-wake inputs
            self._stopped = True
            return
        self._tick_event = self.sim.schedule(
            self.interval_ms, self._tick, label="checkpoint.tick"
        )

    def wake(self) -> None:
        """Restart the periodic tick after a quiescent stop."""
        if not self._attached or not self._stopped or self._tick_event is not None:
            return
        self._stopped = False
        self._tick_event = self.sim.schedule(
            self.interval_ms, self._tick, label="checkpoint.tick"
        )

    @property
    def checkpoints_taken(self) -> int:
        return sum(d.checkpoints_taken for d in self.disks)
