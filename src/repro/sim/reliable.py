"""Reliable exactly-once FIFO delivery over a lossy transport.

A minimal model of the TCP machinery the paper's testbed relied on:
per-channel sequence numbers, cumulative acks, retransmission timers
with exponential backoff + jitter, duplicate suppression, and an
out-of-order reassembly buffer.  Layered between the protocols and the
fault-injecting raw transmission path of :class:`~repro.sim.network.Network`,
it restores the channel guarantees (no loss, no duplication, no
reordering within a channel) that the causal protocols assume — so the
chaos suite can assert the protocols stay correct when the *network*
misbehaves, not just when latency is adversarial.

Overload robustness (the PR-8 layer):

* **Adaptive retransmission** — each channel estimates its round-trip
  time with the Jacobson/Karels SRTT + RTTVAR filter and arms its timer
  at ``SRTT + 4*RTTVAR`` (clamped to ``[min_rto_ms, max_rto_ms]``);
  Karn's rule excludes retransmitted packets from sampling.  A fixed
  ``base_rto_ms`` remains available via ``RetransmitPolicy(adaptive=False)``.
* **Flow control** — at most ``send_window`` packets are in flight per
  channel; excess sends queue in a durable per-channel backlog, and the
  receiver's reassembly buffer is bounded by ``reorder_window``.  A
  non-empty backlog raises a *backpressure* signal that propagates up to
  protocol PUT admission (:meth:`ReliableTransport.backpressured`), and
  past ``shed_backlog`` the site sheds load with a typed
  :class:`OverloadError`.
* **Paced heal flush** — :meth:`ReliableChannel.flush_retransmit` sends
  at most ``heal_burst`` packets immediately and paces the remainder
  across roughly one estimated RTT, so a healed link is not greeted
  with a go-back-N burst that self-inflicts drops under spike plans.
* **Circuit breaker** — ``breaker_failures`` consecutive timeouts trip
  a channel into degraded probe mode (one packet per timeout); the
  first ack that makes progress closes the breaker and triggers a paced
  catch-up flush.

The layer is only instantiated when a :class:`~repro.sim.faults.FaultInjector`
is attached; the default reliable path through ``Network.send`` is
byte-for-byte the seed behavior (no sequence numbers, no acks, no
timers — zero overhead when chaos is off).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..core.netpolicy import OverloadError, RetransmitPolicy, RtoEstimator
from .engine import ScheduledEvent
from .faults import FaultInjector

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from ..obs.metrics import MetricsRegistry
    from .network import Network

#: infra packet interceptor signature:
#: ``handler(src, dst, packet, dead) -> consumed``
PacketHandler = Callable[[int, int, object, bool], bool]

__all__ = [
    "RetransmitPolicy",
    "DataPacket",
    "AckPacket",
    "OverloadError",
    "ReliableChannel",
    "ReliableTransport",
    "ACK_SIZE_BYTES",
]

#: modelled wire size of a cumulative ack (seq number + envelope)
ACK_SIZE_BYTES = 20.0


@dataclass(frozen=True)
class DataPacket:
    """One transmission attempt of an application message."""

    seq: int
    payload: object
    size_bytes: float


@dataclass(frozen=True)
class AckPacket:
    """Cumulative ack: every seq <= ``cumulative`` has been received."""

    cumulative: int


class ReliableChannel:
    """Sender + receiver state for one directed channel (src -> dst)."""

    def __init__(self, transport: "ReliableTransport", src: int, dst: int) -> None:
        self.transport = transport
        self.src = src
        self.dst = dst
        policy = transport.policy
        # sender side
        self.next_seq = 0
        self.unacked: dict[int, DataPacket] = {}  # insertion-ordered by seq
        self._backlog: deque[DataPacket] = deque()
        self.rto = policy.base_rto_ms
        self._timer: Optional[ScheduledEvent] = None
        self.retransmissions = 0
        self.unacked_peak = 0
        # RTT estimator (Jacobson/Karels); _retx is Karn's-rule taint,
        # _flight_ok marks seqs with at least one non-dropped attempt in
        # flight — a later resend of those is spurious by construction
        self._est = RtoEstimator(policy)
        self._sent_at: dict[int, float] = {}
        self._retx: set[int] = set()
        self._flight_ok: set[int] = set()
        # circuit breaker
        self.consecutive_timeouts = 0
        self.degraded = False
        self.breaker_trips = 0
        # paced heal flush
        self._flush_queue: deque[int] = deque()
        self._pacer: Optional[ScheduledEvent] = None
        self._pace_ms = 0.0
        # receiver side
        self.next_expected = 0
        self._reorder: dict[int, DataPacket] = {}
        self.duplicate_drops = 0
        self.reorder_peak = 0
        self.reorder_overflows = 0

    @property
    def paused(self) -> bool:
        """True while the failure detector suspects ``dst`` is down:
        sends queue durably but nothing is transmitted and no timer
        burns — retransmission resumes when the suspicion clears."""
        return (self.src, self.dst) in self.transport.paused_pairs

    @property
    def pending(self) -> int:
        """Packets queued durably at this sender (in flight + backlog)."""
        return len(self.unacked) + len(self._backlog)

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT estimate in ms (None before the first sample)."""
        return self._est.srtt

    @property
    def rttvar(self) -> float:
        """RTT mean-deviation estimate in ms (0 before the first sample)."""
        return self._est.rttvar

    @property
    def rtt_samples(self) -> int:
        """Lifetime count of RTT samples accepted by the estimator."""
        return self._est.samples

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send(self, payload: object, size_bytes: float) -> Optional[float]:
        packet = DataPacket(self.next_seq, payload, size_bytes)
        self.next_seq += 1
        if len(self.unacked) >= self.transport.policy.send_window or self.degraded:
            # window full (or breaker open): queue durably and signal
            # backpressure; on_ack promotes in seq order
            self._backlog.append(packet)
            self.transport.note_backlog_grow(self.src, len(self._backlog) == 1)
            return None
        self.unacked[packet.seq] = packet
        if len(self.unacked) > self.unacked_peak:
            self.unacked_peak = len(self.unacked)
        if self.paused:
            return None
        self._sent_at[packet.seq] = self.transport.sim.now
        delivery = self.transport.transmit(self.src, self.dst, packet, size_bytes)
        if delivery is not None:
            self._flight_ok.add(packet.seq)
        self._arm_timer()
        return delivery

    def on_ack(self, cumulative: int) -> None:
        acked = [seq for seq in self.unacked if seq <= cumulative]
        if not acked:
            return
        transport = self.transport
        adaptive = transport.policy.adaptive
        now = transport.sim.now
        for seq in acked:
            del self.unacked[seq]
            sent = self._sent_at.pop(seq, None)
            self._flight_ok.discard(seq)
            if seq in self._retx:
                # Karn's rule: a retransmitted packet's ack is ambiguous
                self._retx.discard(seq)
            elif adaptive and sent is not None:
                self._rtt_sample(now - sent)
        # forward progress: close the breaker and restart the timer from
        # the freshly-estimated timeout
        self.consecutive_timeouts = 0
        reopened = False
        if self.degraded:
            self.degraded = False
            reopened = True
            transport.count_breaker_close(self.src, self.dst)
        self.rto = self._fresh_rto()
        self._cancel_timer()
        if reopened and self.unacked:
            self.flush_retransmit()  # paced catch-up: the probe got through
        if not self.paused:
            self._promote_backlog()
        if self.unacked:
            self._arm_timer()
        elif not self._backlog:
            self._cancel_pacer()
            self.transport.note_drained(self)

    def _rtt_sample(self, rtt: float) -> None:
        """Jacobson/Karels: SRTT/RTTVAR EWMA (alpha=1/8, beta=1/4)."""
        self._est.sample(rtt)

    def _fresh_rto(self) -> float:
        """RTO for a freshly-restarted timer: estimated when samples
        exist, the static base otherwise (also the fixed-policy path)."""
        return self._est.fresh_rto()

    def _promote_backlog(self) -> None:
        """Move backlogged packets into freed window slots and transmit."""
        if self.degraded or self.paused or not self._backlog:
            return
        transport = self.transport
        window = transport.policy.send_window
        now = transport.sim.now
        promoted = 0
        while self._backlog and len(self.unacked) < window:
            packet = self._backlog.popleft()
            promoted += 1
            self.unacked[packet.seq] = packet
            self._sent_at[packet.seq] = now
            delivery = transport.transmit(self.src, self.dst, packet,
                                          packet.size_bytes)
            if delivery is not None:
                self._flight_ok.add(packet.seq)
        if promoted:
            transport.note_backlog_shrink(self.src, promoted,
                                          not self._backlog)
            if len(self.unacked) > self.unacked_peak:
                self.unacked_peak = len(self.unacked)
            self._arm_timer()

    def flush_retransmit(self) -> None:
        """Eagerly retransmit the unacked backlog (partition heal,
        suspicion cleared, rejoin): at most ``heal_burst`` packets now,
        the rest paced across roughly one estimated RTT."""
        if not self.unacked or self.paused:
            return
        transport = self.transport
        policy = transport.policy
        self.consecutive_timeouts = 0
        if self.degraded:
            self.degraded = False
            transport.count_breaker_close(self.src, self.dst)
        self.rto = self._fresh_rto()
        self._cancel_timer()
        self._cancel_pacer()
        seqs = sorted(self.unacked)
        burst = policy.heal_burst
        self._retransmit_seqs(seqs[:burst])
        rest = seqs[burst:]
        if rest:
            self._flush_queue.extend(rest)
            chunks = -(-len(rest) // burst)  # ceil division
            rtt_est = (self._est.srtt if self._est.srtt is not None
                       else policy.base_rto_ms / 2.0)
            self._pace_ms = max(rtt_est / chunks, 0.01)
            self._schedule_pacer()
        else:
            self._arm_timer()

    def _retransmit_all(self) -> None:
        # go-back-N: resend every unacked packet in sequence order; the
        # receiver's reorder buffer absorbs any that already arrived
        self._retransmit_seqs(sorted(self.unacked))

    def _retransmit_seqs(self, seqs: list[int]) -> None:
        transport = self.transport
        tracer = transport.net.tracer
        now = transport.sim.now
        for seq in seqs:
            packet = self.unacked[seq]
            self.retransmissions += 1
            self._retx.add(seq)  # Karn: this seq's RTT is ambiguous now
            if seq in self._flight_ok:
                # a prior attempt is (or was) en route undropped — this
                # resend duplicates work the network already did
                transport.count_spurious_retransmission()
            transport.count_retransmission(self.src, packet.size_bytes)
            if tracer is not None:
                tracer.msg_retransmit(self.src, self.dst, packet.payload,
                                      ts=now)
            delivery = transport.transmit(self.src, self.dst, packet,
                                          packet.size_bytes)
            if delivery is not None:
                self._flight_ok.add(seq)

    def _on_timeout(self) -> None:
        self._timer = None
        if not self.unacked or self.paused:
            return
        policy = self.transport.policy
        self.consecutive_timeouts += 1
        if (not self.degraded and policy.breaker_failures > 0
                and self.consecutive_timeouts >= policy.breaker_failures):
            # circuit breaker: the channel looks dead — stop multiplying
            # its pain and probe with a single packet per timeout
            self.degraded = True
            self.breaker_trips += 1
            self.transport.count_breaker_trip(self.src, self.dst)
        if self.degraded:
            self._retransmit_seqs(sorted(self.unacked)[:1])
        else:
            self._retransmit_all()
        self.rto = min(self.rto * policy.backoff, policy.max_rto_ms)
        self._arm_timer()

    def _arm_timer(self) -> None:
        if (self._timer is not None or self._pacer is not None
                or not self.unacked or self.paused):
            return
        policy = self.transport.policy
        jitter = (
            float(self.transport.injector.rng.uniform(0.0, policy.jitter_ms))
            if policy.jitter_ms else 0.0
        )
        self._timer = self.transport.sim.schedule(
            self.rto + jitter, self._on_timeout,
            label=f"rto {self.src}->{self.dst}",
        )

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # paced heal flush
    # ------------------------------------------------------------------
    def _schedule_pacer(self) -> None:
        self._pacer = self.transport.sim.schedule(
            self._pace_ms, self._on_pacer,
            label=f"pace {self.src}->{self.dst}",
        )

    def _on_pacer(self) -> None:
        self._pacer = None
        if self.paused:
            self._flush_queue.clear()
            return
        burst = self.transport.policy.heal_burst
        chunk: list[int] = []
        while self._flush_queue and len(chunk) < burst:
            seq = self._flush_queue.popleft()
            if seq in self.unacked:  # skip anything acked meanwhile
                chunk.append(seq)
        if chunk:
            self._retransmit_seqs(chunk)
        if self._flush_queue:
            self._schedule_pacer()
        elif self.unacked:
            self._arm_timer()

    def _cancel_pacer(self) -> None:
        self._flush_queue.clear()
        if self._pacer is not None:
            self._pacer.cancel()
            self._pacer = None

    def _reset_estimator(self) -> None:
        """Volatile sender state dies with a crash of ``src``; the
        durable unacked/backlog queues and seq numbers survive."""
        self._est.reset()
        self._sent_at.clear()
        self._retx.clear()
        self._flight_ok.clear()
        self.consecutive_timeouts = 0
        self.degraded = False

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def on_data(self, packet: DataPacket) -> None:
        if packet.seq < self.next_expected or packet.seq in self._reorder:
            # retransmit of something already received: suppress, but
            # still ack so the sender stops resending
            self.duplicate_drops += 1
            self.transport.count_duplicate_drop()
        elif (packet.seq != self.next_expected
              and len(self._reorder) >= self.transport.policy.reorder_window):
            # bounded reassembly: the buffer is full of other gaps, so
            # the out-of-order packet is dropped; the cumulative ack
            # below shows the sender where the gap starts and its timer
            # re-covers the loss.  An in-order packet is always taken —
            # it drains the buffer instead of growing it.
            self.reorder_overflows += 1
            self.transport.count_reorder_overflow()
        else:
            self._reorder[packet.seq] = packet
            while self.next_expected in self._reorder:
                ready = self._reorder.pop(self.next_expected)
                self.next_expected += 1
                self.transport.deliver_app(self.src, self.dst, ready.payload)
            if len(self._reorder) > self.reorder_peak:
                self.reorder_peak = len(self._reorder)
        self.transport.send_ack(self.dst, self.src, self.next_expected - 1)

    def __repr__(self) -> str:
        return (
            f"<ReliableChannel {self.src}->{self.dst} next_seq={self.next_seq} "
            f"unacked={len(self.unacked)} backlog={len(self._backlog)} "
            f"expected={self.next_expected}>"
        )


class ReliableTransport:
    """All reliable channels of one network, plus heal/recovery tracking."""

    def __init__(
        self,
        network: "Network",
        injector: FaultInjector,
        policy: Optional[RetransmitPolicy] = None,
    ) -> None:
        self.net = network
        self.sim = network.sim
        self.injector = injector
        self.policy = policy if policy is not None else RetransmitPolicy()
        self._channels: dict[tuple[int, int], ReliableChannel] = {}
        #: site -> heal time of the partition it is recovering from
        self._recovering: dict[int, float] = {}
        #: (src, dst) pairs whose sender currently suspects the receiver
        #: is down: transmission and timers are paused (sends still queue)
        self.paused_pairs: set[tuple[int, int]] = set()
        #: infra packet interceptors (heartbeats, anti-entropy sync):
        #: ``handler(src, dst, packet, dead) -> consumed``; tried before
        #: the ack/data machinery on every physical arrival
        self.packet_handlers: list[PacketHandler] = []
        # aggregate counters (mirrored into the collector when attached)
        self.retransmissions = 0
        self.retransmission_bytes = 0.0
        self.spurious_retransmissions = 0
        self.duplicate_drops = 0
        self.reorder_overflows = 0
        self.acks_sent = 0
        self.ack_bytes = 0.0
        self.breaker_trips = 0
        self.breaker_closes = 0
        self.backpressure_delays = 0
        self.overload_sheds = 0
        #: backpressure bookkeeping: per-site count of channels with a
        #: non-empty backlog, and total backlogged packets per site —
        #: both O(1) to query on the admission path
        self._bp_channels: dict[int, int] = {}
        self._backlog_total: dict[int, int] = {}
        for p in injector.plan.partitions:
            if math.isfinite(p.heal_ms):
                self.sim.schedule_at(
                    max(self.sim.now, p.heal_ms),
                    lambda p=p: self.on_heal(p.heal_ms, p.group),
                    label=f"heal partition {sorted(p.group)}",
                )

    # ------------------------------------------------------------------
    def channel(self, src: int, dst: int) -> ReliableChannel:
        key = (src, dst)
        ch = self._channels.get(key)
        if ch is None:
            ch = self._channels[key] = ReliableChannel(self, src, dst)
        return ch

    def send(self, src: int, dst: int, message: object,
             size_bytes: float) -> Optional[float]:
        return self.channel(src, dst).send(message, size_bytes)

    def register_packet_handler(self, handler: "PacketHandler") -> None:
        """Add an infra packet interceptor (heartbeat / sync layers)."""
        self.packet_handlers.append(handler)

    def deliver_packet(self, phys_src: int, phys_dst: int, packet: object) -> None:
        """Physical delivery entry point (called by the network)."""
        for handler in self.packet_handlers:
            if handler(phys_src, phys_dst, packet, False):
                return
        if isinstance(packet, AckPacket):
            # an ack for channel (a -> b) travels physically b -> a
            ch = self._channels.get((phys_dst, phys_src))
            if ch is not None:
                ch.on_ack(packet.cumulative)
            return
        assert isinstance(packet, DataPacket)
        self.channel(phys_src, phys_dst).on_data(packet)

    def on_dead_drop(self, phys_src: int, phys_dst: int, packet: object) -> None:
        """A packet hit the wire of a down site: data and acks simply
        vanish (the sender's durable queue covers them), but infra
        handlers are told so their bookkeeping stays exact."""
        for handler in self.packet_handlers:
            if handler(phys_src, phys_dst, packet, True):
                return

    # ------------------------------------------------------------------
    # plumbing back into the network
    # ------------------------------------------------------------------
    def transmit(self, src: int, dst: int, packet: object,
                 size_bytes: float) -> Optional[float]:
        return self.net._transmit_raw(src, dst, packet, size_bytes)

    def deliver_app(self, src: int, dst: int, payload: object) -> None:
        self.net._deliver_app(src, dst, payload)

    def send_ack(self, from_site: int, to_site: int, cumulative: int) -> None:
        self.acks_sent += 1
        self.ack_bytes += ACK_SIZE_BYTES
        if self.net.collector is not None:
            self.net.collector.record_ack(ACK_SIZE_BYTES)
        registry = self.net.registry
        if registry is not None:
            registry.inc(
                "net_acks_total",
                help_text="cumulative-ack packets sent by the reliable layer")
            registry.ledger.record_transport("ack", from_site, ACK_SIZE_BYTES)
        self.net._transmit_raw(from_site, to_site, AckPacket(cumulative),
                               ACK_SIZE_BYTES)

    def count_retransmission(self, src: int, size_bytes: float) -> None:
        self.retransmissions += 1
        self.retransmission_bytes += size_bytes
        if self.net.collector is not None:
            self.net.collector.record_retransmission(size_bytes=size_bytes)
        registry = self.net.registry
        if registry is not None:
            registry.inc(
                "net_retransmissions_total",
                help_text="timer- or heal-driven retransmissions")
            registry.ledger.record_transport("retransmit", src, size_bytes)

    def count_spurious_retransmission(self) -> None:
        self.spurious_retransmissions += 1
        if self.net.collector is not None:
            self.net.collector.record_spurious_retransmission()
        if self.net.registry is not None:
            self.net.registry.inc(
                "net_spurious_retransmissions_total",
                help_text="retransmissions of packets that already had a "
                          "non-dropped attempt in flight")

    def count_duplicate_drop(self) -> None:
        self.duplicate_drops += 1
        if self.net.collector is not None:
            self.net.collector.record_duplicate_drop()
        if self.net.registry is not None:
            self.net.registry.inc(
                "net_duplicate_drops_total",
                help_text="already-delivered packets discarded by receivers")
        if self.net.tracer is not None:
            self.net.tracer.timeseries.incr("net.dup_drops", self.sim.now)

    def count_reorder_overflow(self) -> None:
        self.reorder_overflows += 1
        if self.net.collector is not None:
            self.net.collector.record_reorder_overflow()
        if self.net.registry is not None:
            self.net.registry.inc(
                "net_reorder_overflows_total",
                help_text="out-of-order packets dropped by full "
                          "reassembly buffers")

    def count_breaker_trip(self, src: int, dst: int) -> None:
        self.breaker_trips += 1
        if self.net.collector is not None:
            self.net.collector.record_breaker(opened=True)
        if self.net.registry is not None:
            self.net.registry.inc(
                "net_breaker_trips_total",
                help_text="channels tripped into degraded probe mode")

    def count_breaker_close(self, src: int, dst: int) -> None:
        self.breaker_closes += 1
        if self.net.collector is not None:
            self.net.collector.record_breaker(opened=False)
        if self.net.registry is not None:
            self.net.registry.inc(
                "net_breaker_closes_total",
                help_text="degraded channels restored by ack progress "
                          "or heal")

    def count_backpressure_delay(self, site: int) -> None:
        self.backpressure_delays += 1
        if self.net.collector is not None:
            self.net.collector.record_backpressure_delay()
        if self.net.registry is not None:
            self.net.registry.inc(
                "net_backpressure_delays_total",
                help_text="operations delayed by transport backpressure")

    def count_overload_shed(self, site: int) -> None:
        self.overload_sheds += 1
        if self.net.collector is not None:
            self.net.collector.record_overload_shed()
        if self.net.registry is not None:
            self.net.registry.inc(
                "net_overload_sheds_total",
                help_text="writes shed by OverloadError at admission")

    # ------------------------------------------------------------------
    # backpressure & admission
    # ------------------------------------------------------------------
    def note_backlog_grow(self, site: int, became_nonempty: bool) -> None:
        self._backlog_total[site] = self._backlog_total.get(site, 0) + 1
        if became_nonempty:
            self._bp_channels[site] = self._bp_channels.get(site, 0) + 1

    def note_backlog_shrink(self, site: int, n: int,
                            became_empty: bool) -> None:
        remaining = self._backlog_total.get(site, 0) - n
        if remaining > 0:
            self._backlog_total[site] = remaining
        else:
            self._backlog_total.pop(site, None)
        if became_empty:
            count = self._bp_channels.get(site, 0) - 1
            if count > 0:
                self._bp_channels[site] = count
            else:
                self._bp_channels.pop(site, None)

    def backpressured(self, site: int) -> bool:
        """True while any of ``site``'s channels has a queued backlog."""
        return site in self._bp_channels

    def backlog_of(self, site: int) -> int:
        """Total backlogged packets across ``site``'s channels."""
        return self._backlog_total.get(site, 0)

    def check_admission(self, site: int) -> None:
        """Shed a PUT with :class:`OverloadError` past the threshold."""
        threshold = self.policy.shed_backlog
        if threshold > 0:
            backlog = self._backlog_total.get(site, 0)
            if backlog >= threshold:
                self.count_overload_shed(site)
                raise OverloadError(site, backlog, threshold)

    # ------------------------------------------------------------------
    # heal handling & recovery-latency tracking
    # ------------------------------------------------------------------
    def on_heal(self, heal_time: float, group: frozenset[int]) -> None:
        """A partition isolating ``group`` healed: retransmit eagerly
        (paced) and start the per-site recovery clock for every site
        with a backlog."""
        for (src, dst), ch in self._channels.items():
            if ((src in group) != (dst in group)) and (ch.unacked
                                                       or ch._backlog):
                self._recovering.setdefault(dst, heal_time)
                ch.flush_retransmit()
                ch._promote_backlog()

    def note_drained(self, channel: ReliableChannel) -> None:
        """A channel's unacked buffer emptied; close out recovery if the
        destination site has no backlog left anywhere."""
        site = channel.dst
        heal_time = self._recovering.get(site)
        if heal_time is None:
            return
        if any(ch.pending for (_, d), ch in self._channels.items()
               if d == site):
            return
        del self._recovering[site]
        if self.net.collector is not None:
            self.net.collector.record_recovery(site, self.sim.now - heal_time)

    # ------------------------------------------------------------------
    # crash-recovery hooks (see repro.sim.crash / repro.sim.failure_detector)
    # ------------------------------------------------------------------
    def pause_pair(self, src: int, dst: int) -> None:
        """Suspend transmission on ``src -> dst`` (dst suspected down).

        The unacked queue stays durable at the sender; the timer is
        cancelled so backoff does not burn while the destination cannot
        answer.
        """
        if (src, dst) in self.paused_pairs:
            return
        self.paused_pairs.add((src, dst))
        ch = self._channels.get((src, dst))
        if ch is not None:
            ch._cancel_timer()
            ch._cancel_pacer()

    def resume_pair(self, src: int, dst: int, *, flush: bool = True) -> None:
        """Clear a suspicion pause; optionally retransmit the backlog at
        the freshly-estimated timeout immediately (the rejoin path
        wants this)."""
        if (src, dst) not in self.paused_pairs:
            return
        self.paused_pairs.discard((src, dst))
        ch = self._channels.get((src, dst))
        if ch is not None and (ch.unacked or ch._backlog):
            if flush:
                ch.flush_retransmit()
                ch._promote_backlog()
            else:
                ch.rto = ch._fresh_rto()
                ch._arm_timer()

    def on_site_crash(self, site: int) -> None:
        """Volatile transport state of ``site`` dies with it.

        Its sender timers, RTT estimators, breaker state, and suspicion
        bookkeeping vanish; its receive reassembly buffers are wiped
        (everything in them was still unacked at the senders, so nothing
        acked is lost — the ack-implies-durable invariant).
        ``next_seq``/``next_expected`` and the unacked/backlog queues
        survive: they mirror durable state.
        """
        # simcheck: ignore[SIM003] -- set-to-set filter; construction order is never observable
        self.paused_pairs = {p for p in self.paused_pairs if p[0] != site}
        for (src, dst), ch in self._channels.items():
            if src == site:
                ch._cancel_timer()
                ch._cancel_pacer()
                ch._reset_estimator()
            if dst == site:
                ch._reorder.clear()
                # packets in flight toward the dead site died on the
                # wire, so a later resend of them is not spurious
                ch._flight_ok.clear()

    def forget_site(self, site: int) -> None:
        """Elastic membership: ``site`` left the view for good.

        Every channel involving it is torn down — timers cancelled,
        unacked/backlog queues and reorder buffers discarded (the
        view-change fence already drained live traffic; whatever remains
        was addressed to or queued at the departed site and is void),
        suspicion pauses, backpressure tallies, and recovery clocks
        cleared.
        """
        for key in [k for k in self._channels if site in k]:
            ch = self._channels.pop(key)
            ch._cancel_timer()
            ch._cancel_pacer()
            if ch._backlog:
                self.note_backlog_shrink(ch.src, len(ch._backlog), True)
                ch._backlog.clear()
            ch.unacked.clear()
            ch._reorder.clear()
            ch._sent_at.clear()
            ch._retx.clear()
            ch._flight_ok.clear()
        # simcheck: ignore[SIM003] -- set-to-set filter; construction order is never observable
        self.paused_pairs = {p for p in self.paused_pairs if site not in p}
        self._recovering.pop(site, None)
        self._bp_channels.pop(site, None)
        self._backlog_total.pop(site, None)

    def on_site_recover(self, site: int) -> None:
        """Rejoin: the revived site flushes its own durable backlog."""
        for (src, dst), ch in self._channels.items():
            if src == site and (ch.unacked or ch._backlog):
                ch.flush_retransmit()
                ch._promote_backlog()

    def unacked_to(self, site: int, *, from_live_only: bool = False,
                   down: "Optional[set[int]]" = None) -> int:
        """Packets queued durably toward ``site`` — unacked in flight
        plus windowed-out backlog (optionally only from senders that are
        currently up — a dead sender's frozen backlog cannot drain until
        it rejoins)."""
        total = 0
        for (src, dst), ch in self._channels.items():
            if dst != site:
                continue
            if from_live_only and down and src in down:
                continue
            total += ch.pending
        return total

    def unacked_between_live(self, down: "set[int]") -> int:
        """Queued packets on channels whose both endpoints are up."""
        return sum(
            ch.pending for (src, dst), ch in self._channels.items()
            if src not in down and dst not in down
        )

    def blocked_channels(self, now: float) -> list[tuple[int, int]]:
        """Channels with queued packets severed by a never-healing
        partition — traffic that can never drain without a ``heal()``."""
        blocked = []
        for (src, dst), ch in self._channels.items():
            if ch.pending and self.injector.severed(src, dst, now) and any(
                (src in g) != (dst in g)
                for g in self.injector.unhealed_partitions(now)
            ):
                blocked.append((src, dst))
        return blocked

    def unacked_count(self) -> int:
        """Packets somewhere between first send and ack (incl. backlog)."""
        return sum(ch.pending for ch in self._channels.values())

    def backlog_count(self) -> int:
        """Packets windowed out into channel backlogs right now."""
        return sum(len(ch._backlog) for ch in self._channels.values())

    # ------------------------------------------------------------------
    # end-of-run metrics export
    # ------------------------------------------------------------------
    def sample_channel_metrics(self, registry: "MetricsRegistry") -> None:
        """Export per-channel transport state as labeled gauges/counters.

        Sampled once at quiescence: per-packet label resolution on the
        hot path would cost far more than the numbers are worth.
        """
        for key in sorted(self._channels):
            ch = self._channels[key]
            src, dst = key
            registry.set_gauge(
                "net_channel_rto_ms", ch.rto,
                help_text="retransmission timeout at quiescence",
                src=src, dst=dst)
            registry.set_gauge(
                "net_channel_srtt_ms",
                ch.srtt if ch.srtt is not None else 0.0,
                help_text="smoothed RTT estimate (0 = no samples)",
                src=src, dst=dst)
            registry.set_gauge(
                "net_channel_unacked", len(ch.unacked),
                help_text="unacked packets in flight at quiescence",
                src=src, dst=dst)
            registry.set_gauge(
                "net_channel_unacked_peak", ch.unacked_peak,
                help_text="peak in-flight window occupancy over the run",
                src=src, dst=dst)
            registry.set_gauge(
                "net_channel_backlog", len(ch._backlog),
                help_text="windowed-out backlog depth at quiescence",
                src=src, dst=dst)
            registry.set_gauge(
                "net_channel_reorder", len(ch._reorder),
                help_text="reassembly-buffer occupancy at quiescence",
                src=src, dst=dst)
            registry.set_gauge(
                "net_channel_reorder_peak", ch.reorder_peak,
                help_text="peak reassembly-buffer occupancy over the run",
                src=src, dst=dst)
            if ch.duplicate_drops:
                registry.inc(
                    "net_channel_duplicate_drops_total", ch.duplicate_drops,
                    help_text="duplicates suppressed by this receiver",
                    src=src, dst=dst)
            if ch.retransmissions:
                registry.inc(
                    "net_channel_retransmissions_total", ch.retransmissions,
                    help_text="retransmissions sent on this channel",
                    src=src, dst=dst)
