"""Reliable exactly-once FIFO delivery over a lossy transport.

A minimal model of the TCP machinery the paper's testbed relied on:
per-channel sequence numbers, cumulative acks, retransmission timers
with exponential backoff + jitter, duplicate suppression, and an
out-of-order reassembly buffer.  Layered between the protocols and the
fault-injecting raw transmission path of :class:`~repro.sim.network.Network`,
it restores the channel guarantees (no loss, no duplication, no
reordering within a channel) that the causal protocols assume — so the
chaos suite can assert the protocols stay correct when the *network*
misbehaves, not just when latency is adversarial.

The layer is only instantiated when a :class:`~repro.sim.faults.FaultInjector`
is attached; the default reliable path through ``Network.send`` is
byte-for-byte the seed behavior (no sequence numbers, no acks, no
timers — zero overhead when chaos is off).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from .engine import ScheduledEvent
from .faults import FaultInjector

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from .network import Network

#: infra packet interceptor signature:
#: ``handler(src, dst, packet, dead) -> consumed``
PacketHandler = Callable[[int, int, object, bool], bool]

__all__ = [
    "RetransmitPolicy",
    "DataPacket",
    "AckPacket",
    "ReliableChannel",
    "ReliableTransport",
    "ACK_SIZE_BYTES",
]

#: modelled wire size of a cumulative ack (seq number + envelope)
ACK_SIZE_BYTES = 20.0


@dataclass(frozen=True)
class RetransmitPolicy:
    """Retransmission timer parameters (TCP-ish defaults, simplified)."""

    #: initial retransmission timeout; must exceed one round trip or the
    #: sender retransmits spuriously (that is allowed, just wasteful)
    base_rto_ms: float = 250.0
    #: multiplicative backoff applied after every timeout
    backoff: float = 2.0
    #: cap on the backed-off timeout
    max_rto_ms: float = 8000.0
    #: uniform jitter added to each armed timer (desynchronizes channels)
    jitter_ms: float = 25.0

    def __post_init__(self) -> None:
        if self.base_rto_ms <= 0 or self.max_rto_ms < self.base_rto_ms:
            raise ValueError("need 0 < base_rto_ms <= max_rto_ms")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.jitter_ms < 0:
            raise ValueError("jitter must be non-negative")


@dataclass(frozen=True)
class DataPacket:
    """One transmission attempt of an application message."""

    seq: int
    payload: object
    size_bytes: float


@dataclass(frozen=True)
class AckPacket:
    """Cumulative ack: every seq <= ``cumulative`` has been received."""

    cumulative: int


class ReliableChannel:
    """Sender + receiver state for one directed channel (src -> dst)."""

    def __init__(self, transport: "ReliableTransport", src: int, dst: int) -> None:
        self.transport = transport
        self.src = src
        self.dst = dst
        policy = transport.policy
        # sender side
        self.next_seq = 0
        self.unacked: dict[int, DataPacket] = {}  # insertion-ordered by seq
        self.rto = policy.base_rto_ms
        self._timer: Optional[ScheduledEvent] = None
        self.retransmissions = 0
        # receiver side
        self.next_expected = 0
        self._reorder: dict[int, DataPacket] = {}
        self.duplicate_drops = 0

    @property
    def paused(self) -> bool:
        """True while the failure detector suspects ``dst`` is down:
        sends queue durably but nothing is transmitted and no timer
        burns — retransmission resumes when the suspicion clears."""
        return (self.src, self.dst) in self.transport.paused_pairs

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send(self, payload: object, size_bytes: float) -> Optional[float]:
        packet = DataPacket(self.next_seq, payload, size_bytes)
        self.next_seq += 1
        self.unacked[packet.seq] = packet
        if self.paused:
            return None
        delivery = self.transport.transmit(self.src, self.dst, packet, size_bytes)
        self._arm_timer()
        return delivery

    def on_ack(self, cumulative: int) -> None:
        acked = [seq for seq in self.unacked if seq <= cumulative]
        if not acked:
            return
        for seq in acked:
            del self.unacked[seq]
        # forward progress: restart the timer from the base timeout
        self.rto = self.transport.policy.base_rto_ms
        self._cancel_timer()
        if self.unacked:
            self._arm_timer()
        else:
            self.transport.note_drained(self)

    def flush_retransmit(self) -> None:
        """Eagerly retransmit everything unacked (used when a partition
        heals: no reason to sit out the backed-off timeout)."""
        if not self.unacked or self.paused:
            return
        self.rto = self.transport.policy.base_rto_ms
        self._cancel_timer()
        self._retransmit_all()
        self._arm_timer()

    def _retransmit_all(self) -> None:
        # go-back-N: resend every unacked packet in sequence order; the
        # receiver's reorder buffer absorbs any that already arrived
        tracer = self.transport.net.tracer
        for seq in sorted(self.unacked):
            packet = self.unacked[seq]
            self.retransmissions += 1
            self.transport.count_retransmission()
            if tracer is not None:
                tracer.msg_retransmit(self.src, self.dst, packet.payload,
                                      ts=self.transport.sim.now)
            self.transport.transmit(self.src, self.dst, packet, packet.size_bytes)

    def _on_timeout(self) -> None:
        self._timer = None
        if not self.unacked or self.paused:
            return
        self._retransmit_all()
        self.rto = min(self.rto * self.transport.policy.backoff,
                       self.transport.policy.max_rto_ms)
        self._arm_timer()

    def _arm_timer(self) -> None:
        if self._timer is not None or not self.unacked or self.paused:
            return
        policy = self.transport.policy
        jitter = (
            float(self.transport.injector.rng.uniform(0.0, policy.jitter_ms))
            if policy.jitter_ms else 0.0
        )
        self._timer = self.transport.sim.schedule(
            self.rto + jitter, self._on_timeout,
            label=f"rto {self.src}->{self.dst}",
        )

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def on_data(self, packet: DataPacket) -> None:
        if packet.seq < self.next_expected or packet.seq in self._reorder:
            # retransmit of something already received: suppress, but
            # still ack so the sender stops resending
            self.duplicate_drops += 1
            self.transport.count_duplicate_drop()
        else:
            self._reorder[packet.seq] = packet
            while self.next_expected in self._reorder:
                ready = self._reorder.pop(self.next_expected)
                self.next_expected += 1
                self.transport.deliver_app(self.src, self.dst, ready.payload)
        self.transport.send_ack(self.dst, self.src, self.next_expected - 1)

    def __repr__(self) -> str:
        return (
            f"<ReliableChannel {self.src}->{self.dst} next_seq={self.next_seq} "
            f"unacked={len(self.unacked)} expected={self.next_expected}>"
        )


class ReliableTransport:
    """All reliable channels of one network, plus heal/recovery tracking."""

    def __init__(
        self,
        network: "Network",
        injector: FaultInjector,
        policy: Optional[RetransmitPolicy] = None,
    ) -> None:
        self.net = network
        self.sim = network.sim
        self.injector = injector
        self.policy = policy if policy is not None else RetransmitPolicy()
        self._channels: dict[tuple[int, int], ReliableChannel] = {}
        #: site -> heal time of the partition it is recovering from
        self._recovering: dict[int, float] = {}
        #: (src, dst) pairs whose sender currently suspects the receiver
        #: is down: transmission and timers are paused (sends still queue)
        self.paused_pairs: set[tuple[int, int]] = set()
        #: infra packet interceptors (heartbeats, anti-entropy sync):
        #: ``handler(src, dst, packet, dead) -> consumed``; tried before
        #: the ack/data machinery on every physical arrival
        self.packet_handlers: list[PacketHandler] = []
        # aggregate counters (mirrored into the collector when attached)
        self.retransmissions = 0
        self.duplicate_drops = 0
        self.acks_sent = 0
        self.ack_bytes = 0.0
        for p in injector.plan.partitions:
            if math.isfinite(p.heal_ms):
                self.sim.schedule_at(
                    max(self.sim.now, p.heal_ms),
                    lambda p=p: self.on_heal(p.heal_ms, p.group),
                    label=f"heal partition {sorted(p.group)}",
                )

    # ------------------------------------------------------------------
    def channel(self, src: int, dst: int) -> ReliableChannel:
        key = (src, dst)
        ch = self._channels.get(key)
        if ch is None:
            ch = self._channels[key] = ReliableChannel(self, src, dst)
        return ch

    def send(self, src: int, dst: int, message: object,
             size_bytes: float) -> Optional[float]:
        return self.channel(src, dst).send(message, size_bytes)

    def register_packet_handler(self, handler: "PacketHandler") -> None:
        """Add an infra packet interceptor (heartbeat / sync layers)."""
        self.packet_handlers.append(handler)

    def deliver_packet(self, phys_src: int, phys_dst: int, packet: object) -> None:
        """Physical delivery entry point (called by the network)."""
        for handler in self.packet_handlers:
            if handler(phys_src, phys_dst, packet, False):
                return
        if isinstance(packet, AckPacket):
            # an ack for channel (a -> b) travels physically b -> a
            ch = self._channels.get((phys_dst, phys_src))
            if ch is not None:
                ch.on_ack(packet.cumulative)
            return
        assert isinstance(packet, DataPacket)
        self.channel(phys_src, phys_dst).on_data(packet)

    def on_dead_drop(self, phys_src: int, phys_dst: int, packet: object) -> None:
        """A packet hit the wire of a down site: data and acks simply
        vanish (the sender's durable queue covers them), but infra
        handlers are told so their bookkeeping stays exact."""
        for handler in self.packet_handlers:
            if handler(phys_src, phys_dst, packet, True):
                return

    # ------------------------------------------------------------------
    # plumbing back into the network
    # ------------------------------------------------------------------
    def transmit(self, src: int, dst: int, packet: object,
                 size_bytes: float) -> Optional[float]:
        return self.net._transmit_raw(src, dst, packet, size_bytes)

    def deliver_app(self, src: int, dst: int, payload: object) -> None:
        self.net._deliver_app(src, dst, payload)

    def send_ack(self, from_site: int, to_site: int, cumulative: int) -> None:
        self.acks_sent += 1
        self.ack_bytes += ACK_SIZE_BYTES
        if self.net.collector is not None:
            self.net.collector.record_ack(ACK_SIZE_BYTES)
        if self.net.registry is not None:
            self.net.registry.inc(
                "net_acks_total",
                help_text="cumulative-ack packets sent by the reliable layer")
        self.net._transmit_raw(from_site, to_site, AckPacket(cumulative),
                               ACK_SIZE_BYTES)

    def count_retransmission(self) -> None:
        self.retransmissions += 1
        if self.net.collector is not None:
            self.net.collector.record_retransmission()
        if self.net.registry is not None:
            self.net.registry.inc(
                "net_retransmissions_total",
                help_text="timer- or heal-driven retransmissions")

    def count_duplicate_drop(self) -> None:
        self.duplicate_drops += 1
        if self.net.collector is not None:
            self.net.collector.record_duplicate_drop()
        if self.net.registry is not None:
            self.net.registry.inc(
                "net_duplicate_drops_total",
                help_text="already-delivered packets discarded by receivers")
        if self.net.tracer is not None:
            self.net.tracer.timeseries.incr("net.dup_drops", self.sim.now)

    # ------------------------------------------------------------------
    # heal handling & recovery-latency tracking
    # ------------------------------------------------------------------
    def on_heal(self, heal_time: float, group: frozenset[int]) -> None:
        """A partition isolating ``group`` healed: retransmit eagerly and
        start the per-site recovery clock for every site with a backlog."""
        for (src, dst), ch in self._channels.items():
            if ((src in group) != (dst in group)) and ch.unacked:
                self._recovering.setdefault(dst, heal_time)
                ch.flush_retransmit()

    def note_drained(self, channel: ReliableChannel) -> None:
        """A channel's unacked buffer emptied; close out recovery if the
        destination site has no backlog left anywhere."""
        site = channel.dst
        heal_time = self._recovering.get(site)
        if heal_time is None:
            return
        if any(ch.unacked for (_, d), ch in self._channels.items() if d == site):
            return
        del self._recovering[site]
        if self.net.collector is not None:
            self.net.collector.record_recovery(site, self.sim.now - heal_time)

    # ------------------------------------------------------------------
    # crash-recovery hooks (see repro.sim.crash / repro.sim.failure_detector)
    # ------------------------------------------------------------------
    def pause_pair(self, src: int, dst: int) -> None:
        """Suspend transmission on ``src -> dst`` (dst suspected down).

        The unacked queue stays durable at the sender; the timer is
        cancelled so backoff does not burn while the destination cannot
        answer.
        """
        if (src, dst) in self.paused_pairs:
            return
        self.paused_pairs.add((src, dst))
        ch = self._channels.get((src, dst))
        if ch is not None:
            ch._cancel_timer()

    def resume_pair(self, src: int, dst: int, *, flush: bool = True) -> None:
        """Clear a suspicion pause; optionally retransmit the backlog at
        the base timeout immediately (the rejoin path wants this)."""
        if (src, dst) not in self.paused_pairs:
            return
        self.paused_pairs.discard((src, dst))
        ch = self._channels.get((src, dst))
        if ch is not None and ch.unacked:
            if flush:
                ch.flush_retransmit()
            else:
                ch.rto = self.policy.base_rto_ms
                ch._arm_timer()

    def on_site_crash(self, site: int) -> None:
        """Volatile transport state of ``site`` dies with it.

        Its sender timers and suspicion bookkeeping vanish; its receive
        reassembly buffers are wiped (everything in them was still
        unacked at the senders, so nothing acked is lost — the
        ack-implies-durable invariant).  ``next_seq``/``next_expected``
        and the unacked queues survive: they mirror durable state.
        """
        # simcheck: ignore[SIM003] -- set-to-set filter; construction order is never observable
        self.paused_pairs = {p for p in self.paused_pairs if p[0] != site}
        for (src, dst), ch in self._channels.items():
            if src == site:
                ch._cancel_timer()
            if dst == site:
                ch._reorder.clear()

    def forget_site(self, site: int) -> None:
        """Elastic membership: ``site`` left the view for good.

        Every channel involving it is torn down — timers cancelled,
        unacked queues and reorder buffers discarded (the view-change
        fence already drained live traffic; whatever remains was
        addressed to or queued at the departed site and is void),
        suspicion pauses and recovery clocks cleared.
        """
        for key in [k for k in self._channels if site in k]:
            ch = self._channels.pop(key)
            ch._cancel_timer()
            ch.unacked.clear()
            ch._reorder.clear()
        # simcheck: ignore[SIM003] -- set-to-set filter; construction order is never observable
        self.paused_pairs = {p for p in self.paused_pairs if site not in p}
        self._recovering.pop(site, None)

    def on_site_recover(self, site: int) -> None:
        """Rejoin: the revived site flushes its own durable backlog."""
        for (src, dst), ch in self._channels.items():
            if src == site and ch.unacked:
                ch.flush_retransmit()

    def unacked_to(self, site: int, *, from_live_only: bool = False,
                   down: "Optional[set[int]]" = None) -> int:
        """Unacked packets destined to ``site`` (optionally only from
        senders that are currently up — a dead sender's frozen backlog
        cannot drain until it rejoins)."""
        total = 0
        for (src, dst), ch in self._channels.items():
            if dst != site:
                continue
            if from_live_only and down and src in down:
                continue
            total += len(ch.unacked)
        return total

    def unacked_between_live(self, down: "set[int]") -> int:
        """Unacked packets on channels whose both endpoints are up."""
        return sum(
            len(ch.unacked) for (src, dst), ch in self._channels.items()
            if src not in down and dst not in down
        )

    def blocked_channels(self, now: float) -> list[tuple[int, int]]:
        """Channels with unacked packets severed by a never-healing
        partition — traffic that can never drain without a ``heal()``."""
        blocked = []
        for (src, dst), ch in self._channels.items():
            if ch.unacked and self.injector.severed(src, dst, now) and any(
                (src in g) != (dst in g)
                for g in self.injector.unhealed_partitions(now)
            ):
                blocked.append((src, dst))
        return blocked

    def unacked_count(self) -> int:
        """Packets somewhere between first transmission and ack."""
        return sum(len(ch.unacked) for ch in self._channels.values())
