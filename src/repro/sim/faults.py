"""Deterministic fault injection for the simulated network.

The paper's testbed inherits reliable FIFO channels from TCP; the seed
reproduction simply assumed them.  This module supplies the *unreliable*
substrate those channels would really run over: a declarative
:class:`FaultPlan` (per-channel drop probability, duplication, latency
spikes, and scheduled partitions with heal times) interpreted by a
seeded :class:`FaultInjector`.

Determinism contract: the injector owns its **own** ``numpy`` RNG
stream, seeded independently of latency sampling, so the same fault
seed replays a bit-identical fault schedule regardless of the latency
model or workload seed.  Decisions are drawn once per physical packet
transmission, in simulator order, which is itself deterministic.

The recovery machinery that turns this lossy substrate back into the
exactly-once FIFO channels the protocols require lives in
:mod:`repro.sim.reliable`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, NamedTuple, Optional, Sequence, Union

import numpy as np

__all__ = [
    "ChannelFaults",
    "Partition",
    "CrashEvent",
    "JoinEvent",
    "LeaveEvent",
    "OverloadEvent",
    "FaultPlan",
    "FaultDecision",
    "FaultInjector",
    "seeded_crashes",
    "seeded_churn",
]


@dataclass(frozen=True)
class ChannelFaults:
    """Fault rates for one directed channel (all probabilities per packet)."""

    #: probability a transmitted packet is silently lost
    drop_rate: float = 0.0
    #: probability a delivered packet also arrives a second time
    dup_rate: float = 0.0
    #: probability a delivered packet suffers an extra latency spike
    spike_rate: float = 0.0
    #: uniform range (ms) of the extra delay a spike adds
    spike_ms: tuple[float, float] = (100.0, 500.0)

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "spike_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        lo, hi = self.spike_ms
        if not 0.0 <= lo <= hi:
            raise ValueError(f"invalid spike range {self.spike_ms}")

    @property
    def is_quiet(self) -> bool:
        return self.drop_rate == 0.0 and self.dup_rate == 0.0 and self.spike_rate == 0.0


@dataclass(frozen=True)
class Partition:
    """Sites in ``group`` are cut off from everyone else in [start, heal).

    Packets crossing the boundary (either direction) are dropped for the
    whole window; ``heal_ms=inf`` means the partition never heals on its
    own (used for the interactive ``CausalCluster.partition`` helper,
    which heals explicitly).
    """

    group: frozenset[int]
    start_ms: float = 0.0
    heal_ms: float = math.inf

    def __init__(self, group: Iterable[int], start_ms: float = 0.0,
                 heal_ms: float = math.inf) -> None:
        object.__setattr__(self, "group", frozenset(group))
        object.__setattr__(self, "start_ms", float(start_ms))
        object.__setattr__(self, "heal_ms", float(heal_ms))
        if not self.group:
            raise ValueError("partition group cannot be empty")
        if not 0.0 <= self.start_ms <= self.heal_ms:
            raise ValueError(
                f"invalid partition window [{self.start_ms}, {self.heal_ms})"
            )

    def severs(self, src: int, dst: int, now: float) -> bool:
        """True when a packet src->dst at ``now`` crosses the active cut."""
        if not self.start_ms <= now < self.heal_ms:
            return False
        return (src in self.group) != (dst in self.group)


@dataclass(frozen=True)
class CrashEvent:
    """Site ``site`` crashes at ``at_ms``; volatile state is lost.

    ``recover_ms=inf`` models crash-stop (the site never comes back);
    a finite value models crash-recovery: at ``recover_ms`` the site
    restores its last checkpoint, replays its write-ahead log, catches
    up missed updates from live replicas, and resumes its schedule.
    """

    site: int
    at_ms: float
    recover_ms: float = math.inf

    def __post_init__(self) -> None:
        if self.site < 0:
            raise ValueError(f"crash site must be >= 0, got {self.site}")
        if not 0.0 <= self.at_ms < self.recover_ms:
            raise ValueError(
                f"invalid crash window [{self.at_ms}, {self.recover_ms}) "
                f"for site {self.site}"
            )

    @property
    def is_crash_stop(self) -> bool:
        return not math.isfinite(self.recover_ms)


@dataclass(frozen=True)
class JoinEvent:
    """A new site joins the cluster at ``at_ms``.

    The joiner's id is assigned by the view manager (next never-used
    id), so the event only carries a time.  Under full replication the
    joiner is bootstrapped from a live donor's drained snapshot; under
    partial replication it starts with an empty replica set.
    """

    at_ms: float

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"join time must be >= 0, got {self.at_ms}")


@dataclass(frozen=True)
class LeaveEvent:
    """Site ``site`` leaves the cluster gracefully at ``at_ms``.

    A leave drains in-flight deliveries, hands off solely-held replicas
    to a live successor, and retires the site.  Leaving is only possible
    while the site is up; a crash-stopped leaver escalates to eviction.
    """

    site: int
    at_ms: float

    def __post_init__(self) -> None:
        if self.site < 0:
            raise ValueError(f"leave site must be >= 0, got {self.site}")
        if self.at_ms < 0.0:
            raise ValueError(f"leave time must be >= 0, got {self.at_ms}")


MembershipEvent = Union[JoinEvent, LeaveEvent]


@dataclass(frozen=True)
class OverloadEvent:
    """A flash crowd hammers ``sites`` with extra writes in [start, end).

    The runner's overload driver injects one additional write every
    ``interval_ms`` at each listed site (on top of its planned schedule)
    until the window closes.  Variables are drawn from a dedicated
    seeded RNG stream, so the injected load replays bit-identically.
    A tick at a site that is down, held, or departed is skipped; a tick
    at a site whose transport reports hard overload is *shed* (typed as
    :class:`~repro.sim.reliable.OverloadError` at admission) — both
    outcomes are counted, so soak runs can assert the flash crowd both
    happened and was survived.
    """

    sites: tuple[int, ...]
    start_ms: float
    end_ms: float
    interval_ms: float

    def __init__(self, sites: Iterable[int], start_ms: float,
                 end_ms: float, interval_ms: float) -> None:
        object.__setattr__(self, "sites", tuple(sorted({int(s) for s in sites})))
        object.__setattr__(self, "start_ms", float(start_ms))
        object.__setattr__(self, "end_ms", float(end_ms))
        object.__setattr__(self, "interval_ms", float(interval_ms))
        if not self.sites:
            raise ValueError("overload event needs at least one target site")
        if self.sites[0] < 0:
            raise ValueError("overload sites must be >= 0")
        if not math.isfinite(self.end_ms):
            raise ValueError("overload windows must end (no infinite flash crowds)")
        if not 0.0 <= self.start_ms < self.end_ms:
            raise ValueError(
                f"invalid overload window [{self.start_ms}, {self.end_ms})"
            )
        if not self.interval_ms > 0.0:
            raise ValueError(
                f"overload interval must be positive, got {self.interval_ms}"
            )

    def ticks(self) -> list[float]:
        """Deterministic injection instants for one target site."""
        out = []
        t = self.start_ms
        while t < self.end_ms:
            out.append(t)
            t += self.interval_ms
        return out


def seeded_crashes(
    n_sites: int,
    *,
    n_crashes: int = 1,
    window_ms: tuple[float, float] = (500.0, 3000.0),
    downtime_ms: tuple[float, float] = (400.0, 1200.0),
    crash_stop: bool = False,
    seed: int = 0,
) -> tuple[CrashEvent, ...]:
    """Draw a random non-overlapping crash schedule from a seed.

    Victims are distinct sites; crash instants fall in ``window_ms`` and
    (unless ``crash_stop``) each site recovers after a downtime drawn
    from ``downtime_ms``.
    """
    if n_crashes > n_sites:
        raise ValueError("cannot crash more distinct sites than exist")
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    victims = rng.choice(n_sites, size=n_crashes, replace=False)
    events = []
    for site in sorted(int(v) for v in victims):
        at = float(rng.uniform(*window_ms))
        if crash_stop:
            events.append(CrashEvent(site, at))
        else:
            events.append(CrashEvent(site, at, at + float(rng.uniform(*downtime_ms))))
    return tuple(events)


def seeded_churn(
    n_sites: int,
    *,
    n_joins: int = 1,
    n_leaves: int = 1,
    window_ms: tuple[float, float] = (500.0, 3000.0),
    seed: int = 0,
    avoid: Iterable[int] = (),
) -> tuple[MembershipEvent, ...]:
    """Draw a random membership-churn schedule from a seed.

    Leave victims are distinct initial sites outside ``avoid`` (pass the
    crash victims of a composed plan so a site is never asked to both
    crash and leave); join/leave instants fall uniformly in
    ``window_ms``.  The result composes with drop/dup/partition/crash
    plans via ``FaultPlan.build(membership=...)``.
    """
    avoid_set = {int(s) for s in avoid}
    candidates = [s for s in range(n_sites) if s not in avoid_set]
    if n_leaves > len(candidates):
        raise ValueError(
            f"cannot pick {n_leaves} distinct leavers from {len(candidates)} "
            f"eligible sites (n_sites={n_sites}, avoid={sorted(avoid_set)})"
        )
    if n_leaves >= n_sites:
        raise ValueError("at least one initial site must remain a member")
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    events: list[MembershipEvent] = []
    for _ in range(n_joins):
        events.append(JoinEvent(float(rng.uniform(*window_ms))))
    victims = rng.choice(len(candidates), size=n_leaves, replace=False)
    for idx in sorted(int(v) for v in victims):
        events.append(LeaveEvent(candidates[idx], float(rng.uniform(*window_ms))))
    return tuple(sorted(events, key=lambda e: e.at_ms))


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of everything that goes wrong in a run.

    ``channels`` holds per-channel overrides as a sorted tuple of
    ``((src, dst), ChannelFaults)`` pairs so the plan stays hashable
    (and therefore usable inside a frozen ``SimulationConfig``); use
    :meth:`build` to construct one from a plain dict.
    """

    default: ChannelFaults = field(default_factory=ChannelFaults)
    channels: tuple[tuple[tuple[int, int], ChannelFaults], ...] = ()
    partitions: tuple[Partition, ...] = ()
    crashes: tuple[CrashEvent, ...] = ()
    membership: tuple[MembershipEvent, ...] = ()
    overloads: tuple[OverloadEvent, ...] = ()

    @classmethod
    def build(
        cls,
        default: Optional[ChannelFaults] = None,
        channels: Optional[Mapping[tuple[int, int], ChannelFaults]] = None,
        partitions: Sequence[Partition] = (),
        crashes: Sequence[CrashEvent] = (),
        membership: Sequence[MembershipEvent] = (),
        overloads: Sequence[OverloadEvent] = (),
    ) -> "FaultPlan":
        return cls(
            default=default if default is not None else ChannelFaults(),
            channels=tuple(sorted((channels or {}).items())),
            partitions=tuple(partitions),
            crashes=tuple(crashes),
            membership=tuple(membership),
            overloads=tuple(overloads),
        )

    @classmethod
    def uniform(
        cls,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        spike_rate: float = 0.0,
        spike_ms: tuple[float, float] = (100.0, 500.0),
        partitions: Sequence[Partition] = (),
        crashes: Sequence[CrashEvent] = (),
        membership: Sequence[MembershipEvent] = (),
        overloads: Sequence[OverloadEvent] = (),
    ) -> "FaultPlan":
        """The common case: one fault profile applied to every channel."""
        return cls.build(
            default=ChannelFaults(drop_rate, dup_rate, spike_rate, spike_ms),
            partitions=partitions,
            crashes=crashes,
            membership=membership,
            overloads=overloads,
        )

    def validate(self, horizon_ms: Optional[float] = None) -> None:
        """Reject plans that cannot be interpreted coherently.

        Checks: two partitions of the *same* group must not overlap in
        time (the injector cannot tell which heal event closes which
        window); crash windows of the same site must not overlap (a site
        cannot crash while already down); and, when the caller knows the
        workload's stop condition, no crash may *begin* after
        ``horizon_ms`` — it could never be observed by the run.
        """
        by_group: dict[frozenset[int], list[Partition]] = {}
        for p in self.partitions:
            by_group.setdefault(p.group, []).append(p)
        for group, parts in by_group.items():
            parts.sort(key=lambda p: p.start_ms)
            for a, b in zip(parts, parts[1:]):
                if b.start_ms < a.heal_ms:
                    raise ValueError(
                        f"overlapping partitions of group {sorted(group)}: "
                        f"[{a.start_ms}, {a.heal_ms}) and "
                        f"[{b.start_ms}, {b.heal_ms}) — merge them or "
                        f"stagger their windows"
                    )
        by_site: dict[int, list[CrashEvent]] = {}
        for c in self.crashes:
            by_site.setdefault(c.site, []).append(c)
        for site, events in by_site.items():
            events.sort(key=lambda c: c.at_ms)
            for a, b in zip(events, events[1:]):
                if b.at_ms < a.recover_ms:
                    raise ValueError(
                        f"overlapping crash windows for site {site}: "
                        f"[{a.at_ms}, {a.recover_ms}) and "
                        f"[{b.at_ms}, {b.recover_ms}) — a site cannot "
                        f"crash while it is already down"
                    )
        if horizon_ms is not None:
            for c in self.crashes:
                if c.at_ms > horizon_ms:
                    raise ValueError(
                        f"crash of site {c.site} at {c.at_ms}ms starts after "
                        f"the stop condition ({horizon_ms}ms) and can never "
                        f"be observed — move it earlier or drop it"
                    )
        leavers: set[int] = set()
        for ev in self.membership:
            if not isinstance(ev, (JoinEvent, LeaveEvent)):
                raise ValueError(f"unknown membership event {ev!r}")
            if isinstance(ev, LeaveEvent):
                if ev.site in leavers:
                    raise ValueError(
                        f"site {ev.site} is scheduled to leave twice — a "
                        f"departed id is never reused"
                    )
                leavers.add(ev.site)
            if horizon_ms is not None and ev.at_ms > horizon_ms:
                raise ValueError(
                    f"membership event {ev!r} starts after the stop "
                    f"condition ({horizon_ms}ms) and can never be observed"
                )
        for ov in self.overloads:
            ticks = (ov.end_ms - ov.start_ms) / ov.interval_ms
            if ticks * len(ov.sites) > 1_000_000:
                raise ValueError(
                    f"overload event {ov!r} would inject over a million "
                    f"operations — widen interval_ms or shrink the window"
                )
        crash_stoppers = {c.site for c in self.crashes if c.is_crash_stop}
        doomed = leavers & crash_stoppers
        if doomed:
            raise ValueError(
                f"sites {sorted(doomed)} are scheduled to both crash-stop "
                f"and leave — a crash-stopped site cannot drain; rely on "
                f"eviction instead"
            )

    def faults_for(self, src: int, dst: int) -> ChannelFaults:
        for key, faults in self.channels:
            if key == (src, dst):
                return faults
        return self.default

    def heal_times(self) -> list[float]:
        """Finite heal timestamps, sorted and deduplicated."""
        return sorted({p.heal_ms for p in self.partitions if math.isfinite(p.heal_ms)})

    # ------------------------------------------------------------------
    # serialization — CI chaos artifacts must reproduce exactly
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-safe dict view (``inf`` windows encode as ``None``)."""

        def faults_dict(cf: ChannelFaults) -> dict:
            return {
                "drop_rate": cf.drop_rate,
                "dup_rate": cf.dup_rate,
                "spike_rate": cf.spike_rate,
                "spike_ms": list(cf.spike_ms),
            }

        def finite(x: float) -> Optional[float]:
            return x if math.isfinite(x) else None

        membership = []
        for ev in self.membership:
            if isinstance(ev, JoinEvent):
                membership.append({"kind": "join", "at_ms": ev.at_ms})
            else:
                membership.append(
                    {"kind": "leave", "site": ev.site, "at_ms": ev.at_ms}
                )
        return {
            "default": faults_dict(self.default),
            "channels": [
                {"src": src, "dst": dst, "faults": faults_dict(cf)}
                for (src, dst), cf in self.channels
            ],
            "partitions": [
                {
                    "group": sorted(p.group),
                    "start_ms": p.start_ms,
                    "heal_ms": finite(p.heal_ms),
                }
                for p in self.partitions
            ],
            "crashes": [
                {
                    "site": c.site,
                    "at_ms": c.at_ms,
                    "recover_ms": finite(c.recover_ms),
                }
                for c in self.crashes
            ],
            "membership": membership,
            "overloads": [
                {
                    "sites": list(ov.sites),
                    "start_ms": ov.start_ms,
                    "end_ms": ov.end_ms,
                    "interval_ms": ov.interval_ms,
                }
                for ov in self.overloads
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        """Inverse of :meth:`as_dict`."""

        def faults(d: Mapping) -> ChannelFaults:
            return ChannelFaults(
                drop_rate=float(d.get("drop_rate", 0.0)),
                dup_rate=float(d.get("dup_rate", 0.0)),
                spike_rate=float(d.get("spike_rate", 0.0)),
                spike_ms=tuple(d.get("spike_ms", (100.0, 500.0))),
            )

        def window(x: Optional[float]) -> float:
            return math.inf if x is None else float(x)

        membership: list[MembershipEvent] = []
        for ev in data.get("membership", ()):
            if ev["kind"] == "join":
                membership.append(JoinEvent(float(ev["at_ms"])))
            elif ev["kind"] == "leave":
                membership.append(LeaveEvent(int(ev["site"]), float(ev["at_ms"])))
            else:
                raise ValueError(f"unknown membership event kind {ev['kind']!r}")
        return cls.build(
            default=faults(data.get("default", {})),
            channels={
                (int(ch["src"]), int(ch["dst"])): faults(ch["faults"])
                for ch in data.get("channels", ())
            },
            partitions=[
                Partition(
                    p["group"], float(p.get("start_ms", 0.0)),
                    window(p.get("heal_ms")),
                )
                for p in data.get("partitions", ())
            ],
            crashes=[
                CrashEvent(
                    int(c["site"]), float(c["at_ms"]), window(c.get("recover_ms"))
                )
                for c in data.get("crashes", ())
            ],
            membership=membership,
            overloads=[
                OverloadEvent(
                    ov["sites"], float(ov["start_ms"]), float(ov["end_ms"]),
                    float(ov["interval_ms"]),
                )
                for ov in data.get("overloads", ())
            ],
        )

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialize for a CI chaos artifact; round-trips exactly."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


class FaultDecision(NamedTuple):
    """Outcome of one per-packet draw."""

    drop: bool
    duplicates: int
    extra_delay_ms: float
    severed: bool


#: decision for a fault-free transmission (shared, allocation-free)
NO_FAULT = FaultDecision(False, 0, 0.0, False)


@dataclass
class _DynamicPartition:
    """A partition started interactively; healed by ``heal_partitions``."""

    group: frozenset[int]
    start_ms: float
    heal_ms: float = math.inf


class FaultInjector:
    """Interprets a :class:`FaultPlan` with a dedicated RNG stream.

    One instance serves a whole network.  ``decide`` is called once per
    physical packet transmission; the injector keeps lifetime counters
    of everything it injected so tests can assert the chaos actually
    happened.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        *,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.plan.validate()
        self.rng = rng if rng is not None else np.random.default_rng(
            np.random.SeedSequence(seed)
        )
        self._dynamic: list[_DynamicPartition] = []
        # lifetime injection counters
        self.decisions = 0
        self.drops = 0
        self.partition_drops = 0
        self.duplicates = 0
        self.spikes = 0

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------
    def severed(self, src: int, dst: int, now: float) -> bool:
        """True when any partition (planned or dynamic) cuts src->dst now."""
        for p in self.plan.partitions:
            if p.severs(src, dst, now):
                return True
        for d in self._dynamic:
            if d.start_ms <= now < d.heal_ms and (src in d.group) != (dst in d.group):
                return True
        return False

    def start_partition(self, group: Iterable[int], now: float) -> frozenset[int]:
        """Begin an open-ended partition isolating ``group`` at ``now``."""
        g = frozenset(group)
        if not g:
            raise ValueError("partition group cannot be empty")
        self._dynamic.append(_DynamicPartition(group=g, start_ms=now))
        return g

    def heal_partitions(self, now: float) -> list[frozenset[int]]:
        """Heal every active dynamic partition; returns the healed groups."""
        healed = []
        for d in self._dynamic:
            if d.start_ms <= now < d.heal_ms:
                d.heal_ms = now
                healed.append(d.group)
        return healed

    def unhealed_partitions(self, now: float) -> list[frozenset[int]]:
        """Active partitions that will never heal by themselves."""
        groups = [
            p.group for p in self.plan.partitions
            if p.start_ms <= now and not math.isfinite(p.heal_ms)
        ]
        groups += [
            d.group for d in self._dynamic
            if d.start_ms <= now and not math.isfinite(d.heal_ms)
        ]
        return groups

    # ------------------------------------------------------------------
    # per-packet decisions
    # ------------------------------------------------------------------
    def decide(self, src: int, dst: int, now: float) -> FaultDecision:
        """Draw the fate of one physical packet transmission."""
        self.decisions += 1
        if self.severed(src, dst, now):
            self.partition_drops += 1
            return FaultDecision(True, 0, 0.0, True)
        faults = self.plan.faults_for(src, dst)
        if faults.is_quiet:
            return NO_FAULT
        if faults.drop_rate and self.rng.random() < faults.drop_rate:
            self.drops += 1
            return FaultDecision(True, 0, 0.0, False)
        duplicates = 0
        if faults.dup_rate and self.rng.random() < faults.dup_rate:
            duplicates = 1
            self.duplicates += 1
        extra = 0.0
        if faults.spike_rate and self.rng.random() < faults.spike_rate:
            lo, hi = faults.spike_ms
            extra = float(self.rng.uniform(lo, hi))
            self.spikes += 1
        if duplicates == 0 and extra == 0.0:
            return NO_FAULT
        return FaultDecision(False, duplicates, extra, False)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector decisions={self.decisions} drops={self.drops} "
            f"partition_drops={self.partition_drops} dups={self.duplicates} "
            f"spikes={self.spikes}>"
        )
