"""Seeded flash-crowd driver (overload injection).

Turns the :class:`~repro.sim.faults.OverloadEvent` entries of a
:class:`~repro.sim.faults.FaultPlan` into extra writes fired directly at
the protocol layer — modelling a flash crowd hitting a site on top of
its planned workload.  Injected writes:

* are **not** workload operations: they never touch the operation
  schedule, never call the warm-up ``on_operation`` hook (so the
  measured-window gate is unmoved), and are not counted in
  ``completed_ops``;
* target variables drawn from a dedicated child RNG stream, so enabling
  overload never perturbs the fault injector's or the latency model's
  draws;
* respect graceful degradation: a write refused by
  :class:`~repro.sim.reliable.OverloadError` is counted as *shed* (the
  admission layer did its job), and a site that is crashed, held,
  retired, or departed is *skipped* — a dead site has no crowd to serve;
* respect program order: each site is a sequential process, so a tick
  landing while the site has a remote read in flight is *deferred* (the
  crowd's request queues behind the pending operation) — an injected
  write sliding between a read's issue (FM) and completion (RM) would
  violate the session order every checker assumes.  A tick that stays
  blocked past the defer budget is dropped and counted as skipped.

The driver is only constructed when the plan has overload events;
without them nothing is scheduled and the run is byte-identical to a
plan-free run of the same seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from .engine import Simulator
from .faults import FaultPlan
from .reliable import OverloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.base import CausalProtocol
    from .process import Site

__all__ = ["OverloadDriver"]


class OverloadDriver:
    """Schedules and fires the plan's flash-crowd writes."""

    #: retry cadence while the target site is mid-remote-read
    DEFER_MS = 10.0
    #: defer budget per tick before the queued request is dropped
    MAX_DEFERS = 200

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        protocols: "list[CausalProtocol]",
        sites: "list[Site]",
        n_vars: int,
        rng: np.random.Generator,
    ) -> None:
        if n_vars <= 0:
            raise ValueError("overload driver needs at least one variable")
        self.sim = sim
        self.protocols = protocols
        self.sites = sites
        self.n_vars = n_vars
        self.rng = rng
        #: flash-crowd writes that reached a protocol
        self.injected = 0
        #: writes refused by OverloadError admission (graceful shedding)
        self.sheds = 0
        #: ticks skipped because the target site was down/held/departed
        self.skipped = 0
        #: ticks re-queued behind a pending remote read
        self.deferred = 0
        ticks: list[tuple[float, int]] = []
        for ov in plan.overloads:
            for t in ov.ticks():
                for site in ov.sites:
                    ticks.append((t, site))
        # deterministic firing order: by time, then site id
        ticks.sort()
        for t, site in ticks:
            sim.schedule_at(
                max(t, sim.now),
                lambda site=site: self._tick(site),
                label=f"flash-crowd site{site}",
            )

    # ------------------------------------------------------------------
    def _tick(self, site: int, defers: int = 0) -> None:
        from .membership import MembershipError

        proto = self._target(site)
        if proto is None:
            self.skipped += 1
            return
        if proto.reads_in_flight:
            # mid-operation: program order runs through the pending
            # remote read's completion, so the request queues and retries
            if defers >= self.MAX_DEFERS:
                self.skipped += 1
                return
            self.deferred += 1
            self.sim.schedule(
                self.DEFER_MS,
                lambda: self._tick(site, defers + 1),
                label=f"flash-crowd site{site} defer",
            )
            return
        var = int(self.rng.integers(self.n_vars))
        try:
            proto.admit_put()
            proto.write(var, ("flash", site, self.injected))
        except OverloadError:
            self.sheds += 1
            return
        except MembershipError:
            # the site departed between scheduling and firing (churn);
            # the crowd's request simply fails upstream
            self.skipped += 1
            return
        self.injected += 1

    def _target(self, site: int) -> "Optional[CausalProtocol]":
        """The protocol to hit, or None when the site cannot serve."""
        if site >= len(self.protocols):
            return None
        app = self.sites[site] if site < len(self.sites) else None
        if app is not None and (app.crashed or app.held or app.retired):
            return None
        return self.protocols[site]

    def as_dict(self) -> dict[str, int]:
        return {
            "injected": self.injected,
            "sheds": self.sheds,
            "skipped": self.skipped,
            "deferred": self.deferred,
        }
