"""Discrete-event simulation kernel.

The paper's original testbed drives protocol processes with JDK-8
``ScheduledExecutorService`` timers over real TCP sockets.  Here the same
semantics (timed operation schedules, asynchronous message delivery over
reliable FIFO channels) are reproduced with a deterministic discrete-event
simulator: a priority queue of timestamped events, a simulated clock in
milliseconds, and total-order tie-breaking so that two runs with the same
seed are bit-for-bit identical.

The kernel is deliberately minimal: everything domain-specific (channels,
processes, protocols) is layered on top via callbacks.

Hot-path layout (see docs/architecture.md, "Hot path & performance
model"): the heap stores ``(time, seq, event)`` tuples so ordering uses
C-level tuple comparison instead of a Python ``__lt__``;
:class:`ScheduledEvent` is a ``__slots__`` record; and cancellation is
lazy with *bounded* garbage — cancelled entries are tombstones counted
by the kernel and compacted out once they outnumber live entries
(compaction is deterministic: the surviving ``(time, seq)`` keys are a
total order, so ``heapify`` rebuilds the same heap in both runs of a
double-run diff).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

__all__ = ["Simulator", "ScheduledEvent", "SimulationError"]

#: queues smaller than this are never compacted — the scan costs more
#: than the tombstones
_COMPACT_MIN_QUEUE = 64


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel.

    Examples: scheduling into the past, running a simulator that was
    already stopped with an error, or exceeding the configured event
    budget (a runaway-protocol guard for tests).
    """


class ScheduledEvent:
    """A pending callback in the event queue.

    Ordering is ``(time, seq)``: events fire in timestamp order, with the
    insertion sequence number breaking ties deterministically.  The
    callback and its annotation do not participate in ordering.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled", "_sim", "_queued")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        label: str = "",
        _sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self._sim = _sim
        self._queued = _sim is not None

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped.

        Cancelling an event still in the queue leaves a tombstone; the
        owning simulator counts tombstones and compacts the heap when
        they exceed half the queue (cancel-heavy fault plans — e.g.
        retransmit timers under chaos — would otherwise grow the heap
        without bound).
        """
        if not self.cancelled:
            self.cancelled = True
            if self._queued and self._sim is not None:
                self._sim._note_cancel()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return (f"ScheduledEvent(t={self.time!r}, seq={self.seq}, "
                f"label={self.label!r}, {state})")


class Simulator:
    """Deterministic discrete-event simulator with a millisecond clock.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, lambda: print("fires at t=5ms"))
        sim.run()

    The clock only advances when events are popped; callbacks may schedule
    further events (at or after the current time).  ``run`` processes
    events until the queue drains, a time horizon is reached, or the event
    budget is exhausted.
    """

    def __init__(self, *, max_events: Optional[int] = None) -> None:
        #: heap of (time, seq, event) — tuple comparison never reaches
        #: the event because (time, seq) is unique
        self._queue: list[tuple[float, int, ScheduledEvent]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._max_events = max_events
        self._running = False
        #: cancelled events still sitting in the heap
        self._tombstones = 0
        #: lifetime count of tombstone compactions (always-on int — the
        #: compact path is rare; sampled by the metrics registry)
        self.compactions = 0
        #: optional per-event observer ``(time, pending_count)`` — used
        #: by the tracer's time-series sampler (event throughput, queue
        #: depth).  Purely passive; None costs one branch per event.
        #: Install before calling :meth:`run` — the dispatch loop reads
        #: it once at entry, so a swap from inside a callback only takes
        #: effect on the next ``run()``/``step()``.
        self.observer: Optional[Callable[[float, int], None]] = None
        #: optional per-timestamp-batch observer ``(time, batch_events,
        #: heap_len)`` — fired every ``batch_observer_stride``-th
        #: same-timestamp batch by :meth:`run` (not :meth:`step`).  Used
        #: by the metrics registry's kernel histograms; read once at
        #: ``run()`` entry like ``observer``.
        self.batch_observer: Optional[Callable[[float, int, int], None]] = None
        #: 1-in-k sampling for ``batch_observer``: skipped batches cost
        #: an inline increment in the dispatch loop instead of a Python
        #: call into the hook (batch/heap histograms are shape metrics;
        #: a deterministic sample preserves them)
        self.batch_observer_stride: int = 1

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (excluding cancelled ones)."""
        return len(self._queue) - self._tombstones

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` to fire ``delay`` ms from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already queued for the current instant (FIFO at equal
        timestamps).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulated time ``time`` ms."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} before current time t={self._now!r}"
            )
        seq = next(self._seq)
        ev = ScheduledEvent(time, seq, callback, label, self)
        heapq.heappush(self._queue, (time, seq, ev))
        return ev

    # ------------------------------------------------------------------
    # tombstone accounting
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """One queued event turned into a tombstone; maybe compact."""
        self._tombstones += 1
        if (self._tombstones * 2 > len(self._queue)
                and len(self._queue) >= _COMPACT_MIN_QUEUE):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (deterministic: the
        surviving (time, seq) keys are unique, so heapify's result is a
        pure function of the surviving set).

        Mutates the queue list in place — ``run()`` holds a local alias
        to it across callbacks, and compaction can fire mid-callback via
        ``cancel()``.
        """
        self._queue[:] = [item for item in self._queue if not item[2].cancelled]
        heapq.heapify(self._queue)
        self._tombstones = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event.  Returns False if queue is empty."""
        queue = self._queue
        while queue:
            ev = heapq.heappop(queue)[2]
            ev._queued = False
            if ev.cancelled:
                self._tombstones -= 1
                continue
            self._now = ev.time
            self._processed += 1
            if self._max_events is not None and self._processed > self._max_events:
                raise SimulationError(
                    f"event budget exceeded ({self._max_events}); "
                    "likely a protocol livelock"
                )
            if self.observer is not None:
                self.observer(ev.time, len(queue))
            ev.callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains (or ``until`` is reached).

        Returns the final simulated time.  When ``until`` is given, events
        with timestamps strictly greater than it are left queued and the
        clock is advanced to ``until``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        # the dispatch loop is deliberately inlined (vs calling step())
        # and binds hot names to locals: this loop IS the per-event cost
        # floor of every simulation.  ``processed`` lives in a local and
        # is written back in the finally (callbacks never read it
        # mid-run); ``observer`` is read once at entry (see its docs).
        queue = self._queue
        pop = heapq.heappop
        max_events = self._max_events
        observer = self.observer
        batch_observer = self.batch_observer
        batch_stride = self.batch_observer_stride
        batches_skipped = 0
        processed = self._processed
        try:
            while queue:
                head = queue[0][2]
                if head.cancelled:
                    pop(queue)
                    head._queued = False
                    self._tombstones -= 1
                    continue
                batch_until = head.time
                if until is not None and batch_until > until:
                    break
                # batch: every event at this exact timestamp is known to
                # be inside the horizon, so the until-check and clock
                # write happen once per timestamp, not once per event
                self._now = batch_until
                batch_start = processed
                while queue and queue[0][0] == batch_until:
                    ev = pop(queue)[2]
                    ev._queued = False
                    if ev.cancelled:
                        self._tombstones -= 1
                        continue
                    processed += 1
                    if max_events is not None and processed > max_events:
                        raise SimulationError(
                            f"event budget exceeded ({max_events}); "
                            "likely a protocol livelock"
                        )
                    if observer is not None:
                        observer(batch_until, len(queue))
                    ev.callback()
                if batch_observer is not None:
                    batches_skipped += 1
                    if batches_skipped >= batch_stride:
                        batches_skipped = 0
                        batch_observer(batch_until, processed - batch_start,
                                       len(queue))
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            self._processed = processed
            self._running = False
