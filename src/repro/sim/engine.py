"""Discrete-event simulation kernel.

The paper's original testbed drives protocol processes with JDK-8
``ScheduledExecutorService`` timers over real TCP sockets.  Here the same
semantics (timed operation schedules, asynchronous message delivery over
reliable FIFO channels) are reproduced with a deterministic discrete-event
simulator: a priority queue of timestamped events, a simulated clock in
milliseconds, and total-order tie-breaking so that two runs with the same
seed are bit-for-bit identical.

The kernel is deliberately minimal: everything domain-specific (channels,
processes, protocols) is layered on top via callbacks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Simulator", "ScheduledEvent", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel.

    Examples: scheduling into the past, running a simulator that was
    already stopped with an error, or exceeding the configured event
    budget (a runaway-protocol guard for tests).
    """


@dataclass(order=True)
class ScheduledEvent:
    """A pending callback in the event queue.

    Ordering is ``(time, seq)``: events fire in timestamp order, with the
    insertion sequence number breaking ties deterministically.  The
    callback and its annotation do not participate in ordering.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator with a millisecond clock.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, lambda: print("fires at t=5ms"))
        sim.run()

    The clock only advances when events are popped; callbacks may schedule
    further events (at or after the current time).  ``run`` processes
    events until the queue drains, a time horizon is reached, or the event
    budget is exhausted.
    """

    def __init__(self, *, max_events: Optional[int] = None) -> None:
        self._queue: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._max_events = max_events
        self._running = False
        #: optional per-event observer ``(time, pending_count)`` — used
        #: by the tracer's time-series sampler (event throughput, queue
        #: depth).  Purely passive; None costs one branch per event.
        self.observer: Optional[Callable[[float, int], None]] = None

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` to fire ``delay`` ms from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already queued for the current instant (FIFO at equal
        timestamps).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulated time ``time`` ms."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} before current time t={self._now!r}"
            )
        ev = ScheduledEvent(time=time, seq=next(self._seq), callback=callback, label=label)
        heapq.heappush(self._queue, ev)
        return ev

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event.  Returns False if queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._processed += 1
            if self._max_events is not None and self._processed > self._max_events:
                raise SimulationError(
                    f"event budget exceeded ({self._max_events}); "
                    "likely a protocol livelock"
                )
            if self.observer is not None:
                self.observer(ev.time, len(self._queue))
            ev.callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains (or ``until`` is reached).

        Returns the final simulated time.  When ``until`` is given, events
        with timestamps strictly greater than it are left queued and the
        clock is advanced to ``until``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                self.step()
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            self._running = False
