"""Heartbeat failure detector with timeout and exponential backoff.

Every live site multicasts a small heartbeat each ``heartbeat_interval_ms``
over the *lossy* substrate — heartbeats are subject to the fault
injector like any packet, so drops, spikes, and partitions produce
realistic (and measured) false suspicions.  Each ordered pair
``(observer, subject)`` keeps the last time the observer heard from the
subject; silence past the pair's current timeout raises a suspicion.

A suspicion pauses the observer's reliable channel to the subject
(:meth:`~repro.sim.reliable.ReliableTransport.pause_pair`): sends keep
queueing durably but retransmission timers stop burning while the
subject cannot answer.  Any packet from the subject — the next
heartbeat, or an anti-entropy sync message during rejoin — clears the
suspicion and resumes the channel with an eager flush.

The per-pair timeout backs off exponentially on every suspicion
(capped), so a flaky channel that keeps losing heartbeats stops
flapping; a *genuine* rejoin resets the subject's column to the base
timeout (the ground truth comes from the crash-recovery manager, which
the simulation — unlike the sites — is allowed to know).

The periodic tick would keep the simulator alive forever, so it consults
the manager's ``quiescent()`` predicate and stops rescheduling once the
run is over; ``wake()`` restarts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..metrics.collector import MetricsCollector
    from ..obs.metrics import Counter, MetricsRegistry
    from ..obs.tracer import Tracer
    from .engine import ScheduledEvent, Simulator
    from .network import Network

__all__ = ["DetectorPolicy", "HeartbeatPacket", "FailureDetector"]


@dataclass(frozen=True)
class DetectorPolicy:
    """Failure-detector parameters."""

    #: spacing of each live site's heartbeat multicast
    heartbeat_interval_ms: float = 75.0
    #: base silence before an observer suspects a subject; must span
    #: several heartbeat intervals or loss alone triggers suspicions
    timeout_ms: float = 300.0
    #: multiplicative backoff of a pair's timeout after each suspicion
    backoff: float = 2.0
    #: cap on the backed-off timeout
    max_timeout_ms: float = 2400.0
    #: modelled wire size of one heartbeat
    heartbeat_size_bytes: float = 16.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval_ms <= 0:
            raise ValueError("heartbeat interval must be positive")
        if self.timeout_ms <= self.heartbeat_interval_ms:
            raise ValueError("timeout must exceed the heartbeat interval")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_timeout_ms < self.timeout_ms:
            raise ValueError("max timeout must be >= base timeout")


@dataclass(frozen=True)
class HeartbeatPacket:
    """I-am-alive beacon from ``origin``."""

    origin: int


class FailureDetector:
    """Per-pair suspicion state for one network."""

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        policy: Optional[DetectorPolicy] = None,
        *,
        collector: "Optional[MetricsCollector]" = None,
        tracer: "Optional[Tracer]" = None,
    ) -> None:
        if network.transport is None:
            raise RuntimeError(
                "the failure detector needs the chaos transport "
                "(fault_plan=...); channel pausing lives there"
            )
        self.sim = sim
        self.net = network
        self.transport = network.transport
        self.policy = policy if policy is not None else DetectorPolicy()
        self.collector = collector
        self.tracer = tracer
        self.n = network.n_sites
        # elastic membership: who currently beats and watches; the view
        # manager repoints this at the live view when churn is enabled
        self.members_fn: Callable[[], tuple[int, ...]] = (
            lambda: tuple(range(self.net.n_sites))
        )
        self._last_heard: dict[tuple[int, int], float] = {}
        self._timeout: dict[tuple[int, int], float] = {}
        self.suspected: set[tuple[int, int]] = set()
        self.heartbeats_sent = 0
        self.false_suspicions = 0
        # wired by the crash-recovery manager
        self.is_down: Callable[[int], bool] = lambda site: False
        self.quiescent: Callable[[], bool] = lambda: False
        self.on_suspect: Optional[Callable[[int, int, bool], None]] = None
        self.on_alive: Optional[Callable[[int, int], None]] = None
        self._tick_event: "Optional[ScheduledEvent]" = None
        self._started = False
        self._stopped = False
        # metrics (wired post-construction via attach_registry; None is
        # the zero-overhead path)
        self.registry: "Optional[MetricsRegistry]" = None
        self._m_heartbeats: "Optional[Counter]" = None
        self._m_suspicions: "Optional[Counter]" = None
        self._m_false_suspicions: "Optional[Counter]" = None
        self._m_recoveries: "Optional[Counter]" = None
        self.transport.register_packet_handler(self._handle_packet)

    def attach_registry(self, registry: "MetricsRegistry") -> None:
        """Bind detector counters (called by the runner after wiring)."""
        self.registry = registry
        self._m_heartbeats = registry.counter(  # type: ignore[assignment]
            "detector_heartbeats_total", "heartbeat packets sent").labels()
        self._m_suspicions = registry.counter(  # type: ignore[assignment]
            "detector_suspicions_total",
            "pairs newly suspected (true + false)").labels()
        self._m_false_suspicions = registry.counter(  # type: ignore[assignment]
            "detector_false_suspicions_total",
            "suspicions of a site that was actually up").labels()
        self._m_recoveries = registry.counter(  # type: ignore[assignment]
            "detector_recoveries_total",
            "suspected pairs cleared by proof of life").labels()

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("failure detector already started")
        self._started = True
        now = self.sim.now
        base = self.policy.timeout_ms
        members = self.members_fn()
        for o in members:
            for s in members:
                if o != s:
                    self._last_heard[(o, s)] = now
                    self._timeout[(o, s)] = base
        self._tick_event = self.sim.schedule(
            self.policy.heartbeat_interval_ms, self._tick, label="fd.tick"
        )

    def suspects(self, observer: int, subject: int) -> bool:
        return (observer, subject) in self.suspected

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._tick_event = None
        if self.quiescent():
            self._stopped = True
            return
        now = self.sim.now
        size = self.policy.heartbeat_size_bytes
        members = self.members_fn()
        for origin in members:
            if self.is_down(origin):
                continue  # the dead don't beat
            for dst in members:
                if dst == origin:
                    continue
                self.heartbeats_sent += 1
                if self.collector is not None:
                    self.collector.record_heartbeat()
                if self._m_heartbeats is not None:
                    self._m_heartbeats.inc()
                self.net._transmit_raw(origin, dst, HeartbeatPacket(origin), size)
        for observer in members:
            if self.is_down(observer):
                continue
            for subject in members:
                if subject == observer or (observer, subject) in self.suspected:
                    continue
                pair = (observer, subject)
                if now - self._last_heard[pair] >= self._timeout[pair]:
                    self._suspect(observer, subject)
        self._tick_event = self.sim.schedule(
            self.policy.heartbeat_interval_ms, self._tick, label="fd.tick"
        )

    def _suspect(self, observer: int, subject: int) -> None:
        pair = (observer, subject)
        self.suspected.add(pair)
        self.transport.pause_pair(observer, subject)
        self._timeout[pair] = min(
            self._timeout[pair] * self.policy.backoff, self.policy.max_timeout_ms
        )
        actually_down = self.is_down(subject)
        if self._m_suspicions is not None:
            self._m_suspicions.inc()
        if not actually_down:
            self.false_suspicions += 1
            if self.collector is not None:
                self.collector.record_false_suspicion()
            if self._m_false_suspicions is not None:
                self._m_false_suspicions.inc()
        if self.tracer is not None:
            self.tracer.detector_suspect(observer, subject, self.sim.now,
                                         false_positive=not actually_down)
        if self.on_suspect is not None:
            self.on_suspect(observer, subject, actually_down)

    def observe(self, observer: int, subject: int) -> None:
        """Proof of life: ``observer`` just heard from ``subject``."""
        pair = (observer, subject)
        self._last_heard[pair] = self.sim.now
        if pair in self.suspected:
            self.suspected.discard(pair)
            self.transport.resume_pair(observer, subject, flush=True)
            if self._m_recoveries is not None:
                self._m_recoveries.inc()
            if self.tracer is not None:
                self.tracer.detector_alive(observer, subject, self.sim.now)
            if self.on_alive is not None:
                self.on_alive(observer, subject)

    def _handle_packet(self, src: int, dst: int, packet: object,
                       dead: bool) -> bool:
        if not isinstance(packet, HeartbeatPacket):
            return False
        if not dead and not self.is_down(dst):
            self.observe(dst, packet.origin)
        return True

    # ------------------------------------------------------------------
    # crash-recovery manager hooks
    # ------------------------------------------------------------------
    def note_crash(self, site: int) -> None:
        """The crashed site's *observer* state is volatile — its own
        suspicions die with it (the transport cleared its pauses)."""
        for pair in [p for p in sorted(self.suspected) if p[0] == site]:
            self.suspected.discard(pair)

    def note_recover(self, site: int) -> None:
        """Fresh grace period for the rejoined observer; peers watching
        it return to the base timeout (the backoff punished a crash, not
        a flaky channel)."""
        now = self.sim.now
        base = self.policy.timeout_ms
        for other in self.members_fn():
            if other == site:
                continue
            self._last_heard[(site, other)] = now
            self._timeout[(site, other)] = base
            self._timeout[(other, site)] = base

    # ------------------------------------------------------------------
    # elastic membership (see repro.sim.membership)
    # ------------------------------------------------------------------
    def add_member(self, site: int) -> None:
        """Seed pair state for a joiner: full grace period both ways.

        Call *after* the view already includes ``site`` so the next tick
        finds every pair initialized.
        """
        now = self.sim.now
        base = self.policy.timeout_ms
        self.n = max(self.n, site + 1)
        for other in self.members_fn():
            if other == site:
                continue
            for pair in ((site, other), (other, site)):
                self._last_heard[pair] = now
                self._timeout[pair] = base

    def remove_member(self, site: int) -> None:
        """Drop all pair state involving a departed site.

        Suspicions of it (or by it) are void, not false positives —
        the departure is a membership event, not a detector outcome.
        """
        for pair in [p for p in sorted(self.suspected) if site in p]:
            self.suspected.discard(pair)
        for store in (self._last_heard, self._timeout):
            for pair in [p for p in store if site in p]:
                del store[pair]

    def wake(self) -> None:
        """Restart the tick after a quiescent stop (and re-baseline:
        silence during the stop was idleness, not death)."""
        if not self._started or not self._stopped or self._tick_event is not None:
            return
        self._stopped = False
        now = self.sim.now
        for pair in self._last_heard:
            self._last_heard[pair] = max(self._last_heard[pair], now)
        self._tick_event = self.sim.schedule(
            self.policy.heartbeat_interval_ms, self._tick, label="fd.tick"
        )
