"""Event records for the underlying communication system.

Section II-B of the paper defines six kinds of events generated at each
site by the read/write operations of the application processes:

* ``send`` — invocation of the ``Multicast(m)`` primitive,
* ``fetch`` — invocation of the ``RemoteFetch(m)`` primitive,
* ``receipt`` — arrival of a message at a site,
* ``apply`` — local application of a write's value,
* ``remote_return`` — a replica answering a remote read,
* ``return`` — completion of a read at the issuing site.

These records are not required for the protocols to function; they form
the observable execution trace consumed by :mod:`repro.verify` (causal
consistency checking) and by :mod:`repro.workload.traces` (export/replay
and debugging).  Keeping them as plain frozen dataclasses makes traces
cheap to record and trivially serializable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["EventKind", "EventRecord"]


class EventKind(enum.Enum):
    """The six event kinds of Section II-B, plus operation markers."""

    SEND = "send"
    FETCH = "fetch"
    RECEIPT = "receipt"
    APPLY = "apply"
    REMOTE_RETURN = "remote_return"
    RETURN = "return"
    # Operation-level markers (application subsystem), used by the
    # verifier to reconstruct program order.
    WRITE_OP = "write_op"
    READ_OP = "read_op"


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One timestamped event in the execution trace.

    ``write_id`` identifies a write operation globally as
    ``(writer site, writer local clock)``; reads carry the ``write_id`` of
    the write whose value they returned (``None`` for the initial value
    |bot|), which materializes the read-from order for the checker.
    """

    kind: EventKind
    time: float
    site: int
    var: Optional[int] = None
    value: object = None
    write_id: Optional[tuple[int, int]] = None
    op_index: Optional[int] = None
    peer: Optional[int] = None
    detail: str = ""
    #: destination site set of a write (WRITE_OP only).  Recorded at
    #: write time because under elastic membership the placement later
    #: in the run may disagree with the placement the write actually
    #: used — the checker's apply-order condition needs the real one.
    dests: Optional[tuple[int, ...]] = None

    def as_dict(self) -> dict:
        """Plain-dict view used by the JSON trace exporter."""
        out = {
            "kind": self.kind.value,
            "time": self.time,
            "site": self.site,
            "var": self.var,
            "value": self.value,
            "write_id": list(self.write_id) if self.write_id is not None else None,
            "op_index": self.op_index,
            "peer": self.peer,
            "detail": self.detail,
        }
        # omitted when absent so pre-membership trace files stay stable
        if self.dests is not None:
            out["dests"] = list(self.dests)
        return out

    @staticmethod
    def from_dict(data: dict) -> "EventRecord":
        """Inverse of :meth:`as_dict` (trace replay)."""
        wid = data.get("write_id")
        dests = data.get("dests")
        return EventRecord(
            kind=EventKind(data["kind"]),
            time=float(data["time"]),
            site=int(data["site"]),
            var=data.get("var"),
            value=data.get("value"),
            write_id=tuple(wid) if wid is not None else None,
            op_index=data.get("op_index"),
            peer=data.get("peer"),
            detail=data.get("detail", ""),
            dests=tuple(dests) if dests is not None else None,
        )
