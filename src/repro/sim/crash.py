"""Site crash–recovery: orchestration of checkpoints, detection, rejoin.

The :class:`CrashRecoveryManager` is the simulation-side authority on
which sites are down.  It executes seeded crash plans
(:class:`~repro.sim.faults.CrashEvent`), coordinates the durable-state
layer (:mod:`repro.sim.checkpoint`), the heartbeat failure detector
(:mod:`repro.sim.failure_detector`) and the reliable transport, and
drives the rejoin pipeline:

1. **restore** — reinstall the last durable checkpoint into the
   protocol object and replay the write-ahead log through the normal
   protocol code paths (deterministic re-execution, no value-level
   state transfer);
2. **catch-up** — anti-entropy rounds against every live replica: the
   rejoining site asks each peer for its pending count and a freshness
   digest of the variables they co-replicate, while the transport
   flushes everything that stayed queued (unacked) for the site during
   its downtime.  Catch-up completes when no live sender holds unacked
   traffic for the site, every peer digest entry is *known* (per the
   protocol's ``knows_write``), and the rejoined site's own reorder /
   activation buffers have drained;
3. **resume** — the application schedule continues from the interrupted
   operation (:meth:`~repro.sim.process.Site.recover`).

Catch-up never installs values directly: the causal safety argument of
every protocol rests on updates flowing through the activation
predicates, so the manager only *waits* (with bounded rounds) until the
ordinary machinery has caught the site up.

The manager also owns the global ``quiescent()`` predicate that lets the
self-perpetuating infrastructure ticks (heartbeats, checkpoints,
catch-up rounds) stop once the run is over — without it the event loop
would never drain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..memory.store import WriteId
from .checkpoint import DEFAULT_CHECKPOINT_INTERVAL_MS, DurabilityLayer
from .failure_detector import DetectorPolicy, FailureDetector
from .faults import CrashEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.base import CausalProtocol
    from ..metrics.collector import MetricsCollector
    from ..obs.metrics import MetricsRegistry
    from ..obs.tracer import Tracer
    from .engine import Simulator
    from .network import Network
    from .process import Site

__all__ = [
    "CatchupPolicy",
    "SyncRequest",
    "SyncResponse",
    "CrashRecoveryManager",
    "install_crash_recovery",
]


@dataclass(frozen=True)
class CatchupPolicy:
    """Anti-entropy parameters for the rejoin catch-up phase."""

    #: spacing of the first catch-up round after restore
    round_interval_ms: float = 80.0
    #: multiplicative backoff between rounds
    backoff: float = 1.5
    #: cap on the backed-off round interval
    max_interval_ms: float = 640.0
    #: give up (and resume anyway) after this many rounds; the causal
    #: checker downstream still gates correctness
    max_rounds: int = 40
    #: modelled wire sizes of the sync messages
    request_size_bytes: float = 24.0
    response_base_bytes: float = 48.0
    response_entry_bytes: float = 12.0

    def __post_init__(self) -> None:
        if self.round_interval_ms <= 0:
            raise ValueError("round interval must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")


@dataclass(frozen=True)
class SyncRequest:
    """Catch-up probe from a rejoining site to one live peer."""

    origin: int  # the rejoining site
    round: int


@dataclass(frozen=True)
class SyncResponse:
    """One live peer's view of how far behind the rejoining site is.

    ``digest`` holds, for every variable co-replicated by responder and
    target, the write id currently visible at the responder (or None if
    never written).  The digest is advisory freshness information — the
    actual data still arrives through the normal (retransmitting)
    channels; the target only uses it to decide whether it has caught
    up, via the protocol's conservative ``knows_write``.
    """

    origin: int  # the responder
    target: int  # the rejoining site
    round: int
    pending: int  # responder's own pending (buffered) messages
    digest: tuple[tuple[int, Optional[tuple[int, int]]], ...]


class CrashRecoveryManager:
    """Simulation-side crash/recovery orchestration for one network."""

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        protocols: Sequence["CausalProtocol"],
        durability: DurabilityLayer,
        *,
        detector: Optional[FailureDetector] = None,
        sites: Optional[Sequence["Site"]] = None,
        crashes: Sequence[CrashEvent] = (),
        catchup: Optional[CatchupPolicy] = None,
        collector: "Optional[MetricsCollector]" = None,
        tracer: "Optional[Tracer]" = None,
    ) -> None:
        self.sim = sim
        self.net = network
        self.transport = network.transport
        self.protocols = list(protocols)
        self.placement = self.protocols[0].ctx.placement
        self.durability = durability
        self.detector = detector
        self.sites = list(sites) if sites is not None else None
        self.crashes = tuple(crashes)
        self.catchup = catchup if catchup is not None else CatchupPolicy()
        self.collector = collector
        self.tracer = tracer
        self.n = network.n_sites
        #: elastic membership (wired by the view manager when churn is on)
        self.view_manager = None
        #: sites that left the view for good (left or evicted)
        self.departed: set[int] = set()
        #: currently-down sites (ground truth)
        self.down: set[int] = set()
        self.crash_time: dict[int, float] = {}
        #: sites restored but not yet done with anti-entropy
        self._catching_up: set[int] = set()
        self._catchup_started: dict[int, float] = {}
        self._catchup_rounds: dict[int, int] = {}
        self._responses: dict[int, dict[int, SyncResponse]] = {}
        #: sites with a *scheduled* future recovery (plan events)
        self._recovery_scheduled: set[int] = set()
        #: crash-plan events not yet fired (quiescence must wait for them)
        self._plan_pending = 0
        #: crashed sites already counted in the detection-latency metric
        self._detected: set[int] = set()
        self.sync_messages = 0
        self._started = False
        #: metrics registry (wired post-construction by the runner via
        #: attach_registry; None is the zero-overhead path)
        self.registry: "Optional[MetricsRegistry]" = None
        # wire the collaborators
        durability.is_down = self.is_down
        durability.quiescent = self.quiescent
        if detector is not None:
            detector.is_down = self.is_down
            detector.quiescent = self.quiescent
            detector.on_suspect = self._on_suspect
        if self.transport is not None:
            self.transport.register_packet_handler(self._handle_packet)

    def attach_registry(self, registry: "MetricsRegistry") -> None:
        """Wire the metrics registry through to the crash subsystems."""
        self.registry = registry
        self.durability.registry = registry
        if self.detector is not None:
            self.detector.attach_registry(registry)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Attach durability, start the detector, arm the crash plan."""
        if self._started:
            raise RuntimeError("crash-recovery manager already started")
        self._started = True
        self.durability.attach()
        if self.detector is not None:
            self.detector.start()
            # site-local liveness oracle: a site avoids fetching from
            # replicas it currently suspects (failover stays symmetric
            # with what the site could locally know)
            det = self.detector
            for proto in self.protocols:
                proto._liveness = (
                    lambda target, _self=proto.site: not det.suspects(_self, target)
                )
        for ev in self.crashes:
            self._plan_pending += 1
            if ev.site >= self.n:
                raise ValueError(f"crash plan names site {ev.site}; n={self.n}")
            self.sim.schedule_at(
                ev.at_ms, lambda ev=ev: self._plan_crash(ev),
                label=f"crash.plan site{ev.site}",
            )

    def is_down(self, site: int) -> bool:
        return site in self.down

    def down_forever(self) -> set[int]:
        """Down sites with no scheduled recovery (crash-stop victims)."""
        # simcheck: ignore[SIM003] -- set-to-set filter; construction order is never observable
        return {s for s in self.down if s not in self._recovery_scheduled}

    # ------------------------------------------------------------------
    # crash plan execution
    # ------------------------------------------------------------------
    def _plan_crash(self, ev: CrashEvent) -> None:
        self._plan_pending -= 1
        self.crash(ev.site)
        if not ev.is_crash_stop:
            self._plan_pending += 1
            self._recovery_scheduled.add(ev.site)
            self.sim.schedule_at(
                ev.recover_ms, lambda: self._plan_recover(ev.site),
                label=f"recover.plan site{ev.site}",
            )

    def _plan_recover(self, site: int) -> None:
        self._plan_pending -= 1
        self._recovery_scheduled.discard(site)
        if site in self.departed:
            return  # evicted while down: the view moved on without it
        self.recover(site)

    # ------------------------------------------------------------------
    # crash / recover primitives (also used interactively by Cluster)
    # ------------------------------------------------------------------
    def crash(self, site: int) -> None:
        """Kill ``site`` now: volatile state is lost, durable state kept."""
        if self.view_manager is not None:
            self.view_manager.check_member(site)
        if site in self.down:
            raise RuntimeError(f"site {site} is already down")
        if self.net.is_paused(site):
            # held messages were acked by the pause buffer but never
            # reached the WAL — crashing here would silently drop
            # acknowledged traffic and break ack-implies-durable
            raise RuntimeError(
                f"site {site} is paused; resume_site() before crashing it"
            )
        now = self.sim.now
        self.down.add(site)
        self.crash_time[site] = now
        self._detected.discard(site)
        # a crash during catch-up abandons the catch-up (restart on the
        # next recover, from the newer checkpoint taken at restore time)
        self._catching_up.discard(site)
        self._responses.pop(site, None)
        if self.collector is not None:
            self.collector.record_crash()
        if self.registry is not None:
            self.registry.inc("crash_crashes_total",
                              help_text="site crashes injected")
        if self.tracer is not None:
            self.tracer.site_crash(site, now)
        if self.sites is not None:
            self.sites[site].crash()
        self.net.crash_site(site)
        if self.transport is not None:
            self.transport.on_site_crash(site)
        if self.detector is not None:
            self.detector.note_crash(site)

    def recover(self, site: int) -> None:
        """Restore ``site`` from disk, replay its WAL, start catch-up."""
        if self.view_manager is not None:
            self.view_manager.check_member(site)
        if site not in self.down:
            raise RuntimeError(f"site {site} is not down")
        now = self.sim.now
        proto = self.protocols[site]
        disk = self.durability.disk(site)
        checkpoint_age = self.crash_time[site] - disk.checkpoint_time
        proto.restore(disk.checkpoint)
        if self.view_manager is not None:
            # the view may have grown while the site was down (and the
            # checkpoint may predate even earlier epochs): resize the
            # restored metadata BEFORE replaying WAL records that can
            # reference post-growth site ids
            proto.on_view_change(self.view_manager.view)
        replayed = proto.replay(disk.wal)
        downtime = now - self.crash_time[site]
        self.down.discard(site)
        self._detected.discard(site)
        self.net.revive_site(site)
        if self.transport is not None:
            self.transport.on_site_recover(site)
        if self.detector is not None:
            self.detector.note_recover(site)
        if self.collector is not None:
            self.collector.record_restore(
                downtime_ms=downtime,
                wal_replayed=replayed,
                checkpoint_age_ms=checkpoint_age,
            )
        if self.registry is not None:
            self.registry.inc("crash_restores_total",
                              help_text="sites restored from disk")
            self.registry.observe("crash_downtime_ms", downtime,
                                  help_text="crash-to-restore downtime")
            self.registry.observe("wal_replayed_records", replayed,
                                  help_text="WAL records replayed per restore")
        if self.tracer is not None:
            self.tracer.site_restore(site, now, downtime_ms=downtime,
                                     wal_replayed=replayed)
        # checkpoint the freshly rebuilt state so a repeat crash does not
        # replay the same WAL twice on top of the pre-crash checkpoint
        disk.install_checkpoint(proto.snapshot(), now)
        self.durability.wake()
        self._start_catchup(site)

    # ------------------------------------------------------------------
    # anti-entropy catch-up
    # ------------------------------------------------------------------
    def _start_catchup(self, site: int) -> None:
        self._catching_up.add(site)
        self._catchup_started[site] = self.sim.now
        self._catchup_rounds[site] = 0
        self._responses[site] = {}
        self._catchup_round(site, self.catchup.round_interval_ms)

    def _member_ids(self) -> Sequence[int]:
        """Current member ids (the static range when churn is off)."""
        if self.view_manager is not None:
            return self.view_manager.view.members
        return range(self.n)

    def _live_peers(self, site: int) -> list[int]:
        return [p for p in self._member_ids() if p != site and p not in self.down]

    def _catchup_round(self, site: int, interval: float) -> None:
        if site in self.down or site not in self._catching_up:
            return
        if self._caught_up(site):
            self._finish_catchup(site, forced=False)
            return
        rounds = self._catchup_rounds[site]
        if rounds >= self.catchup.max_rounds:
            self._finish_catchup(site, forced=True)
            return
        self._catchup_rounds[site] = rounds + 1
        req = SyncRequest(site, rounds)
        for peer in self._live_peers(site):
            self.sync_messages += 1
            if self.collector is not None:
                self.collector.record_sync_message()
            self.net._transmit_raw(site, peer, req,
                                   self.catchup.request_size_bytes)
        nxt = min(interval * self.catchup.backoff, self.catchup.max_interval_ms)
        self.sim.schedule(
            interval, lambda: self._catchup_round(site, nxt),
            label=f"catchup site{site} round{rounds + 1}",
        )

    def _caught_up(self, site: int) -> bool:
        # 1. nothing a live sender owes this site is still unacked (wire
        #    drops during downtime live in those queues — this is the
        #    real state-transfer barrier)
        if self.transport is not None and self.transport.unacked_to(
            site, from_live_only=True, down=self.down
        ):
            return False
        # 2. every live peer answered at least once, and every digest
        #    entry is known here (conservative per protocol)
        responses = self._responses.get(site, {})
        peers = self._live_peers(site)
        if any(p not in responses for p in peers):
            return False
        proto = self.protocols[site]
        for resp in responses.values():
            for _var, widt in resp.digest:
                if widt is None:
                    continue
                if proto.knows_write(WriteId(widt[0], widt[1])) is False:
                    return False
        # 3. the rejoined site's own buffers have drained — its causal
        #    gates accepted everything that arrived
        return proto.pending_count == 0

    def _finish_catchup(self, site: int, *, forced: bool) -> None:
        self._catching_up.discard(site)
        self._responses.pop(site, None)
        duration = self.sim.now - self._catchup_started.pop(site)
        rounds = self._catchup_rounds.pop(site, 0)
        if self.collector is not None:
            self.collector.record_catchup(duration, rounds=rounds, forced=forced)
        if self.registry is not None:
            self.registry.inc("crash_catchups_total",
                              help_text="anti-entropy catch-ups completed")
            self.registry.observe("crash_catchup_ms", duration,
                                  help_text="restore-to-caught-up duration")
        if self.tracer is not None:
            self.tracer.site_catchup(site, self.sim.now, duration_ms=duration,
                                     rounds=rounds, forced=forced)
        if self.sites is not None:
            self.sites[site].recover()

    def _build_digest(
        self, responder: int, target: int
    ) -> tuple[tuple[int, Optional[tuple[int, int]]], ...]:
        proto = self.protocols[responder]
        store = proto.ctx.store
        digest: list[tuple[int, Optional[tuple[int, int]]]] = []
        for var in self.placement.vars_at(target):
            if not self.placement.is_replicated_at(var, responder):
                continue
            slot = store._slots[var]
            wid = slot.write_id
            digest.append((var, None if wid is None else (wid.site, wid.clock)))
        return tuple(digest)

    def _handle_packet(self, src: int, dst: int, packet: object,
                       dead: bool) -> bool:
        if isinstance(packet, SyncRequest):
            if dead or dst in self.down:
                return True
            if self.detector is not None:
                self.detector.observe(dst, src)
            resp = SyncResponse(
                origin=dst,
                target=packet.origin,
                round=packet.round,
                pending=self.protocols[dst].pending_count,
                digest=self._build_digest(dst, packet.origin),
            )
            size = (self.catchup.response_base_bytes
                    + self.catchup.response_entry_bytes * len(resp.digest))
            self.sync_messages += 1
            if self.collector is not None:
                self.collector.record_sync_message()
            self.net._transmit_raw(dst, packet.origin, resp, size)
            return True
        if isinstance(packet, SyncResponse):
            if dead or dst in self.down:
                return True
            if self.detector is not None:
                self.detector.observe(dst, src)
            site = packet.target
            if site != dst or site not in self._catching_up:
                return True  # stale response from an abandoned catch-up
            self._responses[site][packet.origin] = packet
            if self._caught_up(site):
                self._finish_catchup(site, forced=False)
            return True
        return False

    def _on_suspect(self, observer: int, subject: int,
                    actually_down: bool) -> None:
        """Detector callback: record detection latency on first notice."""
        if not actually_down or subject in self._detected:
            return
        self._detected.add(subject)
        if self.collector is not None:
            self.collector.record_detection(
                self.sim.now - self.crash_time[subject]
            )

    # ------------------------------------------------------------------
    # quiescence: may the infrastructure ticks stop?
    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        """True when no future infrastructure work can matter.

        The heartbeat / checkpoint / catch-up ticks are self-perpetuating
        and would keep the event loop alive forever; they consult this
        before rescheduling.  The conditions are deliberately exact for
        crash-stop runs: with zero live↔live unacked traffic, a live
        site still blocked on a fetch can only be waiting on state frozen
        inside a dead site's outbound queue — i.e. genuinely
        unfinishable (the runner accounts those operations as lost).
        """
        if self._catching_up or self._plan_pending:
            return False
        if self.view_manager is not None and self.view_manager.busy():
            return False
        members = self._member_ids()
        det = self.detector
        if det is not None:
            inj = self.net.faults
            now = self.sim.now
            forever = (
                inj.unhealed_partitions(now) if inj is not None else []
            )
            for o in members:
                if o in self.down:
                    continue
                for s in members:
                    if s == o or s in self.down:
                        continue
                    cut = (inj is not None
                           and inj.severed(s, o, now))
                    suspected = (o, s) in det.suspected
                    if cut and not suspected:
                        # the detector has not yet noticed this cut;
                        # until it suspects (and pauses the channel)
                        # the retransmit timers would burn forever
                        return False
                    if suspected and not cut:
                        # clears only when a heartbeat crosses — keep
                        # ticking so one does
                        return False
                    if cut and suspected and not any(
                        (s in g) != (o in g) for g in forever
                    ):
                        # a finite cut heals by itself; the ticks must
                        # outlive it so post-heal heartbeats can clear
                        # the (false) suspicion it caused
                        return False
        if self.transport is not None:
            # retransmissions into a dead site keep the loop alive until
            # its senders suspect it and pause; wait for that to settle
            for d in sorted(self.down):
                if self.transport.unacked_to(d, from_live_only=True,
                                             down=self.down):
                    for src in members:
                        if src in self.down:
                            continue
                        ch = self.transport._channels.get((src, d))
                        if (ch is not None and ch.unacked
                                and (src, d) not in self.transport.paused_pairs):
                            return False
            if self.transport.unacked_between_live(self.down):
                return False
        if self.sites is not None:
            # departed sites count like dead-forever ones: a live site
            # blocked on a fetch into an evicted replica can never finish
            dead_forever = self.down_forever() | self.departed
            for site in self.sites:
                if site.site_id in self.down or site.finished:
                    continue
                # unfinishable: blocked on a fetch while the only state
                # that could unblock it is frozen in a dead-forever site
                if dead_forever and site.protocol._fetches:
                    continue
                return False
        return True

    def lost_operations(self) -> int:
        """Operations that can never complete (crash-stop accounting).

        Covers crash-stopped sites, live sites stranded on a fetch into
        a dead-forever or departed site, and the unexecuted remainder of
        an *evicted* site's schedule (a graceful leave voids its
        remaining schedule by choice, so it is not counted as lost).
        """
        if self.sites is None:
            return 0
        lost = 0
        dead_forever = self.down_forever() | self.departed
        for site in self.sites:
            sid = site.site_id
            if sid in self.departed:
                if (self.view_manager is not None
                        and self.view_manager.membership_status(sid) == "evicted"):
                    lost += len(site.schedule) - site.completed_ops
                continue
            if site.finished:
                continue
            if sid in dead_forever or (
                dead_forever and site.protocol._fetches
            ):
                lost += len(site.schedule) - site.completed_ops
        return lost

    def wake(self) -> None:
        """Restart stopped infrastructure ticks (interactive drivers call
        this when new work arrives after a quiescent stop)."""
        self.durability.wake()
        if self.detector is not None:
            self.detector.wake()

    # ------------------------------------------------------------------
    # elastic membership (see repro.sim.membership)
    # ------------------------------------------------------------------
    def adopt_site(self, proto: "CausalProtocol") -> None:
        """Take ownership of a joiner's protocol (id == len(protocols)).

        The durability disk is installed separately via
        :meth:`~repro.sim.checkpoint.DurabilityLayer.add_site`; the
        joiner's :class:`~repro.sim.process.Site` is appended to
        ``self.sites`` by the view manager once it exists.
        """
        if proto.site != len(self.protocols):
            raise ValueError(
                f"joiner id {proto.site} != next slot {len(self.protocols)}"
            )
        self.protocols.append(proto)
        self.n = max(self.n, proto.site + 1)
        if self.detector is not None:
            det = self.detector
            proto._liveness = (
                lambda target, _self=proto.site: not det.suspects(_self, target)
            )

    def retire_site(self, site: int) -> None:
        """Close the book on a departed site: it is neither down nor
        recoverable, and no catch-up or detection accounting applies."""
        self.departed.add(site)
        self.down.discard(site)
        self.crash_time.pop(site, None)
        self._detected.discard(site)
        self._recovery_scheduled.discard(site)
        if site in self._catching_up:
            self._catching_up.discard(site)
            self._responses.pop(site, None)
            self._catchup_started.pop(site, None)
            self._catchup_rounds.pop(site, None)


def install_crash_recovery(
    sim: "Simulator",
    network: "Network",
    protocols: Sequence["CausalProtocol"],
    *,
    sites: Optional[Sequence["Site"]] = None,
    crashes: Sequence[CrashEvent] = (),
    checkpoint_interval_ms: Optional[float] = None,
    detector_policy: Optional[DetectorPolicy] = None,
    catchup: Optional[CatchupPolicy] = None,
    with_detector: Optional[bool] = None,
    collector: "Optional[MetricsCollector]" = None,
    tracer: "Optional[Tracer]" = None,
) -> CrashRecoveryManager:
    """Build and wire the full crash-recovery stack.

    The detector (and hence heartbeat traffic) is only installed when
    crashes are possible — a checkpoint-only configuration stays
    passive.  Crashing at all requires the chaos transport, because
    held-for-dead traffic lives in its retransmit queues.
    """
    if with_detector is None:
        with_detector = bool(crashes) or detector_policy is not None
    if (crashes or with_detector) and network.transport is None:
        raise RuntimeError(
            "crash plans need the chaos transport (fault_plan=...): "
            "recovery relies on retransmit queues holding traffic for "
            "dead sites"
        )
    interval = (DEFAULT_CHECKPOINT_INTERVAL_MS
                if checkpoint_interval_ms is None else checkpoint_interval_ms)
    durability = DurabilityLayer(sim, protocols, interval_ms=interval,
                                 collector=collector)
    detector = None
    if with_detector:
        detector = FailureDetector(sim, network, detector_policy,
                                   collector=collector, tracer=tracer)
    manager = CrashRecoveryManager(
        sim, network, protocols, durability,
        detector=detector, sites=sites, crashes=crashes, catchup=catchup,
        collector=collector, tracer=tracer,
    )
    manager.start()
    return manager
