"""The per-site application process (application subsystem).

Section IV-A: each site hosts one application process made of an
*application subsystem* that fires the pre-planned operation schedule
and a *message receipt subsystem* that reacts to the network.  In this
implementation the protocol object IS the message receipt subsystem
(wired to the network by the runner); :class:`Site` is the application
subsystem.

Execution is sequential per process, as for a real client thread:
operation k starts at ``max(planned time, completion of operation
k-1)``.  Writes complete immediately (the multicast is asynchronous);
local reads complete synchronously; remote reads block the process until
the (causally gated) remote return arrives.  A site that exhausts its
schedule flags itself finished; the simulation ends when every site is
finished *and* all in-flight messages have drained.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..memory.store import WriteId
from ..workload.schedule import SiteSchedule
from .engine import Simulator

if TYPE_CHECKING:  # avoid a runtime cycle: core.base imports sim.engine
    from ..core.base import CausalProtocol
    from ..obs.tracer import Tracer

__all__ = ["Site"]


class Site:
    """Application subsystem executing one site's operation schedule."""

    def __init__(
        self,
        protocol: "CausalProtocol",
        schedule: SiteSchedule,
        sim: Simulator,
        *,
        on_operation: Optional[Callable[[int], None]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        if protocol.site != schedule.site:
            raise ValueError(
                f"protocol is for site {protocol.site}, schedule for {schedule.site}"
            )
        self.protocol = protocol
        self.schedule = schedule
        self.sim = sim
        #: invoked with the site id as each operation *starts*; the
        #: runner uses it to open the metrics window after warm-up
        self.on_operation = on_operation
        #: optional tracer: one span per operation, covering a remote
        #: read's full blocked duration (None = untraced, zero overhead)
        self.tracer = tracer
        self._next_index = 0
        self.finished = len(schedule) == 0
        self.completed_ops = 0
        self._started = False

    @property
    def site_id(self) -> int:
        return self.schedule.site

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the first scheduled operation."""
        if self._started:
            raise RuntimeError(f"site {self.site_id} already started")
        self._started = True
        if not self.finished:
            first_time, _ = self.schedule.items[0]
            self.sim.schedule_at(first_time, self._execute_next,
                                 label=f"site{self.site_id} op0")

    # ------------------------------------------------------------------
    def _execute_next(self) -> None:
        index = self._next_index
        self._next_index += 1
        _, op = self.schedule.items[index]
        if self.on_operation is not None:
            self.on_operation(self.site_id)
        tracer = self.tracer
        if tracer is None:
            if op.is_write:
                self.protocol.write(op.var, op.value, op_index=index)
                self._operation_done()
            else:
                def _on_read(value: object, write_id: Optional[WriteId],
                             was_remote: bool) -> None:
                    self._operation_done()
                self.protocol.read(op.var, _on_read, op_index=index)
            return
        # traced path: the op span is the causal parent of every message
        # the protocol sends while the operation executes synchronously;
        # a remote read's span stays open until its RM completes it
        op_id = tracer.op_start(self.site_id, self.sim.now,
                                write=op.is_write, var=op.var, index=index)
        if op.is_write:
            try:
                self.protocol.write(op.var, op.value, op_index=index)
            finally:
                tracer.op_finish(op_id, self.sim.now)
                tracer.op_detach()
            self._operation_done()
        else:
            def _on_traced_read(value: object, write_id: Optional[WriteId],
                                was_remote: bool) -> None:
                tracer.op_finish(op_id, self.sim.now, remote=was_remote)
                self._operation_done()
            try:
                self.protocol.read(op.var, _on_traced_read, op_index=index)
            finally:
                tracer.op_detach()

    def _operation_done(self) -> None:
        """Completion continuation: arm the next operation or finish."""
        self.completed_ops += 1
        if self._next_index >= len(self.schedule):
            self.finished = True
            return
        planned, _ = self.schedule.items[self._next_index]
        start = max(planned, self.sim.now)
        self.sim.schedule_at(start, self._execute_next,
                             label=f"site{self.site_id} op{self._next_index}")
