"""The per-site application process (application subsystem).

Section IV-A: each site hosts one application process made of an
*application subsystem* that fires the pre-planned operation schedule
and a *message receipt subsystem* that reacts to the network.  In this
implementation the protocol object IS the message receipt subsystem
(wired to the network by the runner); :class:`Site` is the application
subsystem.

Execution is sequential per process, as for a real client thread:
operation k starts at ``max(planned time, completion of operation
k-1)``.  Writes complete immediately (the multicast is asynchronous);
local reads complete synchronously; remote reads block the process until
the (causally gated) remote return arrives.  A site that exhausts its
schedule flags itself finished; the simulation ends when every site is
finished *and* all in-flight messages have drained.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..memory.store import WriteId
from ..workload.schedule import SiteSchedule
from .engine import Simulator

if TYPE_CHECKING:  # avoid a runtime cycle: core.base imports sim.engine
    from ..core.base import CausalProtocol
    from ..obs.tracer import Tracer

__all__ = ["Site"]


class Site:
    """Application subsystem executing one site's operation schedule."""

    def __init__(
        self,
        protocol: "CausalProtocol",
        schedule: SiteSchedule,
        sim: Simulator,
        *,
        on_operation: Optional[Callable[[int], None]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        if protocol.site != schedule.site:
            raise ValueError(
                f"protocol is for site {protocol.site}, schedule for {schedule.site}"
            )
        self.protocol = protocol
        self.schedule = schedule
        self.sim = sim
        #: invoked with the site id as each operation *starts*; the
        #: runner uses it to open the metrics window after warm-up
        self.on_operation = on_operation
        #: optional tracer: one span per operation, covering a remote
        #: read's full blocked duration (None = untraced, zero overhead)
        self.tracer = tracer
        self._next_index = 0
        self.finished = len(schedule) == 0
        self.completed_ops = 0
        self._started = False
        self.crashed = False
        #: view-change fence: while held, no new operation may start
        self.held = False
        #: elastic membership: a retired site never runs again
        self.retired = False
        #: handle of the armed next-operation event (crash cancels it)
        self._op_event = None
        #: index of an operation currently blocked on a remote read
        #: (writes and local reads complete synchronously, so from any
        #: other event's perspective this is None unless a fetch is out)
        self._current_index: Optional[int] = None
        #: consecutive backpressure deferrals of the armed operation;
        #: capped by the policy's backpressure_limit so a stuck channel
        #: delays the schedule but can never starve it
        self._bp_defers = 0
        #: lifetime count of backpressure-induced operation delays
        self.backpressure_delays = 0

    @property
    def site_id(self) -> int:
        return self.schedule.site

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the first scheduled operation."""
        if self._started:
            raise RuntimeError(f"site {self.site_id} already started")
        self._started = True
        if not self.finished:
            first_time, _ = self.schedule.items[0]
            # a joiner starts mid-run: planned times before its admission
            # collapse to "as soon as possible"
            self._op_event = self.sim.schedule_at(
                max(first_time, self.sim.now), self._execute_next,
                label=f"site{self.site_id} op0",
            )

    # ------------------------------------------------------------------
    # crash-recovery (see repro.sim.crash)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Freeze the schedule: the pending op event dies with the process.

        An operation blocked on a remote read stays noted in
        ``_current_index`` — its continuation is lost, so :meth:`recover`
        re-issues that operation from scratch.
        """
        self.crashed = True
        if self._op_event is not None:
            self._op_event.cancel()
            self._op_event = None

    def recover(self) -> None:
        """Resume the schedule after catch-up completed.

        The interrupted remote read (if any) re-executes under the same
        op_index; subsequent operations fire at ``max(planned, now)`` as
        usual.
        """
        if not self.crashed:
            raise RuntimeError(f"site {self.site_id} is not crashed")
        self.crashed = False
        if self.finished:
            return
        if self._current_index is not None:
            self._next_index = self._current_index
            self._current_index = None
        if self.held:
            return  # release() re-arms once the view change completes
        planned, _ = self.schedule.items[self._next_index]
        start = max(planned, self.sim.now)
        self._op_event = self.sim.schedule_at(
            start, self._execute_next,
            label=f"site{self.site_id} op{self._next_index} (rejoin)",
        )

    # ------------------------------------------------------------------
    # elastic membership (see repro.sim.membership)
    # ------------------------------------------------------------------
    def hold(self) -> None:
        """View-change fence: stop starting new operations.

        An armed (not yet fired) operation is un-scheduled; an operation
        already blocked on a remote read stays blocked — the fence does
        not wait for fetches (see ``CausalProtocol.buffered_count``).
        """
        if self.held:
            return
        self.held = True
        if self._op_event is not None:
            self._op_event.cancel()
            self._op_event = None

    def release(self) -> None:
        """Lift the fence and re-arm the next operation, if any."""
        if not self.held:
            return
        self.held = False
        if (not self._started or self.finished or self.crashed
                or self.retired or self._current_index is not None
                or self._op_event is not None):
            return
        planned, _ = self.schedule.items[self._next_index]
        self._op_event = self.sim.schedule_at(
            max(planned, self.sim.now), self._execute_next,
            label=f"site{self.site_id} op{self._next_index}",
        )

    def retire(self) -> None:
        """The site left the view: its remaining schedule is void."""
        self.retired = True
        self.finished = True
        if self._op_event is not None:
            self._op_event.cancel()
            self._op_event = None

    # ------------------------------------------------------------------
    def _execute_next(self) -> None:
        self._op_event = None
        # transport backpressure: while this site's outbound channels
        # have windowed-out backlogs, delay the next operation instead
        # of piling more onto the queues — bounded, so the schedule is
        # delayed but never starved
        if self.protocol.backpressured:
            network = self.protocol.ctx.network
            limit = network.backpressure_limit()
            if self._bp_defers < limit:
                self._bp_defers += 1
                self.backpressure_delays += 1
                network.count_backpressure_delay(self.site_id)
                self._op_event = self.sim.schedule(
                    network.backpressure_delay_ms(), self._execute_next,
                    label=f"site{self.site_id} backpressure",
                )
                return
        self._bp_defers = 0
        index = self._next_index
        self._next_index += 1
        self._current_index = index
        _, op = self.schedule.items[index]
        if self.on_operation is not None:
            self.on_operation(self.site_id)
        tracer = self.tracer
        if tracer is None:
            if op.is_write:
                self.protocol.write(op.var, op.value, op_index=index)
                self._operation_done()
            else:
                def _on_read(value: object, write_id: Optional[WriteId],
                             was_remote: bool) -> None:
                    self._operation_done()
                self.protocol.read(op.var, _on_read, op_index=index)
            return
        # traced path: the op span is the causal parent of every message
        # the protocol sends while the operation executes synchronously;
        # a remote read's span stays open until its RM completes it
        op_id = tracer.op_start(self.site_id, self.sim.now,
                                write=op.is_write, var=op.var, index=index)
        if op.is_write:
            try:
                self.protocol.write(op.var, op.value, op_index=index)
            finally:
                tracer.op_finish(op_id, self.sim.now)
                tracer.op_detach()
            self._operation_done()
        else:
            def _on_traced_read(value: object, write_id: Optional[WriteId],
                                was_remote: bool) -> None:
                tracer.op_finish(op_id, self.sim.now, remote=was_remote)
                self._operation_done()
            try:
                self.protocol.read(op.var, _on_traced_read, op_index=index)
            finally:
                tracer.op_detach()

    def _operation_done(self) -> None:
        """Completion continuation: arm the next operation or finish."""
        if self.crashed:
            # a continuation surviving a crash would double-drive the
            # schedule after recovery; stale RMs are dropped upstream,
            # so this is purely defensive
            return
        self._current_index = None
        self.completed_ops += 1
        if self._next_index >= len(self.schedule):
            self.finished = True
            return
        if self.held:
            return  # release() re-arms once the view change completes
        planned, _ = self.schedule.items[self._next_index]
        start = max(planned, self.sim.now)
        self._op_event = self.sim.schedule_at(
            start, self._execute_next,
            label=f"site{self.site_id} op{self._next_index}",
        )
