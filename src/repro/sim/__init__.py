"""Discrete-event simulation substrate (engine, network, faults, process model)."""

from .checkpoint import (
    DEFAULT_CHECKPOINT_INTERVAL_MS,
    DurabilityLayer,
    SiteDisk,
    WalRecord,
)
from .crash import (
    CatchupPolicy,
    CrashRecoveryManager,
    SyncRequest,
    SyncResponse,
    install_crash_recovery,
)
from .engine import ScheduledEvent, SimulationError, Simulator
from .events import EventKind, EventRecord
from .failure_detector import DetectorPolicy, FailureDetector, HeartbeatPacket
from .faults import (
    ChannelFaults,
    CrashEvent,
    FaultInjector,
    FaultPlan,
    Partition,
    seeded_crashes,
)
from .network import (
    AdversarialLatency,
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    Network,
    PerPairLatency,
    UniformLatency,
)
from .process import Site
from .reliable import ReliableChannel, ReliableTransport, RetransmitPolicy

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "SimulationError",
    "EventKind",
    "EventRecord",
    "Network",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "PerPairLatency",
    "AdversarialLatency",
    "Site",
    "ChannelFaults",
    "Partition",
    "FaultPlan",
    "FaultInjector",
    "ReliableChannel",
    "ReliableTransport",
    "RetransmitPolicy",
    # crash-recovery
    "CrashEvent",
    "seeded_crashes",
    "WalRecord",
    "SiteDisk",
    "DurabilityLayer",
    "DEFAULT_CHECKPOINT_INTERVAL_MS",
    "DetectorPolicy",
    "HeartbeatPacket",
    "FailureDetector",
    "CatchupPolicy",
    "SyncRequest",
    "SyncResponse",
    "CrashRecoveryManager",
    "install_crash_recovery",
]
