"""Discrete-event simulation substrate (engine, network, faults, process model)."""

from .engine import ScheduledEvent, SimulationError, Simulator
from .events import EventKind, EventRecord
from .faults import ChannelFaults, FaultInjector, FaultPlan, Partition
from .network import (
    AdversarialLatency,
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    Network,
    PerPairLatency,
    UniformLatency,
)
from .process import Site
from .reliable import ReliableChannel, ReliableTransport, RetransmitPolicy

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "SimulationError",
    "EventKind",
    "EventRecord",
    "Network",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "PerPairLatency",
    "AdversarialLatency",
    "Site",
    "ChannelFaults",
    "Partition",
    "FaultPlan",
    "FaultInjector",
    "ReliableChannel",
    "ReliableTransport",
    "RetransmitPolicy",
]
