"""Discrete-event simulation substrate (engine, network, process model)."""

from .engine import ScheduledEvent, SimulationError, Simulator
from .events import EventKind, EventRecord
from .network import (
    AdversarialLatency,
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    Network,
    PerPairLatency,
    UniformLatency,
)
from .process import Site

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "SimulationError",
    "EventKind",
    "EventRecord",
    "Network",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "PerPairLatency",
    "AdversarialLatency",
    "Site",
]
