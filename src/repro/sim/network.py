"""Reliable FIFO message-passing network.

Models the paper's communication substrate (Section IV): sites connected
pairwise by reliable TCP channels that deliver without loss, duplication,
or reordering *within a channel*.  Messages on different channels are
mutually unordered — that asynchrony is exactly what the protocols'
activation predicates must tolerate, so the latency model matters for
exercising them even though message *counts and sizes* are latency-free.

Latency models are pluggable.  FIFO order is enforced structurally: if a
sampled latency would overtake the channel's previous delivery, delivery
is pushed just after it (TCP would have done the same via in-order byte
streams).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from .engine import Simulator
from .faults import FaultInjector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..metrics.collector import MetricsCollector
    from ..obs.metrics import Counter, MetricFamily, MetricsRegistry
    from ..obs.tracer import Tracer
    from .reliable import RetransmitPolicy

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "PerPairLatency",
    "AdversarialLatency",
    "Network",
    "ChannelStats",
]

#: Minimum spacing used to keep FIFO deliveries strictly ordered.
FIFO_EPSILON = 1e-9


class LatencyModel(abc.ABC):
    """Strategy object producing one-way delays (ms) per message."""

    @abc.abstractmethod
    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        """Return the one-way network delay in milliseconds for one message."""

    def local_delay(self) -> float:
        """Delay for a site messaging itself (loopback); effectively zero."""
        return 0.0


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay_ms``.  Good for exact tests."""

    delay_ms: float = 50.0

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return self.delay_ms


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Delay uniform in [low_ms, high_ms] — the default WAN-ish model."""

    low_ms: float = 10.0
    high_ms: float = 100.0

    def __post_init__(self) -> None:
        if not 0 <= self.low_ms <= self.high_ms:
            raise ValueError(f"invalid latency range [{self.low_ms}, {self.high_ms}]")

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low_ms, self.high_ms))


@dataclass(frozen=True)
class LogNormalLatency(LatencyModel):
    """Heavy-tailed delays (median ``median_ms``, shape ``sigma``).

    Approximates TCP retransmission spikes ("slow start" effects the
    paper mentions) without modelling TCP itself.
    """

    median_ms: float = 40.0
    sigma: float = 0.6

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return float(self.median_ms * np.exp(rng.normal(0.0, self.sigma)))


class PerPairLatency(LatencyModel):
    """Deterministic per-pair base delays plus optional uniform jitter.

    ``matrix[i][j]`` is the base one-way delay from site i to site j;
    useful for modelling geo-distributed topologies where some replica
    pairs are much farther apart than others.
    """

    def __init__(self, matrix: Sequence[Sequence[float]], jitter_ms: float = 0.0) -> None:
        self._matrix = np.asarray(matrix, dtype=float)
        if self._matrix.ndim != 2 or self._matrix.shape[0] != self._matrix.shape[1]:
            raise ValueError("latency matrix must be square")
        if (self._matrix < 0).any():
            raise ValueError("latencies must be non-negative")
        if jitter_ms < 0:
            raise ValueError("jitter must be non-negative")
        self._jitter = jitter_ms

    @property
    def n(self) -> int:
        return self._matrix.shape[0]

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        base = float(self._matrix[src, dst])
        if self._jitter:
            base += float(rng.uniform(0.0, self._jitter))
        return base


@dataclass(frozen=True)
class AdversarialLatency(LatencyModel):
    """Wildly varying delays designed to maximize cross-channel reordering.

    Used by fault-injection style tests: with delays spanning three orders
    of magnitude, multicast copies of causally related writes routinely
    arrive "backwards", so every activation-predicate code path gets
    exercised.
    """

    low_ms: float = 1.0
    high_ms: float = 1000.0

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        # Log-uniform: most mass at the extremes of reordering behaviour.
        lo, hi = np.log(self.low_ms), np.log(self.high_ms)
        return float(np.exp(rng.uniform(lo, hi)))


@dataclass(slots=True)
class ChannelStats:
    """Bookkeeping per directed channel (src, dst).

    Slotted: one instance per directed channel (n^2 of them), each
    touched on every send — no ``__dict__`` on the hot path.
    """

    messages: int = 0
    last_delivery: float = -1.0


class Network:
    """Reliable FIFO transport layered on the event kernel.

    ``send`` delivers a single message; ``multicast`` fans out to a
    destination set (one independent unicast per destination, as in the
    paper's ``Multicast(m)`` primitive — there is no network-level
    broadcast).  Receivers are callbacks registered per site.

    With ``bandwidth_bytes_per_ms`` set, message *size* costs time: each
    sender has one uplink that serializes its transmissions (a message
    occupies the uplink for ``size / bandwidth`` ms before its one-way
    propagation delay starts), so a 13 KB Full-Track matrix delays not
    only itself but every message queued behind it — the mechanism by
    which metadata size becomes latency.  The default (``None``) is the
    paper's model: size never affects timing.

    With a :class:`~repro.sim.faults.FaultInjector` attached, ``send``
    instead routes through the :class:`~repro.sim.reliable.ReliableTransport`
    chaos stack (sequence numbers, cumulative acks, retransmission with
    backoff) over a lossy raw transmission path that drops, duplicates,
    delays, and partitions per the injector's plan.  Without one, the
    reliable path below is byte-for-byte the seed behavior.
    """

    def __init__(
        self,
        sim: Simulator,
        n_sites: int,
        latency: Optional[LatencyModel] = None,
        *,
        rng: Optional[np.random.Generator] = None,
        bandwidth_bytes_per_ms: Optional[float] = None,
        faults: Optional[FaultInjector] = None,
        collector: Optional["MetricsCollector"] = None,
        retransmit: Optional["RetransmitPolicy"] = None,
        tracer: Optional["Tracer"] = None,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        if n_sites <= 0:
            raise ValueError("network needs at least one site")
        if bandwidth_bytes_per_ms is not None and bandwidth_bytes_per_ms <= 0:
            raise ValueError("bandwidth must be positive (or None for infinite)")
        self.sim = sim
        self.n_sites = n_sites
        self.latency = latency if latency is not None else UniformLatency()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.bandwidth = bandwidth_bytes_per_ms
        # per-sender uplink: simulated time until which it is occupied
        self._uplink_busy_until: dict[int, float] = {}
        self._receivers: dict[int, Callable[[int, object], None]] = {}
        self._channels: dict[tuple[int, int], ChannelStats] = {}
        # delivery-event labels are pure debug strings; interned per
        # channel so the send fast path skips an f-string per message
        self._labels: dict[tuple[int, int], str] = {}
        # Plain-uniform latency models admit block draws: a numpy
        # Generator consumes the bit stream identically for one
        # uniform() call per message and for a block of 256, so the
        # sampled delays are byte-identical while the per-message numpy
        # dispatch overhead is paid once per block.  Any other model
        # (pair-dependent, shaped) keeps the per-call path.
        if type(self.latency) is UniformLatency:
            self._uniform_buf: Optional[list[float]] = []
            self._uniform_lo = self.latency.low_ms
            self._uniform_hi = self.latency.high_ms
        else:
            self._uniform_buf = None
            self._uniform_lo = self._uniform_hi = 0.0
        self._uniform_pos = 0
        self.total_messages = 0
        # fault injection: paused sites hold their inbound deliveries
        # (per-channel FIFO preserved) until resumed
        self._paused: set[int] = set()
        self._held: dict[int, list[tuple[int, object]]] = {}
        # crash-recovery: packets to a down site are dropped at the wire
        self._down: set[int] = set()
        # elastic membership: departed sites never come back — traffic
        # addressed to them is dropped (counted), sends to them raise
        self._departed: set[int] = set()
        self.departed_drops = 0
        # seed-path app messages scheduled but not yet handed to the
        # receiver; the view-change fence drains on this reaching zero
        self._app_in_flight = 0
        # chaos stack (None = the default reliable path, zero overhead)
        self.collector = collector
        # observability (None = untraced, zero overhead)
        self.tracer = tracer
        # metrics (None = unmetered, zero overhead); counters are
        # pre-resolved here so send() pays one branch + one dict probe
        self.registry = registry
        self._m_send_family: Optional["MetricFamily"] = None
        self._m_send_cache: dict[int, "Counter"] = {}
        self._m_injected_drop: Optional["Counter"] = None
        self._m_partition_drop: Optional["Counter"] = None
        self._m_dup: Optional["Counter"] = None
        self._m_dead_drop: Optional["Counter"] = None
        if registry is not None:
            self._m_send_family = registry.counter(
                "net_messages_sent_total",
                "application messages accepted by the network, per sender",
                labels=("site",))
            self._m_injected_drop = registry.counter(  # type: ignore[assignment]
                "net_injected_drops_total",
                "packets dropped by the fault injector (non-partition)").labels()
            self._m_partition_drop = registry.counter(  # type: ignore[assignment]
                "net_partition_drops_total",
                "packets dropped because a partition severed the channel").labels()
            self._m_dup = registry.counter(  # type: ignore[assignment]
                "net_duplicates_total",
                "duplicate packets injected by the fault plan").labels()
            self._m_dead_drop = registry.counter(  # type: ignore[assignment]
                "net_dead_site_drops_total",
                "packets dropped at the wire because the destination was down",
            ).labels()
        self.faults = faults
        if faults is not None:
            from .reliable import ReliableTransport

            self.transport: Optional[ReliableTransport] = ReliableTransport(
                self, faults, policy=retransmit
            )
        else:
            self.transport = None

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def pause_site(self, site: int) -> None:
        """Stop delivering to ``site`` (a stalled process / GC pause).

        Messages destined to it are held in arrival order and flushed on
        :meth:`resume_site`; FIFO per channel is preserved because the
        hold queue keeps the delivery order the channels established.
        Outbound traffic from the site is unaffected (the paper's model
        has no crash-stop — processes are slow, not faulty).
        """
        self._check_site(site)
        self._paused.add(site)
        self._held.setdefault(site, [])

    def resume_site(self, site: int) -> None:
        """Flush everything held for ``site`` and resume normal flow.

        The backlog is *scheduled* through the simulator (zero-delay
        events, preserving hold order via the kernel's tie-breaking)
        rather than delivered synchronously here, so delivery timestamps
        and downstream metrics stay consistent with the kernel clock —
        run the simulator (``settle``/``advance``/``run``) to observe
        the flushed deliveries.
        """
        self._check_site(site)
        if site not in self._paused:
            return
        self._paused.discard(site)
        held = self._held.pop(site, [])
        if held and site not in self._receivers:
            raise RuntimeError(f"no receiver registered for site {site}")
        for src, message in held:
            self._app_in_flight += 1

            def _flush(src: int = src, message: object = message) -> None:
                self._app_in_flight -= 1
                self._deliver_app(src, site, message)

            self.sim.schedule(0.0, _flush, label=f"resume flush ->{site}")

    def is_paused(self, site: int) -> bool:
        return site in self._paused

    # ------------------------------------------------------------------
    # crash-recovery (chaos path only; see repro.sim.crash)
    # ------------------------------------------------------------------
    def crash_site(self, site: int) -> None:
        """Mark ``site`` down: packets addressed to it vanish at the wire.

        Packets already in flight *from* the site still arrive — they
        left its NIC before the crash.  Requires the chaos transport;
        losing a message on the seed's reliable path would be
        unrecoverable by construction.
        """
        self._check_site(site)
        if self.transport is None:
            raise RuntimeError(
                "crash_site() needs the chaos transport (fault_plan=...); "
                "the reliable seed path cannot lose messages"
            )
        self._down.add(site)

    def revive_site(self, site: int) -> None:
        self._check_site(site)
        self._down.discard(site)

    def is_down(self, site: int) -> bool:
        return site in self._down

    def held_count(self, site: int) -> int:
        """Messages currently held for a paused site."""
        return len(self._held.get(site, ()))

    # ------------------------------------------------------------------
    # elastic membership (see repro.sim.membership)
    # ------------------------------------------------------------------
    def add_site(self) -> int:
        """Admit one new site; returns its (stable, never-reused) id.

        Only size-free latency models can admit sites: a fixed n x n
        delay matrix has no row for the newcomer.
        """
        if isinstance(self.latency, PerPairLatency):
            from .membership import MembershipError

            raise MembershipError(
                "PerPairLatency has a fixed delay matrix and cannot "
                "admit new sites; use a sampled latency model for churn"
            )
        new_id = self.n_sites
        self.n_sites += 1
        return new_id

    def retire_site(self, site: int) -> None:
        """Mark ``site`` departed: its id stays allocated forever, but
        all traffic involving it is dropped (counted) and sends *to* it
        raise :class:`~repro.sim.membership.DepartedSiteError`."""
        self._check_site(site)
        self._departed.add(site)
        self._paused.discard(site)
        self.departed_drops += len(self._held.pop(site, ()))
        self._down.discard(site)

    def is_departed(self, site: int) -> bool:
        return site in self._departed

    def held_for(self, site: int) -> int:
        """Alias of :meth:`held_count` used by the view-change fence."""
        return len(self._held.get(site, ()))

    @property
    def app_messages_in_flight(self) -> int:
        """Seed-path app messages scheduled but not yet delivered."""
        return self._app_in_flight

    # ------------------------------------------------------------------
    # overload & backpressure (chaos path only; see repro.sim.reliable)
    # ------------------------------------------------------------------
    def overloaded(self, site: int) -> bool:
        """True while any of ``site``'s outbound channels has windowed
        packets out into its backlog — the transport's backpressure
        signal.  Always False on the seed path (no transport)."""
        transport = self.transport
        return transport is not None and transport.backpressured(site)

    def overload_backlog(self, site: int) -> int:
        """Total packets backlogged across ``site``'s channels."""
        transport = self.transport
        return transport.backlog_of(site) if transport is not None else 0

    def check_overload_admission(self, site: int) -> None:
        """Raise :class:`~repro.sim.reliable.OverloadError` when
        ``site``'s backlog exceeds the policy's shed threshold."""
        transport = self.transport
        if transport is not None:
            transport.check_admission(site)

    def backpressure_delay_ms(self) -> float:
        """Delay a backpressured site applies before its next operation."""
        transport = self.transport
        return (transport.policy.backpressure_delay_ms
                if transport is not None else 0.0)

    def backpressure_limit(self) -> int:
        """Consecutive delays before an operation proceeds anyway."""
        transport = self.transport
        return transport.policy.backpressure_limit if transport is not None else 0

    def count_backpressure_delay(self, site: int) -> None:
        """Account one backpressure-induced operation delay."""
        transport = self.transport
        if transport is not None:
            transport.count_backpressure_delay(site)

    def count_overload_shed(self, site: int) -> None:
        """Account one write shed by :class:`OverloadError` at admission."""
        transport = self.transport
        if transport is not None:
            transport.count_overload_shed(site)

    # ------------------------------------------------------------------
    def register(self, site: int, receiver: Callable[[int, object], None]) -> None:
        """Attach the receive callback for ``site``: ``receiver(src, msg)``."""
        self._check_site(site)
        self._receivers[site] = receiver

    def _check_site(self, site: int) -> None:
        if not 0 <= site < self.n_sites:
            raise ValueError(f"site {site} out of range [0, {self.n_sites})")

    def channel_stats(self, src: int, dst: int) -> ChannelStats:
        """Stats for the directed channel ``src -> dst`` (created lazily)."""
        key = (src, dst)
        st = self._channels.get(key)
        if st is None:
            st = self._channels[key] = ChannelStats()
        return st

    # ------------------------------------------------------------------
    def _sample_latency(self, src: int, dst: int) -> float:
        """One cross-site delay draw; block-buffered for plain uniform.

        The buffered path consumes the generator's bit stream exactly as
        per-message ``uniform()`` calls would (verified: numpy block
        draws of doubles are stream-identical to repeated single draws),
        so sampled delays — and therefore traces — are unchanged.
        """
        buf = self._uniform_buf
        if buf is None:
            return self.latency.sample(src, dst, self.rng)
        pos = self._uniform_pos
        if pos >= len(buf):
            buf = self.rng.uniform(self._uniform_lo, self._uniform_hi, 256).tolist()
            self._uniform_buf = buf
            pos = 0
        self._uniform_pos = pos + 1
        return buf[pos]  # type: ignore[no-any-return]

    def send(self, src: int, dst: int, message: object,
             *, size_bytes: float = 0.0) -> Optional[float]:
        """Send one message; returns its scheduled delivery time (ms).

        FIFO per channel: a message never overtakes an earlier message on
        the same (src, dst) channel, whatever the sampled latencies say.
        Under a finite bandwidth, ``size_bytes`` first occupies the
        sender's uplink (serialized across ALL of the sender's outgoing
        messages), then the propagation delay applies.

        With a fault injector attached, the message instead enters the
        reliable chaos stack; the return value is then the scheduled
        arrival of the *first transmission attempt* (None if the
        injector dropped it — a retransmission will deliver it later).
        """
        self._check_site(src)
        self._check_site(dst)
        if src in self._departed:
            # a straggler timer or scheduled event from a retired site;
            # its output is irrelevant by construction (it was drained
            # before departure), so drop rather than crash the run
            self.departed_drops += 1
            return None
        if dst in self._departed:
            from .membership import DepartedSiteError

            raise DepartedSiteError(dst, "departed")
        fam = self._m_send_family
        if fam is not None:
            counter = self._m_send_cache.get(src)
            if counter is None:
                counter = fam.labels(site=src)  # type: ignore[assignment]
                self._m_send_cache[src] = counter
            counter.value += 1  # monotonic bump, sans method-call overhead
        if self.transport is not None:
            return self.transport.send(src, dst, message, size_bytes)
        departure = self.sim.now
        if self.bandwidth is not None and size_bytes > 0:
            start = max(departure, self._uplink_busy_until.get(src, 0.0))
            departure = start + size_bytes / self.bandwidth
            self._uplink_busy_until[src] = departure
        if src == dst:
            delay = self.latency.local_delay()
        else:
            delay = self._sample_latency(src, dst)
        key = (src, dst)
        stats = self._channels.get(key)
        if stats is None:
            stats = self._channels[key] = ChannelStats()
        delivery = max(departure + delay, stats.last_delivery + FIFO_EPSILON)
        stats.last_delivery = delivery
        stats.messages += 1
        self.total_messages += 1
        label = self._labels.get(key)
        if label is None:
            label = self._labels[key] = f"deliver {src}->{dst}"

        def _deliver() -> None:
            self._app_in_flight -= 1
            self._deliver_app(src, dst, message)

        self._app_in_flight += 1
        self.sim.schedule_at(delivery, _deliver, label=label)
        return delivery

    def _deliver_app(self, src: int, dst: int, message: object) -> None:
        """Hand a message up to the application, honoring paused sites."""
        if dst in self._departed:
            self.departed_drops += 1
            return
        if dst in self._paused:
            self._held[dst].append((src, message))
            return
        receiver = self._receivers.get(dst)
        if receiver is None:
            raise RuntimeError(f"no receiver registered for site {dst}")
        tracer = self.tracer
        if tracer is None:
            receiver(src, message)
            return
        # the deliver event is the causal context for everything the
        # receiving protocol does synchronously (buffer, apply, reply)
        deliver_id = tracer.msg_deliver(src, dst, message, ts=self.sim.now)
        if deliver_id is None:
            receiver(src, message)
            return
        tracer.push(deliver_id)
        try:
            receiver(src, message)
        finally:
            tracer.pop()

    def _transmit_raw(self, src: int, dst: int, packet: object,
                      size_bytes: float) -> Optional[float]:
        """One physical packet transmission over the *lossy* substrate.

        Chaos path only (the reliable layer calls this for data packets,
        retransmissions, and acks).  The fault injector decides drop /
        duplicate / latency-spike per attempt; unlike the default path
        there is NO structural FIFO clamp — sampled latencies may
        reorder packets, and the reliable layer's reassembly buffer is
        what restores order.  Returns the scheduled arrival of the
        primary copy, or None when it was dropped.
        """
        departure = self.sim.now
        if self.bandwidth is not None and size_bytes > 0:
            # dropped packets still occupied the sender's uplink: loss
            # happens in the network, after the bytes left the NIC
            start = max(departure, self._uplink_busy_until.get(src, 0.0))
            departure = start + size_bytes / self.bandwidth
            self._uplink_busy_until[src] = departure
        decision = self.faults.decide(src, dst, self.sim.now)
        stats = self.channel_stats(src, dst)
        stats.messages += 1
        self.total_messages += 1
        if self.tracer is not None:
            # DataPackets are traced by their application payload; other
            # packets (acks) have no span and are counted in series only
            self.tracer.msg_attempt(
                src, dst, getattr(packet, "payload", packet), ts=self.sim.now,
                dropped=decision.drop, partition=decision.severed,
                spike_ms=decision.extra_delay_ms, duplicates=decision.duplicates,
            )
        if decision.drop:
            if self.collector is not None:
                self.collector.record_injected_drop(partition=decision.severed)
            if self._m_injected_drop is not None:
                if decision.severed:
                    assert self._m_partition_drop is not None
                    self._m_partition_drop.inc()
                else:
                    self._m_injected_drop.inc()
            return None
        if src == dst:
            delay = self.latency.local_delay()
        else:
            delay = self._sample_latency(src, dst)
        delivery = departure + delay + decision.extra_delay_ms
        stats.last_delivery = max(stats.last_delivery, delivery)
        if decision.extra_delay_ms and self.collector is not None:
            self.collector.record_injected_spike(decision.extra_delay_ms)
        self.sim.schedule_at(
            delivery,
            lambda: self._arrive(src, dst, packet),
            label=f"packet {src}->{dst}",
        )
        for _ in range(decision.duplicates):
            dup_delay = (self.latency.local_delay() if src == dst
                         else self._sample_latency(src, dst))
            stats.messages += 1
            self.total_messages += 1
            if self.collector is not None:
                self.collector.record_injected_dup()
            if self._m_dup is not None:
                self._m_dup.inc()
            self.sim.schedule_at(
                departure + dup_delay + decision.extra_delay_ms,
                lambda: self._arrive(src, dst, packet),
                label=f"dup packet {src}->{dst}",
            )
        return delivery

    def _arrive(self, src: int, dst: int, packet: object) -> None:
        """Terminate one physical packet at the destination NIC.

        A down destination drops the packet at the wire — the sender's
        reliable channel keeps it durable and retransmits after the
        site rejoins.  Infra packet handlers (heartbeats, sync) are
        still notified with ``dead=True`` for their bookkeeping.
        """
        if dst in self._departed:
            self.departed_drops += 1
            return
        if dst in self._down:
            if self.collector is not None:
                self.collector.record_dead_site_drop()
            if self._m_dead_drop is not None:
                self._m_dead_drop.inc()
            self.transport.on_dead_drop(src, dst, packet)
            return
        self.transport.deliver_packet(src, dst, packet)

    def multicast(self, src: int, dests: Sequence[int], message_for: Callable[[int], object]) -> int:
        """Unicast ``message_for(dst)`` to each destination except ``src``.

        The per-destination factory supports protocols (Opt-Track) whose
        piggybacked metadata is pruned differently per destination.
        Returns the number of messages actually sent.
        """
        sent = 0
        for dst in dests:
            if dst == src:
                continue
            self.send(src, dst, message_for(dst))
            sent += 1
        return sent
